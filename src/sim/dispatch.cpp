// Micro-op commit loop (the HWSEC_DISPATCH=uops backend) and backend
// selection.
//
// Cpu::run_uops executes predecoded micro-ops with computed-goto threaded
// dispatch on GCC/Clang (a plain switch elsewhere — same handler bodies,
// selected by the UOP_LABEL macro). The handlers are exact transcriptions
// of the corresponding cases in Cpu::step(): every cycle add, stats
// increment, predictor update and hook invocation happens in the same
// order, which is what the conformance fuzzer's uops-vs-switch
// differential verifies.
//
// The loop leans on three structural guarantees:
//  * pc_ is canonical: read at the top of every instruction, written on
//    every commit, and materialized before any host code (fault handlers,
//    thrown watchdog errors) can observe it — so handlers see exactly the
//    state the legacy interpreter would show them.
//  * anything the micro-op core cannot replay bit-exactly defers to the
//    generic interpreter for one instruction (UopExit::kStep): ecalls,
//    pcs the flat fetch table cannot resolve, non-flat program layouts.
//  * after any fault handler runs (UopExit::kResync) the caller
//    re-evaluates the hook configuration before re-entering, because
//    handlers may arm hooks, swap programs, or switch context.
//
// The fetch memo is the per-instruction win: once a pc has fetched through
// a TLB hit + L1I hit (or has just filled both), the memo replays the hit
// side effects (LRU stamp, PLRU touch, hit counters, touch journal,
// latency) via Tlb::repeat_hit / Cache::repeat_hit. Validity is proven by
// removal epochs checked on EVERY replay — transient windows, inclusive
// LLC back-invalidation and CLFLUSH can evict the memoized line between
// any two instructions — plus a packed context word (ASID, domain,
// privilege, bus-firewall presence) that covers the translation predicate.

#include "sim/dispatch.h"

#include <cstdlib>

#include "sim/cpu.h"

namespace hwsec::sim {

std::string to_string(DispatchBackend backend) {
  switch (backend) {
    case DispatchBackend::kUops: return "uops";
    case DispatchBackend::kSwitch: return "switch";
  }
  return "?";
}

DispatchBackend dispatch_backend_from_env() {
  static const DispatchBackend resolved = [] {
    const char* env = std::getenv("HWSEC_DISPATCH");
    if (env != nullptr && std::string(env) == "switch") {
      return DispatchBackend::kSwitch;
    }
    return DispatchBackend::kUops;
  }();
  return resolved;
}

// Computed-goto dispatch where the extension exists; identical handler
// bodies compile as a switch elsewhere. Every handler ends in an explicit
// goto or return, so the two forms are control-flow equivalent.
#if defined(__GNUC__) || defined(__clang__)
#define HWSEC_UOP_GOTO 1
#define UOP_LABEL(k) u_##k:
#define UOP_DEFAULT
#else
#define HWSEC_UOP_GOTO 0
#define UOP_LABEL(k) case UopKind::k:
#define UOP_DEFAULT \
  default: return UopExit::kStep;
#endif

// Raises a fault exactly as the legacy run loop would observe it: the
// faulting instruction counts as executed, a kHalt action ends the run,
// and any continue action forces a resync (the handler may have changed
// hooks, programs, or context).
#define UOP_RAISE(f, a, t)                                                      \
  do {                                                                          \
    pc_ = pc;                                                                   \
    const StepOutcome ro =                                                      \
        raise({.fault = (f), .pc = pc, .addr = (a), .type = (t)});              \
    ++result.executed;                                                          \
    if (ro.fault_stop) {                                                        \
      result.stop_fault = ro.fault;                                             \
      return UopExit::kDone;                                                    \
    }                                                                           \
    return UopExit::kResync;                                                    \
  } while (0)

template <bool Hooked>
Cpu::UopExit Cpu::run_uops(RunResult& result, std::uint64_t max_instructions) {
  CacheHierarchy& caches = bus_->caches();
  Cache* const l1i = caches.config().has_l1 ? &caches.l1i(config_.id) : nullptr;
  Tlb& tlb = mmu_.tlb();

#if HWSEC_UOP_GOTO
  // Indexed by UopKind; must track the enum order exactly.
  const void* const kHandlers[kNumUopKinds] = {
      &&u_kNop,    &&u_kHalt,   &&u_kLoadImm, &&u_kAdd,      &&u_kSub,
      &&u_kAnd,    &&u_kOr,     &&u_kXor,     &&u_kShl,      &&u_kShr,
      &&u_kMul,    &&u_kAddImm, &&u_kAndImm,  &&u_kXorImm,   &&u_kShlImm,
      &&u_kShrImm, &&u_kLoad,   &&u_kLoadByte, &&u_kStore,   &&u_kStoreByte,
      &&u_kBranch, &&u_kJump,   &&u_kJumpInd, &&u_kCall,     &&u_kCallInd,
      &&u_kRet,    &&u_kFence,  &&u_kClflush, &&u_kRdCycle,  &&u_kEcall,
  };
#endif

  while (result.executed < max_instructions) {
    if constexpr (Hooked) {
      // Same committed-instruction schedule as the legacy loop: the cycle
      // budget is checked before every instruction and the asynchronous
      // cancel flag is polled when (executed & 0x3FF) == 0, so TimedOut
      // attribution is identical across backends. (Unhooked runs have no
      // watchdog by construction — arming one selects Hooked.)
      if (watchdog_ != nullptr) {
        check_watchdog(result.executed);
      }
    }
    if (!fetch_valid_ || fetch_asid_ != mmu_.asid()) {
      rebuild_fetch_table();
    }
    if (!fetch_flat_ok_) {
      return UopExit::kStep;  // misaligned/spread-out programs: legacy scan.
    }
    const VirtAddr pc = pc_;

    // ---- resolve the micro-op (pure lookup, no side effects) -----------
    const Uop* u = nullptr;
    {
      const VirtAddr off = pc - fetch_lo_;  // below-lo pcs wrap to huge offsets.
      if ((off & 3u) == 0 && (off >> 2) < fetch_slots_.size()) {
        const std::uint32_t p = fetch_slots_[off >> 2];
        if (p != kNoSlot) {
          const LoadedProgram& lp = programs_[p];
          u = &lp.decoded->uops[(pc - lp.base) >> 2];
        }
      }
    }
    if (u == nullptr || u->kind == UopKind::kEcall) {
      // Unresolvable pc: step() owns the fault ordering (translate and
      // fetch fault before the missing-instruction bus error). Ecall:
      // the handler may mutate anything, so the generic path runs it.
      return UopExit::kStep;
    }

    // ---- fetch ----------------------------------------------------------
    const DomainId domain = mmu_.domain();
    const std::uint64_t ctx = fetch_ctx();
    FetchMemo& memo = fetch_memo_[(pc >> 2) & (kFetchMemoSlots - 1)];
    if (memo.pc == pc && memo.ctx == ctx && memo.tlb_epoch == tlb.removal_epoch() &&
        memo.l1i_epoch == l1i->removal_epoch() &&
        memo.excl_epoch == caches.exclusion_epoch()) {
      // Bit-exact replay of the TLB-hit + L1I-hit fetch path.
      tlb.repeat_hit(memo.tlb_index);
      l1i->repeat_hit(memo.l1i_set, memo.l1i_way, domain);
      cycles_ += memo.latency;
      prev_fetch_phys_ = memo.phys;
    } else {
      const TranslateResult ftr = mmu_.translate(pc, AccessType::kExecute);
      cycles_ += ftr.latency;
      if (ftr.fault != Fault::kNone) {
        UOP_RAISE(ftr.fault, pc, AccessType::kExecute);
      }
      const BusResult fetch =
          bus_->cpu_fetch(config_.id, domain, mmu_.privilege(), ftr.phys);
      cycles_ += fetch.latency;
      if (fetch.fault != Fault::kNone) {
        UOP_RAISE(fetch.fault, pc, AccessType::kExecute);
      }
      prev_fetch_phys_ = ftr.phys;
      // Arm the memo: after a successful cacheable fetch the translation
      // sits in the TLB and the line in the L1I, so the *next* execution
      // of this pc takes the hit path the memo replays.
      if (l1i != nullptr && !mmu_.bare_mode() && (ctx & 1u) == 0 &&
          fetch.level != ServiceLevel::kUncached) {
        const auto tlb_index = tlb.find_index(pc, mmu_.asid());
        const auto l1i_way = l1i->find_way(ftr.phys, domain);
        if (tlb_index.has_value() && l1i_way.has_value()) {
          memo.pc = pc;
          memo.phys = ftr.phys;
          memo.latency = tlb.config().hit_latency + l1i->config().hit_latency;
          memo.tlb_index = *tlb_index;
          memo.l1i_set = *l1i_way >> 8;
          memo.l1i_way = *l1i_way & 0xFFu;
          memo.ctx = ctx;
          memo.tlb_epoch = tlb.removal_epoch();
          memo.l1i_epoch = l1i->removal_epoch();
          memo.excl_epoch = caches.exclusion_epoch();
        } else {
          memo.pc = ~VirtAddr{0};
        }
      }
    }
    ++stats_.retired;

    VirtAddr next_pc = pc + 4;

    // No injector on this backend (it forces the legacy interpreter), so
    // a committed ALU result is the value itself. regs_[0] is invariantly
    // zero (every write path guards kZero), so reads skip the guard.
    const auto commit_alu = [&](std::uint8_t rd, Word value) {
      if (rd != 0) {
        regs_[rd] = value;
      }
      if constexpr (Hooked) {
        if (has_leak_) {
          leak_(value);
        }
      }
      cycles_ += config_.alu_latency;
    };

#if HWSEC_UOP_GOTO
    goto* kHandlers[static_cast<std::uint8_t>(u->kind)];
#else
    switch (u->kind)
#endif
    {
      UOP_LABEL(kNop) {
        cycles_ += config_.alu_latency;
        goto u_commit;
      }
      UOP_LABEL(kHalt) {
        // Legacy halt returns before the pc update: pc_ stays at the halt
        // instruction, which it already does here (canonical pc_).
        ++result.executed;
        result.halted = true;
        return UopExit::kDone;
      }
      UOP_LABEL(kLoadImm) {
        commit_alu(u->rd, u->imm);
        goto u_commit;
      }
      UOP_LABEL(kAdd) {
        commit_alu(u->rd, regs_[u->rs1] + regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kSub) {
        commit_alu(u->rd, regs_[u->rs1] - regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kAnd) {
        commit_alu(u->rd, regs_[u->rs1] & regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kOr) {
        commit_alu(u->rd, regs_[u->rs1] | regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kXor) {
        commit_alu(u->rd, regs_[u->rs1] ^ regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kShl) {
        commit_alu(u->rd, regs_[u->rs1] << (regs_[u->rs2] & 31u));
        goto u_commit;
      }
      UOP_LABEL(kShr) {
        commit_alu(u->rd, regs_[u->rs1] >> (regs_[u->rs2] & 31u));
        goto u_commit;
      }
      UOP_LABEL(kMul) {
        commit_alu(u->rd, regs_[u->rs1] * regs_[u->rs2]);
        goto u_commit;
      }
      UOP_LABEL(kAddImm) {
        commit_alu(u->rd, regs_[u->rs1] + u->imm);
        goto u_commit;
      }
      UOP_LABEL(kAndImm) {
        commit_alu(u->rd, regs_[u->rs1] & u->imm);
        goto u_commit;
      }
      UOP_LABEL(kXorImm) {
        commit_alu(u->rd, regs_[u->rs1] ^ u->imm);
        goto u_commit;
      }
      UOP_LABEL(kShlImm) {
        commit_alu(u->rd, regs_[u->rs1] << u->imm);  // shift pre-masked at decode.
        goto u_commit;
      }
      UOP_LABEL(kShrImm) {
        commit_alu(u->rd, regs_[u->rs1] >> u->imm);
        goto u_commit;
      }
      UOP_LABEL(kLoad)
      UOP_LABEL(kLoadByte) {
        const bool byte_load = u->kind == UopKind::kLoadByte;
        const VirtAddr va = regs_[u->rs1] + u->imm;
        if (!byte_load && (va & 3u)) {
          UOP_RAISE(Fault::kAlignment, va, AccessType::kRead);
        }
        const TranslateResult tr = mmu_.translate(va, AccessType::kRead);
        cycles_ += tr.latency;
        if (tr.fault != Fault::kNone) {
          if (config_.speculative_execution) {
            if (const auto forwarded = transient_fault_value(tr, va, byte_load)) {
              run_transient(pc + 4, static_cast<Reg>(u->rd), *forwarded);
            }
          }
          UOP_RAISE(tr.fault, va, AccessType::kRead);
        }
        const BusResult br = byte_load
            ? bus_->cpu_read8(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys)
            : bus_->cpu_read(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys);
        cycles_ += br.latency;
        if (br.fault != Fault::kNone) {
          UOP_RAISE(br.fault, va, AccessType::kRead);
        }
        ++stats_.loads;
        note_service(br.level);
        if (u->rd != 0) {
          regs_[u->rd] = br.value;
        }
        if constexpr (Hooked) {
          if (has_leak_) {
            leak_(br.value);
          }
        }
        goto u_commit;
      }
      UOP_LABEL(kStore)
      UOP_LABEL(kStoreByte) {
        const bool byte_store = u->kind == UopKind::kStoreByte;
        const VirtAddr va = regs_[u->rs1] + u->imm;
        if (!byte_store && (va & 3u)) {
          UOP_RAISE(Fault::kAlignment, va, AccessType::kWrite);
        }
        const TranslateResult tr = mmu_.translate(va, AccessType::kWrite);
        cycles_ += tr.latency;
        if (tr.fault != Fault::kNone) {
          UOP_RAISE(tr.fault, va, AccessType::kWrite);
        }
        const Word value = regs_[u->rs2];
        const BusResult br = byte_store
            ? bus_->cpu_write8(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys,
                               static_cast<std::uint8_t>(value))
            : bus_->cpu_write(config_.id, mmu_.domain(), mmu_.privilege(), tr.phys, value);
        cycles_ += br.latency;
        if (br.fault != Fault::kNone) {
          UOP_RAISE(br.fault, va, AccessType::kWrite);
        }
        ++stats_.stores;
        note_service(br.level);
        if constexpr (Hooked) {
          if (has_leak_) {
            leak_(value);
          }
        }
        goto u_commit;
      }
      UOP_LABEL(kBranch) {
        const Word a = regs_[u->rs1];
        const Word b = regs_[u->rs2];
        bool taken = false;
        switch (u->cond) {
          case BranchCond::kEq: taken = a == b; break;
          case BranchCond::kNe: taken = a != b; break;
          case BranchCond::kLt:
            taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
            break;
          case BranchCond::kGe:
            taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
            break;
          case BranchCond::kLtu: taken = a < b; break;
          case BranchCond::kGeu: taken = a >= b; break;
        }
        const VirtAddr target = u->imm;
        cycles_ += config_.alu_latency;
        if (config_.speculative_execution) {
          const bool predicted = predictor_.pht().predict(pc);
          if (predicted != taken) {
            ++stats_.branch_mispredicts;
            run_transient(predicted ? target : pc + 4, std::nullopt, 0);
            cycles_ += config_.mispredict_penalty;
          }
        }
        predictor_.pht().update(pc, taken);
        next_pc = taken ? target : pc + 4;
        goto u_commit_cf;
      }
      UOP_LABEL(kJump) {
        cycles_ += config_.alu_latency;
        next_pc = u->imm;
        goto u_commit_cf;
      }
      UOP_LABEL(kJumpInd)
      UOP_LABEL(kCallInd) {
        const VirtAddr actual = regs_[u->rs1];
        cycles_ += config_.alu_latency;
        if (config_.speculative_execution) {
          if (const auto predicted = predictor_.btb().predict(pc);
              predicted.has_value() && *predicted != actual) {
            ++stats_.indirect_mispredicts;
            run_transient(*predicted, std::nullopt, 0);
            cycles_ += config_.mispredict_penalty;
          }
        }
        predictor_.btb().update(pc, actual);
        if (u->kind == UopKind::kCallInd) {
          regs_[kLink] = pc + 4;
          predictor_.rsb().push(pc + 4);
        }
        next_pc = actual;
        goto u_commit_cf;
      }
      UOP_LABEL(kCall) {
        cycles_ += config_.alu_latency;
        regs_[kLink] = pc + 4;
        predictor_.rsb().push(pc + 4);
        next_pc = u->imm;
        goto u_commit_cf;
      }
      UOP_LABEL(kRet) {
        const VirtAddr actual = regs_[kLink];
        cycles_ += config_.alu_latency;
        if (config_.speculative_execution) {
          if (const auto predicted = predictor_.rsb().pop();
              predicted.has_value() && *predicted != actual) {
            ++stats_.return_mispredicts;
            run_transient(*predicted, std::nullopt, 0);
            cycles_ += config_.mispredict_penalty;
          }
        } else {
          predictor_.rsb().pop();
        }
        next_pc = actual;
        goto u_commit_cf;
      }
      UOP_LABEL(kFence) {
        cycles_ += 3;
        goto u_commit;
      }
      UOP_LABEL(kClflush) {
        const VirtAddr va = regs_[u->rs1] + u->imm;
        const TranslateResult tr = mmu_.translate(va, AccessType::kRead);
        cycles_ += tr.latency;
        if (tr.fault != Fault::kNone) {
          UOP_RAISE(tr.fault, va, AccessType::kRead);
        }
        bus_->caches().flush_line(tr.phys);
        cycles_ += 10;
        goto u_commit;
      }
      UOP_LABEL(kRdCycle) {
        if (u->rd != 0) {
          regs_[u->rd] = static_cast<Word>(cycles_);
        }
        cycles_ += config_.alu_latency;
        goto u_commit;
      }
      UOP_LABEL(kEcall) {
        return UopExit::kStep;  // unreachable: filtered before dispatch.
      }
      UOP_DEFAULT
    }

  u_commit_cf:
    if constexpr (Hooked) {
      if (has_cf_hook_) {
        cf_hook_(pc, next_pc);
      }
    }
  u_commit:
    pc_ = next_pc;
    ++result.executed;
  }
  return UopExit::kDone;
}

template Cpu::UopExit Cpu::run_uops<true>(RunResult& result, std::uint64_t max_instructions);
template Cpu::UopExit Cpu::run_uops<false>(RunResult& result, std::uint64_t max_instructions);

}  // namespace hwsec::sim
