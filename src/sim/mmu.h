// Memory management unit: TLB + hardware page walker + permission checks.
//
// One Mmu instance per core. The walker reads page tables directly from
// simulated DRAM, so whatever the (untrusted) OS wrote there is what gets
// enforced — the MMU has no out-of-band knowledge. Architectures hook the
// walk via a WalkCheck callback:
//  * Sanctum installs its page-walker invariant checks here (enclave
//    virtual ranges must resolve to enclave-owned frames, OS mappings must
//    not reach into enclave frames);
//  * SGX installs its EPCM ownership check here (an enclave page may only
//    be touched in enclave mode by its owning enclave).
//
// Foreshadow/L1TF support: when the leaf PTE is not-present or has a
// reserved bit set, translation *fails* architecturally, but the result
// still carries the stale frame bits of the PTE (`l1tf_phys`). The CPU's
// transient path uses that to model the L1-terminal-fault behaviour: if
// that physical line happens to live in the core's L1D, the transient
// load reads it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/memory.h"
#include "sim/page_table.h"
#include "sim/tlb.h"
#include "sim/types.h"

namespace hwsec::sim {

struct TranslateResult {
  Fault fault = Fault::kNone;
  PhysAddr phys = 0;
  Word pte_flags = 0;
  Cycle latency = 0;
  /// Stale physical address candidate on a terminal fault (frame bits of
  /// the faulting PTE plus the page offset); nullopt when the walk never
  /// reached a leaf PTE.
  std::optional<PhysAddr> l1tf_phys;
};

class Mmu {
 public:
  /// Extra check run after a successful walk and before the TLB fill.
  /// Returning anything but Fault::kNone aborts the translation.
  using WalkCheck =
      std::function<Fault(VirtAddr va, const Translation& t, AccessType type, Privilege priv,
                          DomainId domain)>;

  Mmu(PhysicalMemory& mem, TlbConfig tlb_config);

  /// Installs / replaces the architecture's walk check.
  void set_walk_check(WalkCheck check) { walk_check_ = std::move(check); }

  /// Switches the translation context. If the TLB is untagged this
  /// flushes it (hardware behaviour); tagged TLBs keep entries, which is
  /// what enables cross-context TLB probing.
  void set_context(PhysAddr root, Asid asid, DomainId domain, Privilege priv);

  /// Disables translation entirely (physical == virtual); embedded,
  /// MPU-based profiles run in this mode.
  void set_bare_mode(bool bare) { bare_ = bare; }
  bool bare_mode() const { return bare_; }

  TranslateResult translate(VirtAddr va, AccessType type);

  /// Translation with an explicit privilege override (the CPU uses the
  /// context privilege; the DMA path and tests may override).
  TranslateResult translate_as(VirtAddr va, AccessType type, Privilege priv);

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  PhysAddr root() const { return root_; }
  Asid asid() const { return asid_; }
  DomainId domain() const { return domain_; }
  Privilege privilege() const { return priv_; }

  std::uint64_t walks() const { return walks_; }

 private:
  Fault check_flags(Word flags, AccessType type, Privilege priv) const;

  PhysicalMemory* mem_;
  Tlb tlb_;
  WalkCheck walk_check_;
  PhysAddr root_ = 0;
  Asid asid_ = 0;
  DomainId domain_ = kDomainNormal;
  Privilege priv_ = Privilege::kSupervisor;
  bool bare_ = false;
  std::uint64_t walks_ = 0;
};

}  // namespace hwsec::sim
