// Section-3 architecture comparison: declarative traits cross-checked
// with live probes against each architecture model.
//
// Probed, not just declared:
//  * enclave capacity — create enclaves until the design refuses;
//  * attestation — produce a report and verify it against the platform
//    verification key;
//  * DMA resistance — a malicious peripheral reads the architecture's
//    most sensitive memory; the outcome is classified as plaintext
//    leaked / ciphertext only / transaction blocked;
//  * isolation — a foreign CPU context attempts to reach protected
//    memory through the architecture's own enforcement point.
#pragma once

#include <string>
#include <vector>

#include "tee/architecture.h"

namespace hwsec::core {

enum class DmaProbeOutcome : std::uint8_t {
  kLeakedPlaintext,  ///< secret recovered verbatim (no DMA defense).
  kCiphertextOnly,   ///< transfer succeeded, data unintelligible (SGX MEE).
  kBlocked,          ///< transaction vetoed (TZASC / Sanctum filter).
  kNotProbed,
};

std::string to_string(DmaProbeOutcome o);

struct ArchitectureAssessment {
  hwsec::tee::ArchitectureTraits traits;
  int enclaves_created = 0;      ///< probe capped at 3.
  hwsec::tee::EnclaveError capacity_stop = hwsec::tee::EnclaveError::kOk;
  bool attestation_verified = false;
  DmaProbeOutcome dma = DmaProbeOutcome::kNotProbed;
  bool isolation_enforced = false;
  std::string notes;
};

/// Probes `arch`. `secret_phys`/`secret` describe the architecture's most
/// sensitive resident data for the DMA probe (an enclave secret, the
/// SMART key, ...). `isolation_check` runs the design's enforcement path
/// for a foreign access and returns whether it was denied.
ArchitectureAssessment assess_architecture(
    hwsec::tee::Architecture& arch, hwsec::sim::PhysAddr secret_phys,
    const std::vector<std::uint8_t>& secret,
    const std::function<bool()>& isolation_check);

/// Renders assessment rows as a fixed-width comparison table.
std::string render_matrix(const std::vector<ArchitectureAssessment>& rows);

}  // namespace hwsec::core
