// Eviction-set construction for the shared LLC.
//
// A Prime+Probe or Evict+Time attacker needs, for each victim cache line,
// `ways` attacker-owned lines mapping to the same LLC set. The builder
// allocates attacker frames through a caller-supplied allocator — which
// is the hinge of the Sanctum experiment: under page coloring the OS
// allocator can only produce frames whose LLC sets are disjoint from the
// enclave's, so build() comes back short and the attack starves.
#pragma once

#include <functional>
#include <vector>

#include "sim/machine.h"

namespace hwsec::attacks {

class EvictionSetBuilder {
 public:
  using FrameAllocator = std::function<hwsec::sim::PhysAddr()>;

  /// `allocator` provides attacker frames (default: the machine's plain
  /// bump allocator). `max_frames` caps the hunt.
  EvictionSetBuilder(hwsec::sim::Machine& machine, FrameAllocator allocator,
                     std::uint32_t max_frames = 4096);

  /// Lines (one per attacker frame region) congruent with `target` in the
  /// LLC. Returns up to `count` line addresses; fewer if the allocator
  /// cannot reach the target's sets (the partitioned case).
  std::vector<hwsec::sim::PhysAddr> build(hwsec::sim::PhysAddr target, std::uint32_t count);

  /// Frames allocated so far (the attack's memory cost).
  std::uint32_t frames_used() const { return static_cast<std::uint32_t>(pool_.size()); }

 private:
  hwsec::sim::Machine* machine_;
  FrameAllocator allocator_;
  std::uint32_t max_frames_;
  std::vector<hwsec::sim::PhysAddr> pool_;
};

}  // namespace hwsec::attacks
