// hwsecd — the campaign-as-a-service control plane.
//
// A long-running daemon that turns the campaign engine into a service:
// clients submit versioned JSON campaign specs over a Unix or local TCP
// socket, the daemon schedules them across a shared MachinePool with
// per-tenant quotas and fair-share priority, executes each job through the
// exact run_campaign_resilient / run_campaign_sharded path a direct caller
// would use (so results are bit-identical to a hand-launched run), streams
// incremental progress, and serves the obs metrics scrape as /status.
//
// Ownership model — the property everything else falls out of: a JOB
// BELONGS TO THE DAEMON, NOT TO THE CONNECTION THAT SUBMITTED IT.
// Connections are subscriptions: a client disconnect mid-run changes
// nothing about the job (service_detached_streams counts it), and any
// later connection can re-attach by job id and receive the same terminal
// result frame. Checkpoint identity is namespaced per job
// (scope = "tenant/job-id"), so two tenants submitting byte-identical
// specs keep disjoint checkpoint files — the cross-resume collision the
// config-only identity allowed is structurally gone.
//
// Scheduling: `executors` worker threads drain one shared queue.
// Admission rejects a tenant over max_queued_per_tenant and any spec over
// the per-spec resource caps (max_trials/max_workers/max_processes — a
// hostile {"workers":1000000} must bounce at submit, not fork-bomb the
// shared process); dispatch skips
// tenants at max_running_per_tenant and picks, among eligible jobs, the
// tenant with the fewest running jobs (fair share), then the higher
// priority, then FIFO. One MachinePool is shared by every in-process job,
// so concurrent tenants reuse each other's warmed machines (profiles are
// keyed by name; the pool contract already guarantees reset == fresh).
//
// Shutdown: the first SIGTERM/SIGINT (or a kStopDaemon frame) drains —
// admission closes, queued jobs fail with "daemon draining", running
// campaigns observe the global shutdown flag, mark unstarted trials
// skipped, and save their final checkpoint. A second signal escalates to
// _exit(128+sig) (core/shutdown.cpp). hwsecd exits 128+signal after a
// signal-initiated drain, 0 after a client-initiated stop.
//
// The /status endpoint speaks two dialects on the same port: a frame
// client sends kStatusRequest; anything opening with "GET " is answered as
// HTTP/1.0 with the same JSON body, so `curl --unix-socket` works against
// a live daemon.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/machine_pool.h"
#include "core/service/protocol.h"
#include "core/service/spec.h"
#include "core/shard/wire.h"

namespace hwsec::core::service {

struct ServiceConfig {
  /// Unix-domain listener path (empty disables). The daemon unlinks a
  /// stale socket at this path on start and removes it on stop.
  std::string unix_socket;
  /// Local TCP listener on 127.0.0.1 (0 disables; use 1-65535, or let the
  /// kernel pick with `tcp_port = 0` plus `tcp_enabled = true` and read
  /// the bound port back from tcp_port()).
  std::uint16_t tcp_port = 0;
  bool tcp_enabled = false;
  /// Concurrent job executor threads.
  unsigned executors = 2;
  /// Fair-share quota: jobs of one tenant running at once.
  unsigned max_running_per_tenant = 1;
  /// Admission quota: queued + running jobs per tenant.
  std::size_t max_queued_per_tenant = 16;
  /// Admission cap on spec.trials (a fat-fingered 10^12-trial spec should
  /// bounce at submit, not wedge an executor).
  std::uint64_t max_trials = 10'000'000;
  /// Admission cap on spec.workers: threads one job may ask for. Without
  /// it a single {"workers": 1000000} spec reaches ThreadPool's
  /// constructor and spawns (or dies trying to spawn) a million threads
  /// inside the shared daemon process.
  std::uint32_t max_workers = 256;
  /// Admission cap on spec.processes (shard supervisor fork count).
  std::uint32_t max_processes = 64;
  /// Admission cap on spec.hosts (remote shard workers one job may dial).
  /// The spec codec already bounds the list at kMaxSpecHosts; this is the
  /// tighter service policy — each host is an outbound connection the
  /// shared daemon opens on the tenant's behalf.
  std::size_t max_hosts = 8;
  /// Terminal (done/failed) jobs retained per tenant for attach-by-id
  /// replay. The oldest beyond this are evicted — records and all — when a
  /// job of the same tenant goes terminal, so a long-running daemon's
  /// memory is bounded instead of accreting every result blob forever.
  std::size_t max_finished_per_tenant = 64;
  /// Directory for per-job checkpoints (empty disables checkpointing).
  std::string checkpoint_dir;
  /// Progress-frame period for streaming subscriptions.
  std::chrono::milliseconds progress_interval{50};
};

/// Read-only job view for status/introspection.
struct JobInfo {
  std::string id;
  std::string tenant;
  std::string name;
  std::string kind;
  JobState state = JobState::kQueued;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t digest = 0;
};

class Daemon {
 public:
  explicit Daemon(ServiceConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds listeners and spawns executor/accept threads. Throws
  /// SimError(kConfigError) when no listener can be bound.
  void start();

  /// Full daemon main loop: start(), then block until a shutdown signal
  /// (install_graceful_shutdown first) or a client kStopDaemon, then drain
  /// and stop. Returns the process exit code (128+signal, or 0).
  int serve();

  /// Stops admission, fails queued jobs, lets running jobs finish (they
  /// cut short on their own only if the global shutdown flag is up), joins
  /// every thread, closes listeners. Idempotent.
  void stop();

  /// Asks serve() to return (as a client kStopDaemon does).
  void request_stop();

  /// Bound TCP port (after start) — useful with an ephemeral port.
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  std::vector<JobInfo> jobs() const;

  /// The /status document: service summary + per-job table + the full obs
  /// metrics scrape, one JSON object.
  std::string status_json() const;

 private:
  struct Job {
    std::string id;
    CampaignSpec spec;
    std::uint64_t seq = 0;
    std::atomic<JobState> state{JobState::kQueued};
    std::atomic<std::uint64_t> done{0};
    std::uint64_t total = 0;
    // Terminal fields, written once by the executor under jobs_mutex_
    // before state goes terminal (state is the release gate).
    std::string records;
    std::uint64_t digest = 0;
    std::string error;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  // listeners / accept path
  int bind_unix();
  int bind_tcp();
  void accept_loop();
  void reap_finished_connections_locked();

  // connection protocol
  void connection_loop(int fd);
  void handle_http(int fd);
  void handle_submit(int fd, const std::string& payload);
  void handle_attach(int fd, const std::string& payload);
  void stream_job(int fd, const std::shared_ptr<Job>& job);
  bool send_service_frame(int fd, shard::FrameType type, const std::string& payload);

  // scheduling / execution
  void executor_loop();
  std::shared_ptr<Job> pick_job_locked();
  void run_job(const std::shared_ptr<Job>& job);
  void fail_queued_jobs_locked(const std::string& reason);
  void evict_finished_locked(const std::string& tenant);

  ServiceConfig config_;
  std::unique_ptr<shard::SigpipeIgnore> sigpipe_guard_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};   ///< no new admissions/dispatches.
  std::atomic<bool> closing_{false};    ///< connection threads must wind down.
  std::atomic<bool> stop_requested_{false};

  MachinePool machines_;  ///< shared across every in-process job.

  mutable std::mutex jobs_mutex_;
  std::condition_variable executors_cv_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;       ///< by id, all states.
  std::vector<std::shared_ptr<Job>> queue_;                ///< FIFO within arrival.
  std::map<std::string, unsigned> running_per_tenant_;
  std::map<std::string, std::size_t> admitted_per_tenant_; ///< queued + running.
  std::uint64_t next_seq_ = 1;

  std::vector<std::thread> executor_threads_;
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::list<Connection> connections_;
};

}  // namespace hwsec::core::service
