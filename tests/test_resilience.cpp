// Campaign resilience layer: error taxonomy, fault containment, per-trial
// watchdogs, crash-safe checkpoint/resume, and the self-chaos harness.
//
// The invariant under test throughout: containment and recovery may NEVER
// perturb the values of unaffected slots. A campaign with one poisoned
// trial must produce, in every other slot, exactly the bytes the fault-free
// campaign produces — at any worker count, and across a kill/resume cycle.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/resilience/checkpoint.h"
#include "core/resilience/monitor.h"
#include "core/resilience/resilient.h"
#include "core/shard/supervisor.h"
#include "core/shutdown.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "sim/rng.h"
#include "sim/sim_error.h"
#include "sim/watchdog.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;
using hwsec::ErrorKind;
using hwsec::SimError;

namespace {

/// Checkpoint files land in HWSEC_CHECKPOINT_DIR when set (CI archives the
/// directory on failure), else the working directory.
std::string ckpt_path(const std::string& name) {
  const char* dir = std::getenv("HWSEC_CHECKPOINT_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name + "." + std::to_string(::getpid()) + ".ckpt";
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- error taxonomy ---------------------------------------------------

TEST(SimError, CarriesKindDetailMachineAndTrial) {
  SimError e(ErrorKind::kGuestFault, "unexpected halt");
  EXPECT_EQ(e.kind(), ErrorKind::kGuestFault);
  EXPECT_EQ(e.detail(), "unexpected halt");
  EXPECT_FALSE(e.has_trial());
  EXPECT_STREQ(e.what(), "GuestFault: unexpected halt");

  e.with_machine("mobile");
  EXPECT_EQ(e.machine(), "mobile");
  EXPECT_STREQ(e.what(), "GuestFault: unexpected halt [machine=mobile]");

  e.with_trial(3, 99);
  EXPECT_TRUE(e.has_trial());
  EXPECT_EQ(e.trial_index(), 3u);
  EXPECT_EQ(e.trial_seed(), 99u);
  EXPECT_STREQ(e.what(), "GuestFault: unexpected halt [machine=mobile] [trial=3 seed=99]");
}

TEST(SimError, TrialAttributionIsIdempotent) {
  // A nested campaign must not overwrite the inner trial's identity.
  SimError e(ErrorKind::kInternalError, "x");
  e.with_trial(5, 50).with_trial(9, 90);
  EXPECT_EQ(e.trial_index(), 5u);
  EXPECT_EQ(e.trial_seed(), 50u);
}

TEST(SimError, IsCatchableAsRuntimeError) {
  // Legacy call sites catch std::runtime_error; the taxonomy must not
  // break them.
  try {
    throw SimError(ErrorKind::kConfigError, "bad geometry");
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(contains(e.what(), "bad geometry"));
  }
}

TEST(SimError, WrapCurrentExceptionMapsTheTaxonomy) {
  auto wrap = [](auto thrower) {
    try {
      thrower();
    } catch (...) {
      return core::detail::wrap_current_exception();
    }
    return SimError(ErrorKind::kInternalError, "did not throw");
  };
  EXPECT_EQ(wrap([] { throw SimError(ErrorKind::kTimedOut, "w"); }).kind(),
            ErrorKind::kTimedOut);
  EXPECT_EQ(wrap([] { throw std::bad_alloc(); }).kind(), ErrorKind::kResourceExhausted);
  EXPECT_EQ(wrap([] { throw std::runtime_error("r"); }).kind(), ErrorKind::kInternalError);
  EXPECT_EQ(wrap([] { throw 42; }).kind(), ErrorKind::kInternalError);
}

TEST(SimError, OutOfFramesReportsRequestedVsFreeAccounting) {
  sim::Machine m(sim::MachineProfile::embedded(), 1);  // 1 MiB = 256 frames.
  try {
    for (int i = 0; i < 10000; ++i) {
      m.alloc_frames(3);
    }
    FAIL() << "allocator never exhausted";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kResourceExhausted);
    EXPECT_EQ(e.machine(), "embedded");
    EXPECT_TRUE(contains(e.detail(), "requested 3 frame(s)")) << e.detail();
    EXPECT_TRUE(contains(e.detail(), "of 256 frames are free")) << e.detail();
  }
}

// ---- fault containment ------------------------------------------------

std::vector<core::TrialOutcome<std::uint64_t>> poisoned_campaign(unsigned workers) {
  return core::run_campaign_resilient<std::uint64_t>(
      {.seed = 7, .trials = 16, .workers = workers}, {},
      [](const core::TrialContext& ctx) -> std::uint64_t {
        if (ctx.index == 5) {
          throw std::runtime_error("poisoned trial");
        }
        return ctx.seed * 2 + 1;
      });
}

TEST(Resilience, ThrowingTrialIsContainedAndNeighboursBitIdentical) {
  for (const unsigned workers : {1u, 2u, 8u}) {
    const auto outcomes = poisoned_campaign(workers);
    ASSERT_EQ(outcomes.size(), 16u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i == 5) {
        ASSERT_FALSE(outcomes[i].ok()) << "workers=" << workers;
        const SimError& e = *outcomes[i].error;
        EXPECT_EQ(e.kind(), ErrorKind::kInternalError);
        EXPECT_EQ(e.detail(), "poisoned trial");
        EXPECT_TRUE(e.has_trial());
        EXPECT_EQ(e.trial_index(), 5u);
        EXPECT_EQ(e.trial_seed(), sim::derive_seed(7, 5));
      } else {
        ASSERT_TRUE(outcomes[i].ok()) << "workers=" << workers << " slot=" << i;
        // Exactly the value the fault-free engine computes for this slot.
        EXPECT_EQ(outcomes[i].value(), sim::derive_seed(7, i) * 2 + 1);
        EXPECT_EQ(outcomes[i].attempts, 1u);
      }
    }
  }
}

TEST(Resilience, ErrorWhatStringsIdenticalAcrossWorkerCounts) {
  const auto one = poisoned_campaign(1);
  const auto eight = poisoned_campaign(8);
  EXPECT_STREQ(one[5].error->what(), eight[5].error->what());
}

// ---- watchdogs --------------------------------------------------------

/// A guest that never halts: the cycle budget is its only way out.
void run_spinning_guest(sim::Machine& machine, std::uint64_t max_instructions) {
  sim::ProgramBuilder b(0x1000);
  b.label("spin").jump("spin");
  const sim::Program program = b.build();
  machine.cpu(0).load_program(program);
  machine.cpu(0).run_from(program.address_of("spin"), max_instructions);
}

TEST(Watchdog, CycleBudgetConvertsHangIntoDeterministicTimedOut) {
  std::string first_what;
  for (int round = 0; round < 2; ++round) {
    sim::Machine machine(sim::MachineProfile::embedded(), 1);
    sim::TrialWatchdog watchdog;
    watchdog.cycle_budget = 5000;
    machine.arm_watchdog(&watchdog);
    try {
      run_spinning_guest(machine, 100'000'000);
      FAIL() << "spin loop terminated";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTimedOut);
      EXPECT_TRUE(contains(e.detail(), "cycle budget")) << e.detail();
      if (round == 0) {
        first_what = e.what();
      } else {
        EXPECT_EQ(first_what, e.what()) << "timeout must be deterministic";
      }
    }
  }
}

TEST(Watchdog, CancelFlagStopsTheGuestAtNextPoll) {
  sim::Machine machine(sim::MachineProfile::embedded(), 1);
  sim::TrialWatchdog watchdog;  // no cycle budget: cancel is the only trigger.
  watchdog.cancel.store(true);
  machine.arm_watchdog(&watchdog);
  try {
    run_spinning_guest(machine, 100'000'000);
    FAIL() << "spin loop terminated";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTimedOut);
    EXPECT_TRUE(contains(e.detail(), "wall-clock")) << e.detail();
  }
}

TEST(Watchdog, CampaignConvertsHangingTrialIntoTimedOutSlot) {
  core::ResilienceConfig res;
  res.trial_cycle_budget = 5000;
  auto run = [&res](unsigned workers) {
    return core::run_campaign_resilient<int>(
        {.seed = 11, .trials = 4, .workers = workers}, res,
        [](const core::TrialContext& ctx) -> int {
          sim::Machine machine(sim::MachineProfile::embedded(), ctx.seed);
          machine.arm_watchdog(ctx.watchdog);
          if (ctx.index == 2) {
            run_spinning_guest(machine, 100'000'000);  // would hang forever.
          }
          return static_cast<int>(ctx.index);
        });
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  for (const auto* outcomes : {&sequential, &parallel}) {
    ASSERT_FALSE((*outcomes)[2].ok());
    EXPECT_EQ((*outcomes)[2].error->kind(), ErrorKind::kTimedOut);
    EXPECT_EQ((*outcomes)[2].error->trial_index(), 2u);
    for (const std::size_t i : {0u, 1u, 3u}) {
      ASSERT_TRUE((*outcomes)[i].ok());
      EXPECT_EQ((*outcomes)[i].value(), static_cast<int>(i));
    }
  }
  EXPECT_STREQ(sequential[2].error->what(), parallel[2].error->what());
}

TEST(Watchdog, WallClockMonitorCancelsOnlyAfterTimeout) {
  sim::TrialWatchdog watchdog;
  core::WallClockMonitor monitor(std::chrono::milliseconds(20));
  auto registration = monitor.watch(watchdog);
  for (int i = 0; i < 1000 && !watchdog.cancel.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(watchdog.cancel.load());
}

TEST(Watchdog, ZeroWallClockTimeoutIsInert) {
  sim::TrialWatchdog watchdog;
  core::WallClockMonitor monitor(std::chrono::milliseconds(0));
  auto registration = monitor.watch(watchdog);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(watchdog.cancel.load());
}

// ---- failure policies -------------------------------------------------

TEST(Resilience, FailFastThrowsTheLowestIndexFailure) {
  core::ResilienceConfig res;
  res.policy = core::FailurePolicy::kFailFast;
  auto body = [](const core::TrialContext& ctx) -> int {
    if (ctx.index >= 10) {
      throw std::runtime_error("late failure");
    }
    return static_cast<int>(ctx.index);
  };
  // Sequential: index 10 fails first and everything after is skipped, so
  // the rethrown error must name trial 10 exactly.
  try {
    core::run_campaign_resilient<int>({.seed = 5, .trials = 32, .workers = 1}, res, body);
    FAIL() << "fail-fast did not throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kInternalError);
    EXPECT_EQ(e.trial_index(), 10u);
  }
  // Parallel: still throws a structured error (the winning index may be
  // any failing trial that started before the trip).
  EXPECT_THROW(
      core::run_campaign_resilient<int>({.seed = 5, .trials = 32, .workers = 4}, res, body),
      SimError);
}

TEST(Resilience, RetryRecoversFromInjectedChaos) {
  core::ResilienceConfig res;
  res.policy = core::FailurePolicy::kRetry;
  res.max_attempts = 10;
  res.chaos.throw_probability = 0.35;
  const auto outcomes = core::run_campaign_resilient<std::uint64_t>(
      {.seed = 21, .trials = 12, .workers = 2}, res,
      [](const core::TrialContext& ctx) { return ctx.seed; });
  unsigned retried = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "slot " << i << ": " << outcomes[i].error->what();
    EXPECT_EQ(outcomes[i].value(), sim::derive_seed(21, i));
    retried += outcomes[i].attempts > 1 ? 1 : 0;
  }
  // The chaos stream is deterministic: with p=0.35 over 12 trials some
  // first attempts certainly fail, proving retry actually re-ran them.
  EXPECT_GT(retried, 0u);
}

TEST(Resilience, ChaosOutcomeVectorIsBitIdenticalAcrossWorkerCounts) {
  core::ResilienceConfig res;
  res.chaos.throw_probability = 0.3;
  res.chaos.bad_alloc_probability = 0.2;
  res.chaos.delay_probability = 0.5;
  res.chaos.max_delay_us = 200;
  auto run = [&res](unsigned workers) {
    return core::run_campaign_resilient<std::uint64_t>(
        {.seed = 33, .trials = 20, .workers = workers}, res,
        [](const core::TrialContext& ctx) { return ctx.seed ^ 0xABCDEF; });
  };
  const auto sequential = run(1);
  for (const unsigned workers : {2u, 8u}) {
    const auto parallel = run(workers);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].ok(), sequential[i].ok()) << "slot " << i;
      EXPECT_EQ(parallel[i].attempts, sequential[i].attempts) << "slot " << i;
      if (sequential[i].ok()) {
        EXPECT_EQ(parallel[i].value(), sequential[i].value()) << "slot " << i;
      } else {
        EXPECT_STREQ(parallel[i].error->what(), sequential[i].error->what()) << "slot " << i;
      }
    }
  }
}

// ---- machine pool under the resilient runner ---------------------------

/// Trial body leasing a machine (pooled reset-reuse when `pool` is set,
/// fresh construction when nullptr) and fingerprinting what it computed.
std::uint64_t leased_machine_trial(const core::TrialContext& ctx, core::MachinePool* pool) {
  auto lease = core::acquire_machine(pool, sim::MachineProfile::mobile(), ctx.seed);
  sim::Machine& m = *lease;
  const sim::PhysAddr frame = m.alloc_frame();
  m.memory().write32(frame, static_cast<sim::Word>(ctx.seed));
  m.caches().access(0, sim::kDomainNormal, frame, sim::AccessType::kRead);
  return static_cast<std::uint64_t>(m.memory().read32(frame)) << 32 ^ m.rng().next_u64() ^ frame;
}

TEST(Resilience, PooledMachinesBitIdenticalToFreshUnderChaos) {
  core::ResilienceConfig res;
  res.policy = core::FailurePolicy::kRetry;
  res.max_attempts = 10;
  res.chaos.throw_probability = 0.25;

  // Reference: the same chaotic campaign with per-trial fresh construction.
  const auto reference = core::run_campaign_resilient<std::uint64_t>(
      {.seed = 77, .trials = 24, .workers = 1}, res,
      [](const core::TrialContext& ctx) { return leased_machine_trial(ctx, nullptr); });

  // Pooled runs must reproduce it bit for bit at every worker count — also
  // when a chaos throw abandons a lease mid-trial and the machine goes
  // back to the pool dirty, to be reset on the retry's acquire.
  for (const unsigned workers : {1u, 2u, 8u}) {
    core::MachinePool pool;
    core::ResilienceConfig pooled_res = res;
    pooled_res.machines = &pool;
    const auto outcomes = core::run_campaign_resilient<std::uint64_t>(
        {.seed = 77, .trials = 24, .workers = workers}, pooled_res,
        [](const core::TrialContext& ctx) { return leased_machine_trial(ctx, ctx.machines); });
    ASSERT_EQ(outcomes.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(outcomes[i].ok(), reference[i].ok()) << "slot " << i << ", " << workers << "w";
      EXPECT_EQ(outcomes[i].attempts, reference[i].attempts) << "slot " << i;
      if (reference[i].ok()) {
        EXPECT_EQ(outcomes[i].value(), reference[i].value()) << "slot " << i << ", " << workers << "w";
      } else {
        EXPECT_STREQ(outcomes[i].error->what(), reference[i].error->what()) << "slot " << i;
      }
    }
    EXPECT_LE(pool.machines_built(), workers) << "more machines than concurrent workers";
    EXPECT_GT(pool.leases_served(), pool.machines_built()) << "pool was never actually reused";
  }
}

// ---- checkpoint / resume ----------------------------------------------

TEST(Checkpoint, RoundTripsOkAndErrorRecords) {
  const std::string path = ckpt_path("roundtrip");
  core::CheckpointFile save(42, 8, sizeof(std::uint64_t));
  const std::uint64_t value = 0x0123456789ABCDEFull;
  core::CheckpointRecord ok;
  ok.ok = true;
  ok.attempts = 2;
  ok.payload.assign(reinterpret_cast<const char*>(&value), sizeof(value));
  save.record(1, ok);
  core::CheckpointRecord err;
  err.ok = false;
  err.kind = static_cast<std::uint8_t>(ErrorKind::kTimedOut);
  err.detail = "cycle budget of 5000 exhausted";
  err.machine = "embedded";
  save.record(4, err);
  ASSERT_TRUE(save.save(path));

  core::CheckpointFile load(42, 8, sizeof(std::uint64_t));
  ASSERT_TRUE(load.load(path));
  ASSERT_EQ(load.size(), 2u);
  const auto& r1 = load.records().at(1);
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.attempts, 2u);
  std::uint64_t restored = 0;
  std::memcpy(&restored, r1.payload.data(), sizeof(restored));
  EXPECT_EQ(restored, value);
  const auto& r4 = load.records().at(4);
  EXPECT_FALSE(r4.ok);
  EXPECT_EQ(static_cast<ErrorKind>(r4.kind), ErrorKind::kTimedOut);
  EXPECT_EQ(r4.detail, "cycle budget of 5000 exhausted");
  EXPECT_EQ(r4.machine, "embedded");

  // A mismatched campaign identity rejects the whole file.
  core::CheckpointFile wrong_seed(43, 8, sizeof(std::uint64_t));
  EXPECT_FALSE(wrong_seed.load(path));
  core::CheckpointFile wrong_size(42, 8, 4);
  EXPECT_FALSE(wrong_size.load(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeSkipsFinishedTrialsBitIdentically) {
  const std::string path = ckpt_path("full_resume");
  std::remove(path.c_str());
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  res.checkpoint_every = 1;
  const core::CampaignConfig cfg{.seed = 77, .trials = 10, .workers = 2};

  const auto first = core::run_campaign_resilient<std::uint64_t>(
      cfg, res, [](const core::TrialContext& ctx) { return ctx.seed * 3; });
  ASSERT_EQ(first.size(), 10u);

  // Second run: the body proves nothing re-executes by throwing on entry.
  const auto resumed = core::run_campaign_resilient<std::uint64_t>(
      cfg, res, [](const core::TrialContext&) -> std::uint64_t {
        throw std::runtime_error("resume must not re-run finished trials");
      });
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_TRUE(resumed[i].ok()) << "slot " << i;
    EXPECT_TRUE(resumed[i].from_checkpoint);
    EXPECT_EQ(resumed[i].value(), first[i].value());
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, PartialResumeRunsOnlyTheMissingSlots) {
  const std::string path = ckpt_path("partial_resume");
  std::remove(path.c_str());
  const std::uint64_t seed = 123;
  const std::size_t trials = 8;
  auto value_for = [seed](std::size_t i) { return sim::derive_seed(seed, i) + 7; };

  // Hand-build a checkpoint holding slots 0..3 only.
  core::CheckpointFile partial(seed, trials, sizeof(std::uint64_t));
  for (std::size_t i = 0; i < 4; ++i) {
    core::CheckpointRecord rec;
    rec.ok = true;
    const std::uint64_t v = value_for(i);
    rec.payload.assign(reinterpret_cast<const char*>(&v), sizeof(v));
    partial.record(i, rec);
  }
  ASSERT_TRUE(partial.save(path));

  core::ResilienceConfig res;
  res.checkpoint_path = path;
  std::array<std::atomic<int>, 8> executed{};
  const auto outcomes = core::run_campaign_resilient<std::uint64_t>(
      {.seed = seed, .trials = trials, .workers = 2}, res,
      [&executed, &value_for](const core::TrialContext& ctx) {
        executed[ctx.index].fetch_add(1);
        return value_for(ctx.index);
      });
  for (std::size_t i = 0; i < trials; ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "slot " << i;
    EXPECT_EQ(outcomes[i].value(), value_for(i));
    EXPECT_EQ(outcomes[i].from_checkpoint, i < 4);
    EXPECT_EQ(executed[i].load(), i < 4 ? 0 : 1) << "slot " << i;
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ErrorSlotsAreCheckpointedAndNotRetriedOnResume) {
  const std::string path = ckpt_path("error_resume");
  std::remove(path.c_str());
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  res.checkpoint_every = 1;
  const core::CampaignConfig cfg{.seed = 9, .trials = 6, .workers = 1};

  const auto first = core::run_campaign_resilient<std::uint64_t>(
      cfg, res, [](const core::TrialContext& ctx) -> std::uint64_t {
        if (ctx.index == 2) {
          throw std::runtime_error("deterministic failure");
        }
        return ctx.seed;
      });
  ASSERT_FALSE(first[2].ok());

  // Resume with a body that would now succeed: the recorded failure must
  // be restored, not retried (the campaign's history is authoritative).
  std::atomic<int> reran{0};
  const auto resumed = core::run_campaign_resilient<std::uint64_t>(
      cfg, res, [&reran](const core::TrialContext& ctx) {
        reran.fetch_add(1);
        return ctx.seed;
      });
  EXPECT_EQ(reran.load(), 0);
  ASSERT_FALSE(resumed[2].ok());
  EXPECT_TRUE(resumed[2].from_checkpoint);
  EXPECT_EQ(resumed[2].error->kind(), ErrorKind::kInternalError);
  EXPECT_EQ(resumed[2].error->detail(), "deterministic failure");
  EXPECT_EQ(resumed[2].error->trial_index(), 2u);
  EXPECT_STREQ(resumed[2].error->what(), first[2].error->what());
  std::remove(path.c_str());
}

TEST(Checkpoint, CheckpointingNonTrivialResultIsAConfigError) {
  core::ResilienceConfig res;
  res.checkpoint_path = ckpt_path("nontrivial");
  try {
    core::run_campaign_resilient<std::string>(
        {.seed = 1, .trials = 2}, res,
        [](const core::TrialContext&) { return std::string("x"); });
    FAIL() << "expected kConfigError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kConfigError);
  }
}

TEST(Checkpoint, KilledCampaignResumesBitIdentically) {
  const std::string path = ckpt_path("sigkill");
  std::remove(path.c_str());
  const core::CampaignConfig cfg{.seed = 424242, .trials = 30, .workers = 2};
  const std::function<std::uint64_t(const core::TrialContext&)> slow_body =
      [](const core::TrialContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
        return ctx.seed * 2 + 1;
      };

  // Reference: the uninterrupted campaign (no checkpoint involved).
  const auto reference =
      core::run_campaign_resilient<std::uint64_t>(cfg, core::ResilienceConfig{}, slow_body);

  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: sweep with per-trial checkpointing until the parent kills us.
    core::ResilienceConfig res;
    res.checkpoint_path = path;
    res.checkpoint_every = 1;
    core::run_campaign_resilient<std::uint64_t>(cfg, res, slow_body);
    _exit(0);
  }
  // Parent: wait for at least one atomic checkpoint save, then SIGKILL the
  // child mid-sweep — the file on disk must still be a complete snapshot.
  for (int i = 0; i < 5000; ++i) {
    if (std::ifstream(path).good()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(std::ifstream(path).good()) << "child never checkpointed";
  kill(child, SIGKILL);
  int status = 0;
  waitpid(child, &status, 0);

  // Resume: restored + re-run slots together must equal the reference
  // bit for bit, and the checkpoint must have parsed (a torn file would
  // silently restart from zero, which the executed-count check catches).
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  std::atomic<int> executed{0};
  const std::function<std::uint64_t(const core::TrialContext&)> counting_body =
      [&executed](const core::TrialContext& ctx) {
        executed.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(4));
        return ctx.seed * 2 + 1;
      };
  const auto resumed = core::run_campaign_resilient<std::uint64_t>(cfg, res, counting_body);
  ASSERT_EQ(resumed.size(), reference.size());
  std::size_t restored = 0;
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_TRUE(resumed[i].ok()) << "slot " << i;
    EXPECT_EQ(resumed[i].value(), reference[i].value()) << "slot " << i;
    restored += resumed[i].from_checkpoint ? 1 : 0;
  }
  EXPECT_GT(restored, 0u) << "checkpoint restored nothing";
  EXPECT_EQ(static_cast<std::size_t>(executed.load()), cfg.trials - restored);
  std::remove(path.c_str());
}

// ---- checkpoint corruption: load must warn and fall back, never throw --

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// Writes a valid 6-slot checkpoint and returns its on-disk bytes.
std::string write_sample_checkpoint(const std::string& path) {
  core::CheckpointFile save(55, 6, sizeof(std::uint64_t));
  for (std::size_t i = 0; i < 6; ++i) {
    core::CheckpointRecord rec;
    rec.ok = true;
    const std::uint64_t v = sim::derive_seed(55, i);
    rec.payload.assign(reinterpret_cast<const char*>(&v), sizeof(v));
    save.record(i, rec);
  }
  EXPECT_TRUE(save.save(path));
  return read_file(path);
}

TEST(Checkpoint, TruncatedFileIsRejectedNotFatal) {
  const std::string path = ckpt_path("truncated");
  const std::string intact = write_sample_checkpoint(path);
  // Chop the file at several depths — mid-trailer, mid-record, mid-header.
  for (const std::size_t keep :
       {intact.size() - 3, intact.size() / 2, std::size_t{10}, std::size_t{0}}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(intact.data(), static_cast<std::streamsize>(keep));
    }
    core::CheckpointFile load(55, 6, sizeof(std::uint64_t));
    EXPECT_FALSE(load.load(path)) << "accepted a file truncated to " << keep << " bytes";
    EXPECT_EQ(load.size(), 0u) << "partial restore from a torn file";
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, BitFlippedPayloadIsCaughtByChecksum) {
  const std::string path = ckpt_path("bitflip");
  const std::string intact = write_sample_checkpoint(path);
  // Flip one payload hex digit to a DIFFERENT valid hex digit: the line
  // grammar still parses, so only the content checksum can catch it.
  const std::size_t ok_line = intact.find("\nok ");
  ASSERT_NE(ok_line, std::string::npos);
  // The last payload hex char of the first record line.
  const std::size_t digit = intact.find('\n', ok_line + 1) - 1;
  std::string corrupt = intact;
  corrupt[digit] = corrupt[digit] == 'a' ? 'b' : 'a';
  ASSERT_NE(corrupt, intact);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupt;
  }
  core::CheckpointFile load(55, 6, sizeof(std::uint64_t));
  EXPECT_FALSE(load.load(path)) << "a bit flip inside well-formed hex was restored";
  EXPECT_EQ(load.size(), 0u);
  // The intact bytes still load (the corruption above is what broke it).
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << intact;
  }
  EXPECT_TRUE(load.load(path));
  EXPECT_EQ(load.size(), 6u);
  std::remove(path.c_str());
}

TEST(Checkpoint, GarbageAndBinaryFilesFallBackToFreshRun) {
  const std::string path = ckpt_path("garbage");
  for (const std::string content :
       {std::string("not a checkpoint at all\n"), std::string("\x00\xFF\x7F garbage", 12),
        std::string("hwsec-checkpoint v1 seed=55 trials=6 result_bytes=8\nend 0\n")}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << content;
    }
    core::CheckpointFile load(55, 6, sizeof(std::uint64_t));
    EXPECT_FALSE(load.load(path));  // v1 (pre-checksum) files are rejected too.
    EXPECT_EQ(load.size(), 0u);
  }
  // A campaign pointed at the garbage file starts fresh and succeeds.
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  const auto outcomes = core::run_campaign_resilient<std::uint64_t>(
      {.seed = 55, .trials = 6, .workers = 1}, res,
      [](const core::TrialContext& ctx) { return ctx.seed + 1; });
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "slot " << i;
    EXPECT_FALSE(outcomes[i].from_checkpoint);
    EXPECT_EQ(outcomes[i].value(), sim::derive_seed(55, i) + 1);
  }
  std::remove(path.c_str());
}

// ---- graceful shutdown -------------------------------------------------

TEST(Shutdown, SigtermFlushesCheckpointAndExits143) {
  const std::string path = ckpt_path("sigterm");
  std::remove(path.c_str());
  const core::CampaignConfig cfg{.seed = 31337, .trials = 40, .workers = 2};

  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    // Child: a cooperative campaign binary — handler installed, slow trials,
    // per-trial checkpoints; exits with the conventional 128+signal code.
    core::install_graceful_shutdown();
    core::ResilienceConfig res;
    res.checkpoint_path = path;
    res.checkpoint_every = 1;
    core::run_campaign_resilient<std::uint64_t>(
        cfg, res, [](const core::TrialContext& ctx) -> std::uint64_t {
          std::this_thread::sleep_for(std::chrono::milliseconds(4));
          return ctx.seed ^ 0xD00D;
        });
    _exit(core::shutdown_exit_code());
  }
  // Parent: wait for the first checkpoint, then request shutdown.
  for (int i = 0; i < 5000; ++i) {
    if (std::ifstream(path).good()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(std::ifstream(path).good()) << "child never checkpointed";
  kill(child, SIGTERM);
  int status = 0;
  waitpid(child, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "child died instead of exiting gracefully";
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);

  // The flushed checkpoint must parse, and resuming from it must complete
  // the campaign bit-identically to an undisturbed run.
  core::CheckpointFile flushed(cfg.seed, cfg.trials, sizeof(std::uint64_t));
  EXPECT_TRUE(flushed.load(path)) << "graceful shutdown left no valid checkpoint";
  EXPECT_GT(flushed.size(), 0u);

  const auto reference = core::run_campaign_resilient<std::uint64_t>(
      cfg, core::ResilienceConfig{},
      [](const core::TrialContext& ctx) -> std::uint64_t { return ctx.seed ^ 0xD00D; });
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  const auto resumed = core::run_campaign_resilient<std::uint64_t>(
      cfg, res, [](const core::TrialContext& ctx) -> std::uint64_t {
        return ctx.seed ^ 0xD00D;
      });
  std::size_t restored = 0;
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_TRUE(resumed[i].ok()) << "slot " << i;
    EXPECT_EQ(resumed[i].value(), reference[i].value()) << "slot " << i;
    restored += resumed[i].from_checkpoint ? 1 : 0;
  }
  EXPECT_GT(restored, 0u);
  std::remove(path.c_str());
}

TEST(Shutdown, RequestSkipsRemainingTrialsAndMarksThem) {
  core::reset_shutdown_for_test();
  core::install_graceful_shutdown();
  std::atomic<int> executed{0};
  const auto outcomes = core::run_campaign_resilient<int>(
      {.seed = 3, .trials = 12, .workers = 1}, {},
      [&executed](const core::TrialContext& ctx) -> int {
        executed.fetch_add(1);
        if (ctx.index == 4) {
          raise(SIGTERM);  // handler sets the flag; nothing is interrupted.
        }
        return static_cast<int>(ctx.index);
      });
  core::reset_shutdown_for_test();
  EXPECT_EQ(executed.load(), 5);  // trials 0..4 ran; the rest were skipped.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i <= 4) {
      ASSERT_TRUE(outcomes[i].ok()) << "slot " << i;
      EXPECT_FALSE(outcomes[i].skipped);
    } else {
      EXPECT_TRUE(outcomes[i].skipped) << "slot " << i;
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_FALSE(outcomes[i].error.has_value());
    }
  }
}

// ---- sharded campaigns under fire --------------------------------------

TEST(Shard, KilledWorkerMidRunStillMergesBitIdentically) {
  // Reference: the undisturbed in-process single-worker campaign.
  const core::CampaignConfig cfg{.seed = 909, .trials = 48, .workers = 1};
  const std::function<std::uint64_t(const core::TrialContext&)> body =
      [](const core::TrialContext& ctx) -> std::uint64_t {
        return ctx.seed * 31 + ctx.index;
      };
  const auto reference =
      core::run_campaign_resilient<std::uint64_t>(cfg, core::ResilienceConfig{}, body);

  // Sharded run with seeded worker SIGKILLs: workers die mid-shard, the
  // supervisor migrates their unfinished trials and respawns. The merged
  // vector must not differ in a single byte.
  core::ResilienceConfig res;
  res.chaos.worker_kill_probability = 0.08;
  core::shard::ShardConfig shard;
  shard.processes = 2;
  shard.shard_size = 6;
  core::shard::ShardStats stats;
  const auto sharded = core::shard::run_campaign_sharded<std::uint64_t>(
      cfg, res, shard, body, &stats);
  ASSERT_EQ(sharded.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(sharded[i].ok()) << "slot " << i;
    EXPECT_EQ(sharded[i].value(), reference[i].value()) << "slot " << i;
  }
  // The chaos stream is deterministic: with p=0.08 over 48 trials at least
  // one worker certainly died, so this run actually exercised recovery.
  EXPECT_GT(stats.worker_deaths, 0u) << "chaos injected no deaths; test is vacuous";
  EXPECT_GT(stats.migrations, 0u);
}

// ---- atomic file writes -----------------------------------------------

TEST(AtomicWrite, ReplacesContentAndLeavesNoTemporary) {
  const std::string path = ckpt_path("atomic_json");
  ASSERT_TRUE(core::write_file_atomic(path, "{\"v\": 1}\n"));
  ASSERT_TRUE(core::write_file_atomic(path, "{\"v\": 2}\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"v\": 2}\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

}  // namespace
