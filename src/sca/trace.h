// Power-trace containers and leakage helpers.
//
// A Trace is one power measurement: a sequence of samples, one per leak
// event emitted by an instrumented victim (crypto/instrumentation.h). A
// TraceSet couples traces with the per-encryption public data (plaintext,
// ciphertext) the statistical attacks condition on.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hwsec::sca {

using Trace = std::vector<double>;

/// Hamming weight of a 32-bit value — the canonical CMOS leakage proxy.
constexpr std::uint32_t hamming_weight(std::uint32_t v) {
  v = v - ((v >> 1) & 0x55555555u);
  v = (v & 0x33333333u) + ((v >> 2) & 0x33333333u);
  return (((v + (v >> 4)) & 0x0F0F0F0Fu) * 0x01010101u) >> 24;
}

/// Hamming distance between consecutive values (register-overwrite model).
constexpr std::uint32_t hamming_distance(std::uint32_t a, std::uint32_t b) {
  return hamming_weight(a ^ b);
}

struct TraceSet {
  std::vector<Trace> traces;
  std::vector<std::array<std::uint8_t, 16>> plaintexts;
  std::vector<std::array<std::uint8_t, 16>> ciphertexts;

  std::size_t size() const { return traces.size(); }
  std::size_t samples_per_trace() const { return traces.empty() ? 0 : traces.front().size(); }

  void clear() {
    traces.clear();
    plaintexts.clear();
    ciphertexts.clear();
  }
};

}  // namespace hwsec::sca
