// Instrumentation hooks for "running" the crypto library on the simulated
// machine.
//
// The cryptographic implementations in this module are host-native C++
// (they compute real AES/SHA/RSA), but every microarchitecturally or
// physically observable event they produce is routed through these hooks:
//
//   touch  — a data-dependent table lookup; the harness forwards it to the
//            simulated cache hierarchy so cache attacks see real fills and
//            evictions (src/attacks/cache_*).
//   leak   — a processed intermediate value; the harness forwards it to
//            the power-trace recorder (src/sca) which applies a Hamming-
//            weight + noise leakage model.
//   fault  — a computed intermediate value offered to the glitch injector
//            (src/sim/dvfs.h); the returned (possibly corrupted) value is
//            what the computation continues with.
//   tick   — a data-dependent amount of work in abstract cost units; the
//            harness forwards it to the timing model (Kocher-style timing
//            attacks consume this).
//
// All hooks are optional; an un-instrumented instance computes silently.
// This mirrors how the real attacks work: the algorithm is unchanged, the
// *platform* observes it.
#pragma once

#include <cstdint>
#include <functional>

namespace hwsec::crypto {

struct Instrumentation {
  /// (table_id, element_index) — a lookup into lookup table `table_id`.
  std::function<void(std::uint32_t, std::uint32_t)> touch;
  /// An intermediate value was produced (power leakage sample point).
  std::function<void(std::uint32_t)> leak;
  /// Offer an intermediate value to the fault injector; returns the value
  /// to continue with.
  std::function<std::uint32_t(std::uint32_t)> fault;
  /// `cost` abstract time units of data-dependent work elapsed.
  std::function<void(std::uint64_t)> tick;

  void do_touch(std::uint32_t table, std::uint32_t index) const {
    if (touch) {
      touch(table, index);
    }
  }
  void do_leak(std::uint32_t value) const {
    if (leak) {
      leak(value);
    }
  }
  std::uint32_t do_fault(std::uint32_t value) const { return fault ? fault(value) : value; }
  void do_tick(std::uint64_t cost) const {
    if (tick) {
      tick(cost);
    }
  }
};

}  // namespace hwsec::crypto
