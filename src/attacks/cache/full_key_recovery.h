// Full 128-bit AES key recovery through the cache channel: first-round
// nibbles + the Osvik–Shamir–Tromer second-round attack ([34] §3.4).
//
// The first-round attack (cache_attacks.h) caps out at the high nibble of
// every key byte (a 64-byte line holds 16 T-table entries). The second
// round breaks the remaining 64 bits: the round-2 T0 indices are known
// GF(2^8) expressions in plaintext bytes and key bytes,
//
//   idx0 = 02•S(p0⊕k0) ⊕ 03•S(p5⊕k5) ⊕ S(p10⊕k10) ⊕ S(p15⊕k15)
//          ⊕ k0 ⊕ S(k13) ⊕ 01                       (K1[0]'s top byte)
//
// and analogously for the other three words. With high nibbles already
// known, each equation leaves a small candidate space over the involved
// low nibbles; every observation ELIMINATES candidates whose predicted
// line is absent from that trial's observed T0 line set (the true
// candidate's line is always present). The four equations together cover
// all 16 key bytes; surviving combinations are verified against a known
// plaintext/ciphertext pair.
//
// Observations come from the same Flush+Reload/Prime+Probe machinery —
// one extra pass records per-trial line sets instead of votes.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attacks/cache/cache_attacks.h"
#include "sca/trace_store.h"

namespace hwsec::attacks {

/// One victim observation: plaintext, ciphertext, and the set of lines
/// seen hot in each round table (bit l of lines[t] = line l of T_t was
/// accessed during this encryption).
struct LineObservation {
  hwsec::crypto::AesBlock plaintext{};
  hwsec::crypto::AesBlock ciphertext{};
  std::array<std::uint16_t, 4> lines{};
};

/// Collects `trials` Flush+Reload observations of the victim.
std::vector<LineObservation> collect_line_observations(hwsec::sim::Machine& machine,
                                                       const TableLayout& layout,
                                                       const VictimFn& victim,
                                                       std::uint64_t trials,
                                                       const CacheAttackConfig& config);

/// Streaming collection: same observation stream (same rng derivation),
/// delivered to `sink` one at a time instead of materialized. The vector
/// overload above is this with a push_back sink.
void collect_line_observations_into(hwsec::sim::Machine& machine, const TableLayout& layout,
                                    const VictimFn& victim, std::uint64_t trials,
                                    const CacheAttackConfig& config,
                                    const std::function<void(const LineObservation&)>& sink);

/// Chunked on-disk observation log (40-byte fixed records over
/// sca::ChunkedRecordWriter): capture appends, recovery replays — peak
/// memory one chunk, independent of trial count.
class LineObservationLogWriter {
 public:
  explicit LineObservationLogWriter(const std::string& dir);
  void append(const LineObservation& obs);
  std::size_t size() const;
  void finalize();

 private:
  std::unique_ptr<hwsec::sca::ChunkedRecordWriter> writer_;
};

class LineObservationLogReader {
 public:
  explicit LineObservationLogReader(const std::string& dir);
  std::size_t size() const;
  /// Sequential replay in append order.
  void replay(const std::function<void(const LineObservation&)>& visit) const;

 private:
  std::unique_ptr<hwsec::sca::ChunkedRecordReader> reader_;
};

struct FullKeyResult {
  bool recovered = false;
  hwsec::crypto::AesKey key{};
  std::uint32_t first_round_nibbles_correct = 0;  ///< internal diagnostic.
  std::array<std::size_t, 4> equation_survivors{};
  std::uint64_t keys_verified = 0;  ///< cartesian candidates tested at the end.
};

/// Runs the two-stage attack over the observations.
FullKeyResult recover_full_key(const std::vector<LineObservation>& observations);

/// Replays an observation stream in order; callable multiple times (the
/// streaming recovery makes five passes: one vote pass + one elimination
/// pass per second-round equation).
using ObservationReplayFn =
    std::function<void(const std::function<void(const LineObservation&)>&)>;

/// Streaming recovery: identical result to recover_full_key over the same
/// stream, restructured so each pass is sequential over the source (an
/// on-disk log, a generator, ...) and memory stays O(frontier), never
/// O(observations). All frontier bases are filtered in a single shared
/// pass per equation.
FullKeyResult recover_full_key_streaming(const ObservationReplayFn& replay);

/// Convenience: collect + recover against a victim.
FullKeyResult full_key_attack(hwsec::sim::Machine& machine, const TableLayout& layout,
                              const VictimFn& victim, std::uint64_t trials = 600,
                              const CacheAttackConfig& config = {});

/// Bounded-memory convenience: streams observations into a chunked log at
/// `log_dir`, then recovers by replaying it. Same observation stream as
/// full_key_attack (same rng derivation), so the recovered key matches;
/// peak memory is one chunk plus the candidate frontier.
FullKeyResult full_key_attack_streaming(hwsec::sim::Machine& machine, const TableLayout& layout,
                                        const VictimFn& victim, std::uint64_t trials,
                                        const std::string& log_dir,
                                        const CacheAttackConfig& config = {});

}  // namespace hwsec::attacks
