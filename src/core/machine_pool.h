// Snapshot/reset machine pool: amortizes per-trial Machine construction.
//
// Constructing a sim::Machine zeroes all of DRAM and builds page tables,
// cache arrays and per-core state — ~1 ms for the mobile profile, which
// dominated per-trial cost in BENCH_campaign.json. The pool builds each
// machine once, captures a pristine post-construction MachineSnapshot, and
// between leases restores that snapshot (dirty-page restore in
// sim::PhysicalMemory makes this proportional to the trial's footprint)
// and reseeds the machine for the next trial.
//
// The equivalence contract — the reason pooling cannot change results:
// Machine construction consumes its seed only through Rng(seed) and
// FaultInjector(seed ^ ...); everything else the constructor builds is a
// pure function of the profile. Hence
//
//     reset_to(pristine); reseed(s)   ==   Machine(profile, s)
//
// bit for bit, and the campaign determinism suites are the oracle.
//
// Machines are keyed by MachineProfile::name. Experiments that tweak
// profile knobs (the ablation benches do) must rename the tweaked profile
// or use a dedicated pool — the pool cannot tell two same-named profiles
// apart and documents that as a sharp edge rather than paying a deep
// config comparison per acquire.
//
// Thread-safe: concurrent acquires hand out distinct machines, building
// new ones when all of a profile's machines are leased. A campaign with W
// workers therefore builds at most W machines per profile, total.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace hwsec::core {

class MachinePool;

/// Move-only RAII handle to a pooled (or standalone) machine. Returns the
/// machine to its pool on destruction; a lease obtained with no pool owns
/// its machine outright.
class MachineLease {
 public:
  MachineLease() = default;
  MachineLease(MachineLease&& other) noexcept { swap(other); }
  MachineLease& operator=(MachineLease&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  MachineLease(const MachineLease&) = delete;
  MachineLease& operator=(const MachineLease&) = delete;
  ~MachineLease() { release(); }

  sim::Machine& operator*() const { return *machine_; }
  sim::Machine* operator->() const { return machine_; }
  sim::Machine* get() const { return machine_; }
  explicit operator bool() const { return machine_ != nullptr; }

 private:
  friend class MachinePool;
  friend MachineLease acquire_machine(MachinePool* pool, const sim::MachineProfile& profile,
                                      std::uint64_t seed);

  void release();
  void swap(MachineLease& other) noexcept {
    std::swap(pool_, other.pool_);
    std::swap(slot_, other.slot_);
    std::swap(machine_, other.machine_);
    std::swap(owned_, other.owned_);
  }

  MachinePool* pool_ = nullptr;
  std::size_t slot_ = 0;
  sim::Machine* machine_ = nullptr;
  std::unique_ptr<sim::Machine> owned_;  ///< unpooled fallback path.
};

class MachinePool {
 public:
  MachinePool() = default;
  MachinePool(const MachinePool&) = delete;
  MachinePool& operator=(const MachinePool&) = delete;

  /// Hands out a machine bit-identical to a fresh
  /// sim::Machine(profile, seed): a reset-reused pooled machine when one
  /// is free, a newly built one otherwise.
  MachineLease acquire(const sim::MachineProfile& profile, std::uint64_t seed);

  /// Machines constructed so far (upper-bounded by peak concurrent leases
  /// per profile).
  std::size_t machines_built() const;
  /// Total acquires served; leases_served() - machines_built() is the
  /// number of constructions the pool saved.
  std::uint64_t leases_served() const;

 private:
  friend class MachineLease;

  struct Entry {
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<sim::MachineSnapshot> pristine;
    std::string profile_name;
    bool in_use = false;
  };

  void release(std::size_t slot);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t leases_ = 0;
  /// Decoded-program cache shared by every pooled machine: trials across
  /// the whole pool decode each distinct program once. Installed before
  /// the pristine snapshot so reset-reuse keeps the wiring.
  std::shared_ptr<sim::UopCache> uop_cache_ = std::make_shared<sim::UopCache>();
};

/// Campaign-body helper: acquires from `pool` when the campaign runner
/// supplied one (TrialContext::machines), otherwise constructs a fresh
/// standalone machine. Both paths yield a machine bit-identical to
/// sim::Machine(profile, seed), so trial bodies written against this
/// helper behave the same with pooling on or off.
MachineLease acquire_machine(MachinePool* pool, const sim::MachineProfile& profile,
                             std::uint64_t seed);

}  // namespace hwsec::core
