#include "core/machine_pool.h"

#include "core/obs/metrics.h"
#include "core/obs/trace.h"

namespace hwsec::core {

namespace {

// Pool counters, registered once. The contract the obs tests assert:
// pool_leases_served counts every acquire (pooled machines only),
// pool_machines_built counts constructions, pool_resets counts
// snapshot-restores — so leases == builds + resets, always.
const obs::Counter& pool_leases_counter() {
  static const obs::Counter c = obs::counter("pool_leases_served");
  return c;
}
const obs::Counter& pool_builds_counter() {
  static const obs::Counter c = obs::counter("pool_machines_built");
  return c;
}
const obs::Counter& pool_resets_counter() {
  static const obs::Counter c = obs::counter("pool_resets");
  return c;
}

}  // namespace

void MachineLease::release() {
  if (pool_ != nullptr && machine_ != nullptr) {
    pool_->release(slot_);
  }
  pool_ = nullptr;
  machine_ = nullptr;
  owned_.reset();
}

MachineLease MachinePool::acquire(const sim::MachineProfile& profile, std::uint64_t seed) {
  obs::Span acquire_span("pool_acquire");
  pool_leases_counter().add(1);
  std::unique_lock<std::mutex> lock(mutex_);
  ++leases_;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = *entries_[i];
    if (!e.in_use && e.profile_name == profile.name) {
      e.in_use = true;
      MachineLease lease;
      lease.pool_ = this;
      lease.slot_ = i;
      lease.machine_ = e.machine.get();
      // Reset + reseed outside the lock: the entry is marked in_use, so no
      // other thread can touch this machine (entries are never erased and
      // live behind unique_ptr, so the reference survives reallocation).
      sim::MachineSnapshot* pristine = e.pristine.get();
      lock.unlock();
      pool_resets_counter().add(1);
      static const obs::Histogram kResetNs = obs::histogram("pool_reset_us");
      obs::ScopedTimer reset_timer(kResetNs);
      obs::Span reset_span("pool_reset", static_cast<std::int64_t>(i), "slot");
      lease.machine_->reset_to(*pristine);
      lease.machine_->reseed(seed);
      return lease;
    }
  }
  lock.unlock();

  // No free machine of this profile: build one (outside the lock — the
  // construction is exactly the cost the pool exists to amortize, and
  // first-round builds should proceed in parallel).
  pool_builds_counter().add(1);
  obs::Span build_span("machine_build");
  auto entry = std::make_unique<Entry>();
  entry->machine = std::make_unique<sim::Machine>(profile, seed);
  entry->machine->set_uop_cache(uop_cache_);
  entry->pristine = std::make_unique<sim::MachineSnapshot>(entry->machine->snapshot());
  entry->profile_name = profile.name;
  entry->in_use = true;

  MachineLease lease;
  lease.pool_ = this;
  lease.machine_ = entry->machine.get();

  lock.lock();
  lease.slot_ = entries_.size();
  entries_.push_back(std::move(entry));
  return lease;
}

void MachinePool::release(std::size_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = *entries_[slot];
  // Drop the trial's watchdog pointer now rather than at the next acquire:
  // the TrialWatchdog lives on the worker's stack and dies with the trial.
  e.machine->arm_watchdog(nullptr);
  e.in_use = false;
}

std::size_t MachinePool::machines_built() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t MachinePool::leases_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return leases_;
}

MachineLease acquire_machine(MachinePool* pool, const sim::MachineProfile& profile,
                             std::uint64_t seed) {
  // The "trial setup" span of every pooled campaign body: machine
  // acquisition (pool reset-reuse or fresh construction); everything after
  // it in the trial is body time.
  static const obs::Histogram kSetupUs = obs::histogram("trial_setup_us");
  obs::ScopedTimer setup_timer(kSetupUs);
  obs::Span setup_span("trial_setup");
  if (pool != nullptr) {
    return pool->acquire(profile, seed);
  }
  MachineLease lease;
  lease.owned_ = std::make_unique<sim::Machine>(profile, seed);
  lease.machine_ = lease.owned_.get();
  return lease;
}

}  // namespace hwsec::core
