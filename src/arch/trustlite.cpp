#include "arch/trustlite.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

TrustLite::TrustLite(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  platform_key_.resize(32);
  for (auto& b : platform_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }
}

TrustLite::~TrustLite() {
  if (!machine_->mpu().locked()) {
    for (const auto& [id, info] : enclaves_) {
      machine_->mpu().remove_region("trustlet-" + std::to_string(id) + "-code");
      machine_->mpu().remove_region("trustlet-" + std::to_string(id) + "-data");
    }
  }
}

const tee::ArchitectureTraits& TrustLite::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "TrustLite",
      .reference = "[26]",
      .target = sim::DeviceClass::kEmbedded,
      .tcb = tee::TcbType::kRomLoader,
      .enclave_capacity = -1,  // multiple Trustlets, but static after boot.
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kNone,
      .cache_defense = tee::CacheDefense::kNoSharedCaches,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kLocalAndRemote,
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = false,
      .secure_storage = false,
      .vendor_trust_required = false,
      .new_hardware_required = true,  // EA-MPU.
      .considers_cache_sca = false,
      .considers_dma = false,
  };
  return kTraits;
}

tee::Expected<tee::EnclaveId> TrustLite::register_trustlet(const tee::EnclaveImage& image,
                                                           bool allow_after_boot) {
  if (booted_ && !allow_after_boot) {
    // EA-MPU configuration is locked; protection regions are static.
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kConfigLocked};
  }
  const std::uint32_t data_pages = std::max(1u, image_pages(image) - 1);
  const std::uint32_t pages = 1 + data_pages;

  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = tee::measure_image(image);
  info.domain = next_domain_++;
  info.base = machine_->alloc_frames(pages);
  info.pages = pages;
  info.initialized = booted_;  // pre-boot registrations activate at boot().
  tee::EnclaveInfo& registered = register_enclave(std::move(info));

  if (booted_) {
    // Dynamic path (TyTAN): load + program immediately.
    machine_->memory().write_block(registered.base, image.code);
    machine_->memory().write_block(registered.base + sim::kPageSize, image.secret);
    program_mpu_for(registered);
  } else {
    pending_.emplace_back(image, registered.id);
  }
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::Expected<tee::EnclaveId> TrustLite::create_enclave(const tee::EnclaveImage& image) {
  return register_trustlet(image, /*allow_after_boot=*/false);
}

void TrustLite::program_mpu_for(const tee::EnclaveInfo& info) {
  const sim::PhysAddr code_start = info.base;
  const sim::PhysAddr code_end = code_start + sim::kPageSize;
  machine_->mpu().add_region({
      .name = "trustlet-" + std::to_string(info.id) + "-code",
      .start = code_start,
      .end = code_end,
      .readable = true,
      .writable = false,
      .executable = true,
      .code_gate_start = std::nullopt,
      .code_gate_end = std::nullopt,
      .entry_points = {code_start},
  });
  machine_->mpu().add_region({
      .name = "trustlet-" + std::to_string(info.id) + "-data",
      .start = code_end,
      .end = info.base + info.pages * sim::kPageSize,
      .readable = true,
      .writable = true,
      .executable = false,
      .code_gate_start = code_start,
      .code_gate_end = code_end,
      .entry_points = {},
  });
}

tee::EnclaveError TrustLite::boot() {
  if (booted_) {
    return tee::EnclaveError::kOk;
  }
  // Secure Loader: load every registered trustlet and program the EA-MPU.
  for (auto& [image, id] : pending_) {
    tee::EnclaveInfo* info = find_enclave(id);
    machine_->memory().write_block(info->base, image.code);
    machine_->memory().write_block(info->base + sim::kPageSize, image.secret);
    program_mpu_for(*info);
    info->initialized = true;
  }
  pending_.clear();
  if (config_.lock_mpu_at_boot) {
    machine_->mpu().lock();
  }
  booted_ = true;
  return tee::EnclaveError::kOk;
}

tee::EnclaveError TrustLite::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  if (machine_->mpu().locked()) {
    return tee::EnclaveError::kConfigLocked;  // static regions.
  }
  machine_->memory().fill(info->base, info->pages * sim::kPageSize, 0);
  machine_->mpu().remove_region("trustlet-" + std::to_string(id) + "-code");
  machine_->mpu().remove_region("trustlet-" + std::to_string(id) + "-data");
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError TrustLite::call_enclave(tee::EnclaveId id, sim::CoreId core,
                                          const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  if (!info->initialized) {
    return tee::EnclaveError::kNotInitialized;
  }
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved = cpu.domain();
  cpu.switch_context(info->domain, cpu.privilege(), cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(60);  // trustlet entry via declared entry point.
  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);
  cpu.switch_context(saved, cpu.privilege(), cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(60);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> TrustLite::attest(tee::EnclaveId id,
                                                        const tee::Nonce& nonce) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  if (!info->initialized) {
    return {.value = {}, .error = tee::EnclaveError::kNotInitialized};
  }
  return {.value = tee::make_report(platform_key_, info->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

tee::Expected<tee::AttestationReport> TrustLite::probe_attestation(const tee::Nonce& nonce) {
  // The generic probe (create + attest) only works pre-boot; post-boot,
  // attest an existing trustlet if any.
  if (!booted_) {
    boot();
  }
  if (!enclaves_.empty()) {
    return attest(enclaves_.begin()->first, nonce);
  }
  return {.value = {}, .error = tee::EnclaveError::kConfigLocked};
}

std::vector<std::uint8_t> TrustLite::report_verification_key() const { return platform_key_; }

sim::Fault TrustLite::try_data_access(tee::EnclaveId id, sim::PhysAddr pc) const {
  const tee::EnclaveInfo* info = enclave(id);
  if (info == nullptr) {
    return sim::Fault::kBusError;
  }
  return machine_->mpu().check(info->base + sim::kPageSize, sim::AccessType::kRead, pc);
}

// ---- TyTAN -----------------------------------------------------------------

TyTan::TyTan(sim::Machine& machine)
    : TrustLite(machine, Config{.lock_mpu_at_boot = false}) {
  storage_key_.resize(32);
  for (auto& b : storage_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }
}

const tee::ArchitectureTraits& TyTan::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "TyTAN",
      .reference = "[6]",
      .target = sim::DeviceClass::kEmbedded,
      .tcb = tee::TcbType::kRomLoader,
      .enclave_capacity = -1,
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kNone,
      .cache_defense = tee::CacheDefense::kNoSharedCaches,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kLocalAndRemote,
      .code_isolation = true,
      .real_time_capable = true,  // TrustLite "extension for real-time systems".
      .secure_boot = true,
      .secure_storage = true,
      .vendor_trust_required = false,
      .new_hardware_required = true,
      .considers_cache_sca = false,
      .considers_dma = false,
  };
  return kTraits;
}

tee::EnclaveError TyTan::boot() {
  // Secure boot: refuse to come up on a tampered platform.
  if (tampered_) {
    return tee::EnclaveError::kVerificationFailed;
  }
  return TrustLite::boot();
}

tee::Expected<tee::EnclaveId> TyTan::create_enclave(const tee::EnclaveImage& image) {
  return register_trustlet(image, /*allow_after_boot=*/true);
}

tee::Expected<TyTan::SealedBlob> TyTan::seal(tee::EnclaveId id,
                                             std::span<const std::uint8_t> data) {
  const tee::EnclaveInfo* info = enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  // Key bound to the sealer's measurement: a different trustlet derives a
  // different keystream and cannot unseal.
  std::vector<std::uint8_t> binding(info->measurement.begin(), info->measurement.end());
  const auto derived = crypto::hmac_sha256(storage_key_, binding);

  SealedBlob blob;
  blob.sealer_measurement = info->measurement;
  blob.ciphertext.resize(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    blob.ciphertext[i] = static_cast<std::uint8_t>(data[i] ^ derived[i % derived.size()]);
  }
  blob.mac = crypto::hmac_sha256(derived, blob.ciphertext);
  return {.value = std::move(blob), .error = tee::EnclaveError::kOk};
}

tee::Expected<std::vector<std::uint8_t>> TyTan::unseal(tee::EnclaveId id,
                                                       const SealedBlob& blob) {
  const tee::EnclaveInfo* info = enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  if (!crypto::digest_equal(info->measurement, blob.sealer_measurement)) {
    return {.value = {}, .error = tee::EnclaveError::kVerificationFailed};
  }
  std::vector<std::uint8_t> binding(info->measurement.begin(), info->measurement.end());
  const auto derived = crypto::hmac_sha256(storage_key_, binding);
  if (!crypto::digest_equal(crypto::hmac_sha256(derived, blob.ciphertext), blob.mac)) {
    return {.value = {}, .error = tee::EnclaveError::kVerificationFailed};
  }
  std::vector<std::uint8_t> plain(blob.ciphertext.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    plain[i] = static_cast<std::uint8_t>(blob.ciphertext[i] ^ derived[i % derived.size()]);
  }
  return {.value = std::move(plain), .error = tee::EnclaveError::kOk};
}

}  // namespace hwsec::arch
