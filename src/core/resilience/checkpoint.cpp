#include "core/resilience/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"

namespace hwsec::core {

namespace {

std::string hex_encode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out.empty() ? "-" : out;  // "-" keeps empty payloads tokenizable.
}

bool hex_decode(const std::string& hex, std::string& out) {
  out.clear();
  if (hex == "-") {
    return true;
  }
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c, int& v) {
    if (c >= '0' && c <= '9') { v = c - '0'; return true; }
    if (c >= 'a' && c <= 'f') { v = c - 'a' + 10; return true; }
    return false;
  };
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = 0, lo = 0;
    if (!nibble(hex[i], hi) || !nibble(hex[i + 1], lo)) {
      return false;
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

// FNV-1a 64 over every content line (header + records, trailer excluded),
// folding in a '\n' per line so reordering/splitting lines changes the hash.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_line(std::uint64_t& hash, const std::string& line) {
  for (const unsigned char c : line) {
    hash = (hash ^ c) * kFnvPrime;
  }
  hash = (hash ^ static_cast<unsigned char>('\n')) * kFnvPrime;
}

std::string fnv_hex(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

}  // namespace

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return false;
    }
    out << content;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

CheckpointFile::CheckpointFile(std::uint64_t seed, std::size_t trials, std::size_t result_bytes,
                               std::string scope)
    : seed_(seed), trials_(trials), result_bytes_(result_bytes), scope_(std::move(scope)) {}

std::string CheckpointFile::header_line() const {
  std::ostringstream header;
  header << "hwsec-checkpoint v2 seed=" << seed_ << " trials=" << trials_
         << " result_bytes=" << result_bytes_;
  // Scoped identities (tenant/job namespacing) extend the header; an empty
  // scope stays byte-identical to pre-scope files, which keeps old
  // single-owner checkpoints loadable.
  if (!scope_.empty()) {
    header << " scope=" << hex_encode(scope_);
  }
  return header.str();
}

bool CheckpointFile::load(const std::string& path) {
  records_.clear();
  // Never let a damaged checkpoint take the campaign down: every reject
  // path warns and returns false (the campaign starts fresh), and a
  // catch-all turns even an unexpected parse explosion into a fresh run.
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return false;  // no file: a fresh campaign, nothing to warn about.
    }
    return load_or_reject(in, path);
  } catch (...) {
    records_.clear();
    warn_rejected(path, "unexpected exception while parsing");
    return false;
  }
}

void CheckpointFile::warn_rejected(const std::string& path, const std::string& reason) {
  static const obs::Counter kRejected = obs::counter("checkpoint_load_rejected");
  kRejected.add(1);
  std::cerr << "[checkpoint] warning: ignoring " << path << " (" << reason
            << "); starting fresh\n";
}

bool CheckpointFile::load_or_reject(std::istream& in, const std::string& path) {
  std::uint64_t hash = kFnvOffset;
  std::string line;
  if (!std::getline(in, line)) {
    warn_rejected(path, "empty or unreadable");
    return false;
  }
  if (line != header_line()) {
    warn_rejected(path, "header mismatch (different campaign, scope, version, or corruption)");
    return false;
  }
  fnv_line(hash, line);
  std::map<std::size_t, CheckpointRecord> parsed;
  bool saw_end = false;
  std::size_t declared = 0;
  std::string declared_fnv;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "end") {
      if (!(fields >> declared >> declared_fnv)) {
        warn_rejected(path, "malformed trailer");
        return false;
      }
      saw_end = true;
      break;
    }
    fnv_line(hash, line);
    std::size_t index = 0;
    unsigned attempts = 0;
    CheckpointRecord rec;
    if (tag == "ok") {
      std::string hex;
      if (!(fields >> index >> attempts >> hex)) {
        warn_rejected(path, "truncated or malformed record");
        return false;
      }
      rec.ok = true;
      if (!hex_decode(hex, rec.payload) || rec.payload.size() != result_bytes_) {
        warn_rejected(path, "corrupt result payload");
        return false;
      }
    } else if (tag == "err") {
      unsigned kind = 0;
      std::string detail_hex;
      std::string machine_hex;
      if (!(fields >> index >> attempts >> kind >> detail_hex >> machine_hex)) {
        warn_rejected(path, "truncated or malformed error record");
        return false;
      }
      rec.ok = false;
      rec.kind = static_cast<std::uint8_t>(kind);
      if (!hex_decode(detail_hex, rec.detail) || !hex_decode(machine_hex, rec.machine)) {
        warn_rejected(path, "corrupt error payload");
        return false;
      }
    } else {
      warn_rejected(path, "unrecognized record tag");
      return false;
    }
    if (index >= trials_) {
      warn_rejected(path, "record index out of range");
      return false;
    }
    rec.attempts = attempts == 0 ? 1 : attempts;
    parsed[index] = std::move(rec);
  }
  if (!saw_end || declared != parsed.size()) {
    // The classic torn write: the process died mid-file, so the trailer is
    // missing or disagrees with the record count.
    warn_rejected(path, "missing or inconsistent trailer (torn write?)");
    return false;
  }
  // Content checksum: catches the corruption the line grammar cannot — a
  // bit flip inside a still-well-formed hex payload would otherwise
  // silently restore a wrong result.
  if (declared_fnv != fnv_hex(hash)) {
    warn_rejected(path, "content checksum mismatch (bit rot or tampering)");
    return false;
  }
  records_ = std::move(parsed);
  return true;
}

void CheckpointFile::record(std::size_t index, CheckpointRecord rec) {
  records_[index] = std::move(rec);
}

bool CheckpointFile::save(const std::string& path) const {
  static const obs::Counter kSaves = obs::counter("checkpoint_saves");
  static const obs::Histogram kSaveUs = obs::histogram("checkpoint_save_us");
  kSaves.add(1);
  obs::ScopedTimer save_timer(kSaveUs);
  obs::Span save_span("checkpoint_save", static_cast<std::int64_t>(records_.size()),
                      "records");
  std::ostringstream out;
  std::uint64_t hash = kFnvOffset;
  auto emit = [&out, &hash](const std::string& line) {
    fnv_line(hash, line);
    out << line << "\n";
  };
  emit(header_line());
  for (const auto& [index, rec] : records_) {
    std::ostringstream line;
    if (rec.ok) {
      line << "ok " << index << " " << rec.attempts << " " << hex_encode(rec.payload);
    } else {
      line << "err " << index << " " << rec.attempts << " " << static_cast<unsigned>(rec.kind)
           << " " << hex_encode(rec.detail) << " " << hex_encode(rec.machine);
    }
    emit(line.str());
  }
  out << "end " << records_.size() << " " << fnv_hex(hash) << "\n";
  return write_file_atomic(path, out.str());
}

}  // namespace hwsec::core
