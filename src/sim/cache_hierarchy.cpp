#include "sim/cache_hierarchy.h"

#include <cassert>

#include "sim/sim_error.h"

namespace hwsec::sim {

CacheHierarchy::CacheHierarchy(HierarchyConfig config) : config_(std::move(config)) {
  if (config_.num_cores == 0) {
    throw SimError(ErrorKind::kConfigError, "hierarchy needs at least one core");
  }
  if (config_.has_l1) {
    for (std::uint32_t c = 0; c < config_.num_cores; ++c) {
      CacheConfig d = config_.l1d;
      CacheConfig i = config_.l1i;
      d.name += "[" + std::to_string(c) + "]";
      i.name += "[" + std::to_string(c) + "]";
      l1d_.push_back(std::make_unique<Cache>(d, config_.rng_seed + 2 * c));
      l1i_.push_back(std::make_unique<Cache>(i, config_.rng_seed + 2 * c + 1));
    }
  }
  if (config_.has_llc) {
    llc_ = std::make_unique<Cache>(config_.llc, config_.rng_seed + 1000);
  }
}

bool CacheHierarchy::excluded(PhysAddr addr, Exclusion scope_at_least) const {
  for (const auto& range : uncacheable_) {
    if (addr >= range.start && addr < range.end) {
      if (scope_at_least == Exclusion::kSharedOnly) {
        return true;  // any exclusion covers at least the shared level.
      }
      if (range.scope == Exclusion::kAllLevels) {
        return true;
      }
    }
  }
  return false;
}

MemoryAccessOutcome CacheHierarchy::access_through(Cache* l1, CoreId core, DomainId domain,
                                                   PhysAddr addr, AccessType type) {
  (void)core;
  Cycle latency = 0;
  const bool skip_all = excluded(addr, Exclusion::kAllLevels);
  const bool skip_shared = excluded(addr, Exclusion::kSharedOnly);

  if (l1 != nullptr && !skip_all) {
    latency += l1->config().hit_latency;
    const auto r = l1->access(addr, domain, type);
    if (r.hit) {
      return {ServiceLevel::kL1, latency};
    }
  }
  if (llc_ != nullptr && !skip_all && !skip_shared) {
    latency += llc_->config().hit_latency;
    const auto r = llc_->access(addr, domain, type);
    if (!r.hit && config_.inclusive_llc && r.evicted_line.has_value()) {
      back_invalidate(*r.evicted_line);
    }
    if (r.hit) {
      return {ServiceLevel::kLlc, latency};
    }
  }
  latency += config_.dram_latency;
  const bool fully_uncached =
      skip_all || (l1 == nullptr && (llc_ == nullptr || skip_shared));
  return {fully_uncached ? ServiceLevel::kUncached : ServiceLevel::kDram, latency};
}

MemoryAccessOutcome CacheHierarchy::access(CoreId core, DomainId domain, PhysAddr addr,
                                           AccessType type) {
  Cache* l1 = config_.has_l1 ? l1d_[core].get() : nullptr;
  return access_through(l1, core, domain, addr, type);
}

MemoryAccessOutcome CacheHierarchy::fetch(CoreId core, DomainId domain, PhysAddr addr) {
  Cache* l1 = config_.has_l1 ? l1i_[core].get() : nullptr;
  return access_through(l1, core, domain, addr, AccessType::kExecute);
}

bool CacheHierarchy::in_l1d(CoreId core, PhysAddr addr) const {
  return config_.has_l1 && l1d_[core]->probe(addr);
}

bool CacheHierarchy::in_llc(PhysAddr addr) const {
  return llc_ != nullptr && llc_->probe(addr);
}

void CacheHierarchy::flush_line(PhysAddr addr) {
  for (auto& c : l1d_) {
    c->flush_line(addr);
  }
  for (auto& c : l1i_) {
    c->flush_line(addr);
  }
  if (llc_ != nullptr) {
    llc_->flush_line(addr);
  }
}

void CacheHierarchy::flush_lines(PhysAddr base, std::uint32_t stride, std::uint32_t count) {
  const auto sweep = [&](Cache& c) {
    if (c.empty()) {
      return;
    }
    PhysAddr a = base;
    for (std::uint32_t i = 0; i < count; ++i, a += stride) {
      c.flush_line(a);
    }
  };
  for (auto& c : l1d_) {
    sweep(*c);
  }
  for (auto& c : l1i_) {
    sweep(*c);
  }
  if (llc_ != nullptr) {
    sweep(*llc_);
  }
}

void CacheHierarchy::flush_core_private(CoreId core) {
  if (!config_.has_l1) {
    return;
  }
  l1d_[core]->flush_all();
  l1i_[core]->flush_all();
}

void CacheHierarchy::flush_all() {
  for (auto& c : l1d_) {
    c->flush_all();
  }
  for (auto& c : l1i_) {
    c->flush_all();
  }
  if (llc_ != nullptr) {
    llc_->flush_all();
  }
}

void CacheHierarchy::flush_domain(DomainId domain) {
  for (auto& c : l1d_) {
    c->flush_domain(domain);
  }
  for (auto& c : l1i_) {
    c->flush_domain(domain);
  }
  if (llc_ != nullptr) {
    llc_->flush_domain(domain);
  }
}

void CacheHierarchy::add_uncacheable(PhysAddr start, std::uint32_t len, Exclusion scope) {
  ++exclusion_epoch_;
  uncacheable_.push_back({start, start + len, scope});
  // Drop already-cached copies: an exclusion that leaves stale lines
  // behind would still be probeable.
  for (PhysAddr a = start & ~(config_.llc.line_size - 1); a < start + len;
       a += config_.llc.line_size) {
    flush_line(a);
  }
}

void CacheHierarchy::clear_uncacheable() {
  ++exclusion_epoch_;
  uncacheable_.clear();
}

Cache& CacheHierarchy::llc() {
  if (llc_ == nullptr) {
    throw SimError(ErrorKind::kConfigError, "hierarchy has no LLC");
  }
  return *llc_;
}

const Cache& CacheHierarchy::llc() const {
  if (llc_ == nullptr) {
    throw SimError(ErrorKind::kConfigError, "hierarchy has no LLC");
  }
  return *llc_;
}

Cache& CacheHierarchy::l1d(CoreId core) { return *l1d_.at(core); }
const Cache& CacheHierarchy::l1d(CoreId core) const { return *l1d_.at(core); }
Cache& CacheHierarchy::l1i(CoreId core) { return *l1i_.at(core); }
const Cache& CacheHierarchy::l1i(CoreId core) const { return *l1i_.at(core); }

void CacheHierarchy::reset_stats() {
  for (auto& c : l1d_) {
    c->reset_stats();
  }
  for (auto& c : l1i_) {
    c->reset_stats();
  }
  if (llc_ != nullptr) {
    llc_->reset_stats();
  }
}

CacheHierarchy::Snapshot CacheHierarchy::snapshot() {
  Snapshot snap;
  snap.l1d.reserve(l1d_.size());
  snap.l1i.reserve(l1i_.size());
  // Arm each journal *before* copying, so the copies carry a clean, armed
  // journal and a full-copy restore re-arms for free.
  for (const auto& c : l1d_) {
    c->begin_set_tracking();
    snap.l1d.push_back(*c);
  }
  for (const auto& c : l1i_) {
    c->begin_set_tracking();
    snap.l1i.push_back(*c);
  }
  if (llc_ != nullptr) {
    llc_->begin_set_tracking();
    snap.llc.push_back(*llc_);
  }
  snap.uncacheable = uncacheable_;
  return snap;
}

void CacheHierarchy::restore(const Snapshot& snap) {
  assert(snap.l1d.size() == l1d_.size() && snap.l1i.size() == l1i_.size() &&
         snap.llc.size() == (llc_ != nullptr ? 1u : 0u));
  for (std::size_t i = 0; i < l1d_.size(); ++i) {
    l1d_[i]->restore_from(snap.l1d[i]);
  }
  for (std::size_t i = 0; i < l1i_.size(); ++i) {
    l1i_[i]->restore_from(snap.l1i[i]);
  }
  if (llc_ != nullptr) {
    llc_->restore_from(snap.llc.front());
  }
  uncacheable_ = snap.uncacheable;
  ++exclusion_epoch_;  // monotonic: invalidates memos armed pre-restore.
}

void CacheHierarchy::back_invalidate(PhysAddr line_base) {
  for (auto& c : l1d_) {
    c->flush_line(line_base);
  }
  for (auto& c : l1i_) {
    c->flush_line(line_base);
  }
}

}  // namespace hwsec::sim
