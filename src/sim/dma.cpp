#include "sim/dma.h"

namespace hwsec::sim {

DmaDevice::DmaDevice(Bus& bus, DomainId domain, std::string name)
    : bus_(&bus), domain_(domain), name_(std::move(name)) {}

DmaDevice::TransferResult DmaDevice::read_block(PhysAddr src, std::span<Word> out) {
  TransferResult r;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const BusResult br = bus_->dma_read(domain_, src + static_cast<PhysAddr>(4 * i));
    r.latency += br.latency;
    if (br.fault != Fault::kNone) {
      r.fault = br.fault;
      return r;
    }
    out[i] = br.value;
    ++r.words_done;
  }
  return r;
}

DmaDevice::TransferResult DmaDevice::write_block(PhysAddr dst, std::span<const Word> in) {
  TransferResult r;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const BusResult br = bus_->dma_write(domain_, dst + static_cast<PhysAddr>(4 * i), in[i]);
    r.latency += br.latency;
    if (br.fault != Fault::kNone) {
      r.fault = br.fault;
      return r;
    }
    ++r.words_done;
  }
  return r;
}

std::vector<std::uint8_t> DmaDevice::exfiltrate(PhysAddr src, std::uint32_t bytes) {
  const std::uint32_t words = (bytes + 3) / 4;
  std::vector<Word> buffer(words, 0);
  const TransferResult r = read_block(src, buffer);
  std::vector<std::uint8_t> out;
  out.reserve(r.words_done * 4);
  for (std::uint32_t i = 0; i < r.words_done; ++i) {
    for (std::uint32_t b = 0; b < 4 && out.size() < bytes; ++b) {
      out.push_back(static_cast<std::uint8_t>(buffer[i] >> (8 * b)));
    }
  }
  return out;
}

}  // namespace hwsec::sim
