#!/usr/bin/env sh
# Smoke-runs every experiment binary (tables print; the google-benchmark
# timing loops are skipped via --benchmark_filter=skip) and produces the
# campaign-engine scaling record BENCH_campaign.json.
#
# Usage: bench/run_all.sh [build-dir]   (default: build)
# Knobs: HWSEC_CAMPAIGN_TRIALS  trials per scaling run (default 400)
#        HWSEC_BENCH_JSON       output path for BENCH_campaign.json
set -eu

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

BENCHES="
bench_fig1_matrix
bench_sec3_architectures
bench_sec41_cache_attacks
bench_sec41_defenses
bench_sec41_other_channels
bench_sec42_spectre
bench_sec42_meltdown_foreshadow
bench_sec5_power_sca
bench_sec5_fault
bench_sec5_clkscrew
bench_sim_microbench
bench_conclusion_advisor
"

for b in $BENCHES; do
  echo "==== $b ===="
  "$BENCH_DIR/$b" --benchmark_filter=skip
  echo
done

echo "==== bench_campaign (writes ${HWSEC_BENCH_JSON:-BENCH_campaign.json}) ===="
"$BENCH_DIR/bench_campaign" --benchmark_filter=skip
