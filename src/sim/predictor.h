// Branch prediction structures: pattern history table (PHT), branch target
// buffer (BTB) and return stack buffer (RSB).
//
// These are deliberately modeled with the weaknesses the paper's Section
// 4.2 attacks exploit:
//  * the PHT is indexed by (untagged) low PC bits, so an attacker
//    executing a congruent branch trains the victim's prediction —
//    Spectre-PHT / bounds-check-bypass;
//  * the BTB is indexed and (optionally) tagged by a *subset* of virtual-
//    address bits ("branch prediction buffers are indexed using virtual
//    addresses … allowing mistraining not only from the same address
//    space, but also from different processes", §4.2). With tag_bits == 0
//    any alias from another domain injects targets — Spectre-BTB;
//  * the RSB is a small circular stack; on underflow it yields stale
//    entries — Spectre-RSB (Koruyeh et al., the paper's [27]).
//
// Mitigation knobs (flush on domain switch ≈ IBPB, tagging ≈ per-context
// prediction) exist so benches can show the attack disappearing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.h"

namespace hwsec::sim {

struct PredictorConfig {
  std::uint32_t pht_entries = 1024;       ///< 2-bit counters; power of two.
  std::uint32_t btb_entries = 256;        ///< power of two.
  std::uint32_t btb_tag_bits = 0;         ///< 0 = untagged (vulnerable).
  std::uint32_t rsb_depth = 16;
  bool flush_on_domain_switch = false;    ///< IBPB-style mitigation.
};

class PatternHistoryTable {
 public:
  explicit PatternHistoryTable(std::uint32_t entries);

  /// Predicted direction for the branch at `pc`.
  bool predict(VirtAddr pc) const;

  /// Updates the 2-bit counter with the resolved direction.
  void update(VirtAddr pc, bool taken);

  void reset();

 private:
  std::uint32_t index(VirtAddr pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t entries_;
  std::vector<std::uint8_t> counters_;  ///< 0..3 saturating; >=2 means taken.
};

class BranchTargetBuffer {
 public:
  BranchTargetBuffer(std::uint32_t entries, std::uint32_t tag_bits);

  /// Predicted target of the indirect branch at `pc`, if any entry
  /// matches. With tag_bits == 0 a congruent pc from *any* domain matches.
  std::optional<VirtAddr> predict(VirtAddr pc) const;

  void update(VirtAddr pc, VirtAddr target);

  void flush();

 private:
  struct Entry {
    bool valid = false;
    std::uint32_t tag = 0;
    VirtAddr target = 0;
  };
  std::uint32_t index(VirtAddr pc) const { return (pc >> 2) & (entries_ - 1); }
  std::uint32_t tag_of(VirtAddr pc) const {
    if (tag_bits_ == 0) {
      return 0;
    }
    const std::uint32_t shift = 2 + index_bits_;
    return (pc >> shift) & ((1u << tag_bits_) - 1);
  }

  std::uint32_t entries_;
  std::uint32_t index_bits_;
  std::uint32_t tag_bits_;
  std::vector<Entry> table_;
};

class ReturnStackBuffer {
 public:
  explicit ReturnStackBuffer(std::uint32_t depth);

  void push(VirtAddr return_addr);

  /// Pops a prediction. On underflow returns the stale slot content (the
  /// Spectre-RSB condition) — nullopt only if nothing was ever pushed.
  std::optional<VirtAddr> pop();

  void flush();
  std::uint32_t occupancy() const { return occupancy_; }

 private:
  std::vector<VirtAddr> slots_;
  std::vector<bool> ever_written_;
  std::uint32_t top_ = 0;        ///< next push position.
  std::uint32_t occupancy_ = 0;  ///< live entries (saturates at depth).
};

/// Per-core bundle with the domain-switch hook.
class BranchPredictor {
 public:
  explicit BranchPredictor(PredictorConfig config);

  PatternHistoryTable& pht() { return pht_; }
  BranchTargetBuffer& btb() { return btb_; }
  ReturnStackBuffer& rsb() { return rsb_; }
  const PredictorConfig& config() const { return config_; }

  /// Called by the CPU when the executing security domain changes.
  void on_domain_switch();

 private:
  PredictorConfig config_;
  PatternHistoryTable pht_;
  BranchTargetBuffer btb_;
  ReturnStackBuffer rsb_;
};

}  // namespace hwsec::sim
