// Spectre against an SGX enclave ("SgxPectre"-style) — the paper's §4.2
// closing worry made concrete: "for most of the hardware-assisted
// security mechanisms presented in this paper, an extensive evaluation of
// transient execution attacks has not been presented yet."
//
// Unlike Foreshadow, no fault and no L1 staging are needed: the victim
// branch lives INSIDE the enclave's own code, which legitimately reads
// enclave memory. The hosting (malicious) application controls the
// enclave's inputs, so it can
//   1. train the enclave's bounds check with in-bounds calls,
//   2. pass an out-of-bounds index whose transient dereference reaches
//      the enclave's secret (EPCM translation succeeds: it is the
//      enclave itself reading its own page),
//   3. read the byte back through a probe array in shared host memory
//      (enclaves may touch untrusted memory — that is how they do I/O).
//
// SGX's architectural protections (EPCM, MEE) are all honored throughout;
// the leak rides entirely on shared microarchitectural prediction state.
// Mitigations modeled: serializing fence after the bounds check (the
// SDK's post-Spectre hardening) and non-speculative silicon.
#pragma once

#include <optional>

#include "arch/sgx.h"
#include "attacks/transient/environment.h"

namespace hwsec::attacks {

class SgxPectreAttack {
 public:
  struct Config {
    /// Harden the enclave gadget with a serializing fence (the SDK fix).
    bool enclave_has_fence = false;
    std::uint32_t training_rounds = 8;
  };

  /// Creates the victim enclave (bounded-array service + `secret` in its
  /// EPC memory) and the hosting attacker environment.
  SgxPectreAttack(hwsec::sim::Machine& machine, hwsec::arch::Sgx& sgx,
                  const std::string& secret, hwsec::sim::CoreId core = 0)
      : SgxPectreAttack(machine, sgx, secret, core, Config{}) {}
  SgxPectreAttack(hwsec::sim::Machine& machine, hwsec::arch::Sgx& sgx,
                  const std::string& secret, hwsec::sim::CoreId core, Config config);

  /// Leaks byte `offset` of the enclave secret; nullopt if the channel
  /// stayed cold.
  std::optional<std::uint8_t> leak_secret_byte(std::uint32_t offset);

  std::string leak_secret(std::size_t len, std::uint32_t retries = 3);

  hwsec::tee::EnclaveId victim_id() const { return victim_; }

 private:
  void call_enclave_service(hwsec::sim::Word index);

  Config config_;
  hwsec::arch::Sgx* sgx_;
  UserProcess host_;  ///< the malicious hosting application.
  hwsec::tee::EnclaveId victim_ = hwsec::tee::kInvalidEnclave;
  hwsec::sim::AddressSpace enclave_aspace_;
  hwsec::sim::Asid enclave_asid_ = 77;
  hwsec::sim::VirtAddr entry_ = 0;
  hwsec::sim::Word bound_ = 16;
  hwsec::sim::Word secret_index_ = 0;  ///< OOB distance from array to secret.
};

}  // namespace hwsec::attacks
