// E3 — §4.1 software cache side-channel attacks against T-table AES:
// Evict+Time, Prime+Probe, Flush+Reload ([34][42]).
//
// Reports key-material recovery vs. number of victim observations, plus
// the replacement-policy ablation (random replacement degrades
// eviction-set reliability — the DESIGN.md E3 ablation).
//
// Paper's expected shape: all three attacks recover the key against an
// unprotected victim; Flush+Reload needs the fewest observations (it
// watches lines directly), Prime+Probe is close behind, Evict+Time is the
// noisiest.
#include <benchmark/benchmark.h>

#include "attacks/cache/cache_attacks.h"
#include "attacks/cache/full_key_recovery.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

struct Setup {
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<attacks::AesCacheVictim> victim;

  explicit Setup(std::uint64_t seed,
                 sim::ReplacementPolicy policy = sim::ReplacementPolicy::kLru) {
    sim::MachineProfile profile = sim::MachineProfile::server();
    profile.hierarchy.llc.policy = policy;
    machine = std::make_unique<sim::Machine>(profile, seed);
    const sim::PhysAddr tables = machine->alloc_frames(2);
    victim = std::make_unique<attacks::AesCacheVictim>(*machine, 1, 7, tables, kKey);
  }

  attacks::VictimFn fn() {
    return [this](const crypto::AesBlock& pt) { return victim->encrypt(pt); };
  }
};

using AttackFn = attacks::CacheAttackResult (*)(Setup&, std::uint64_t trials);

attacks::CacheAttackResult run_fr(Setup& s, std::uint64_t trials) {
  attacks::CacheAttackConfig c;
  c.trials = trials;
  return attacks::flush_reload_attack(*s.machine, s.victim->layout(), s.fn(), c);
}
attacks::CacheAttackResult run_pp(Setup& s, std::uint64_t trials) {
  attacks::CacheAttackConfig c;
  c.trials = trials;
  return attacks::prime_probe_attack(*s.machine, s.victim->layout(), s.fn(), c);
}
attacks::CacheAttackResult run_et(Setup& s, std::uint64_t trials) {
  attacks::CacheAttackConfig c;
  c.trials = trials;
  return attacks::evict_time_attack(*s.machine, s.victim->layout(), s.fn(), c);
}

void sweep(const char* name, AttackFn fn, const std::vector<std::uint64_t>& trial_counts) {
  hwsec::bench::Table t({"attack", "observations", "nibbles ok /16", "margin"},
                        {16, 14, 16, 10});
  static bool printed_header = false;
  if (!printed_header) {
    t.print_header();
    printed_header = true;
  }
  std::uint64_t seed = 9000;
  for (const std::uint64_t trials : trial_counts) {
    Setup s(seed++);
    const auto r = fn(s, trials);
    t.print_row(name, trials, r.correct_nibbles(kKey), r.mean_margin());
  }
}

// google-benchmark: attack throughput (victim invocations per second of
// host time), one per attack.
void BM_FlushReloadRound(benchmark::State& state) {
  Setup s(9999);
  attacks::CacheAttackConfig c;
  c.trials = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacks::flush_reload_attack(*s.machine, s.victim->layout(), s.fn(), c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_FlushReloadRound)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_PrimeProbeRound(benchmark::State& state) {
  Setup s(9998);
  attacks::CacheAttackConfig c;
  c.trials = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attacks::prime_probe_attack(*s.machine, s.victim->layout(), s.fn(), c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_PrimeProbeRound)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  hwsec::bench::section(
      "E3 / §4.1 — key-nibble recovery vs. victim observations (unprotected victim)");
  sweep("Flush+Reload", run_fr, {25, 50, 100, 200, 400, 800});
  sweep("Prime+Probe", run_pp, {25, 50, 100, 200, 400, 800});
  sweep("Evict+Time", run_et, {400, 800, 1600, 3200, 6400});

  hwsec::bench::section("E3b — full 128-bit key via the second-round attack (Osvik et al. §3.4)");
  {
    hwsec::bench::Table f({"observations", "eq survivors (0/1/2/3)", "full key recovered"},
                          {14, 26, 20});
    f.print_header();
    for (const std::uint64_t trials : {64u, 128u, 256u, 600u}) {
      Setup s(9200 + trials);
      const auto r = attacks::full_key_attack(*s.machine, s.victim->layout(), s.fn(), trials);
      f.print_row(trials,
                  std::to_string(r.equation_survivors[0]) + "/" +
                      std::to_string(r.equation_survivors[1]) + "/" +
                      std::to_string(r.equation_survivors[2]) + "/" +
                      std::to_string(r.equation_survivors[3]),
                  r.recovered && r.key == kKey ? "YES (128/128 bits)" : "no");
    }
    std::cout << "(first round gives the 64 high-nibble bits; the second-round\n"
                 " equations eliminate the remaining 2^64 candidate space)\n";
  }

  hwsec::bench::section("ablation: LLC replacement policy (Prime+Probe, 400 obs.)");
  hwsec::bench::Table t({"policy", "nibbles ok /16", "margin"}, {14, 16, 10});
  t.print_header();
  for (const auto policy : {sim::ReplacementPolicy::kLru, sim::ReplacementPolicy::kTreePlru,
                            sim::ReplacementPolicy::kRandom}) {
    Setup s(9100, policy);
    const auto r = run_pp(s, 400);
    t.print_row(sim::to_string(policy), r.correct_nibbles(kKey), r.mean_margin());
  }
  std::cout
      << "(LRU self-heals: each prime pass evicts exactly the victim's stale line.\n"
         " tree-PLRU defeats naive sequential priming entirely — a stale victim line\n"
         " gets 'protected' by the tree and the set reads as permanently noisy; real\n"
         " PLRU attacks need specialized access patterns, which is the documented\n"
         " reason eviction-set construction on PLRU caches is hard. random\n"
         " replacement only degrades the margin: coverage stays probabilistic.)\n";

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
