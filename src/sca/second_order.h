// Second-order CPA against first-order Boolean masking.
//
// A first-order masked implementation leaks S[x] ⊕ m and (elsewhere in
// the trace) m itself; each sample alone is independent of x, so
// first-order CPA fails — §5's masking countermeasure, validated in
// sca/cpa tests. But the *joint* distribution still depends on x: under
// the Hamming-weight model,
//
//     E[(HW(S[x]⊕m) − 4)(HW(m) − 4)]  =  (4 − HW(S[x])) / 4,
//
// so the centered product of the two samples correlates (negatively)
// with HW(S[x]). Combining every S-box sample with the mask-load sample
// and running ordinary CPA on the combined trace recovers the key — the
// textbook reason masking *order* matters and higher-order masking
// exists (Mangard/Oswald/Popp, the paper's [30]).
#pragma once

#include "sca/cpa.h"
#include "sca/trace.h"

namespace hwsec::sca {

/// Second-order CPA on key byte `byte_index`. `mask_sample` is the trace
/// index of the mask-load leak (for crypto::AesMasked: sample 1 = m_out).
/// Combined samples are centered products of the mask sample with every
/// other point.
ByteAttackResult second_order_cpa_byte(const TraceSet& set, std::size_t byte_index,
                                       std::size_t mask_sample);

/// All 16 key bytes.
KeyAttackResult second_order_cpa_key(const TraceSet& set, std::size_t mask_sample = 1);

}  // namespace hwsec::sca
