// Program representation and assembler-style builder.
//
// Attack code for the transient-execution experiments is written against
// this builder. Labels resolve to virtual addresses at build() time, so a
// program is pinned to its base address — which matters, because BTB/PHT
// aliasing is a function of the branch instruction's virtual address (a
// Spectre-BTB attacker deliberately places its training branch at an
// address congruent to the victim's).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/isa.h"
#include "sim/types.h"

namespace hwsec::sim {

struct Program {
  VirtAddr base = 0;
  std::vector<Instruction> code;
  std::unordered_map<std::string, VirtAddr> labels;

  VirtAddr address_of(const std::string& label) const {
    auto it = labels.find(label);
    if (it == labels.end()) {
      throw std::out_of_range("unknown label: " + label);
    }
    return it->second;
  }

  VirtAddr end() const { return base + 4 * static_cast<VirtAddr>(code.size()); }
  std::uint32_t size_bytes() const { return 4 * static_cast<std::uint32_t>(code.size()); }

  /// Instruction at virtual address `pc`, or nullptr if outside.
  const Instruction* at(VirtAddr pc) const {
    if (pc < base || pc >= end() || (pc - base) % 4 != 0) {
      return nullptr;
    }
    return &code[(pc - base) / 4];
  }
};

class ProgramBuilder {
 public:
  /// `base` is the virtual address of the first instruction.
  explicit ProgramBuilder(VirtAddr base = 0x10000) : base_(base) {}

  // -- labels ---------------------------------------------------------
  ProgramBuilder& label(const std::string& name);
  VirtAddr current_address() const { return base_ + 4 * static_cast<VirtAddr>(code_.size()); }

  // -- data movement / ALU --------------------------------------------
  ProgramBuilder& nop();
  ProgramBuilder& li(Reg rd, std::int64_t imm);
  ProgramBuilder& mov(Reg rd, Reg rs) { return addi(rd, rs, 0); }
  ProgramBuilder& add(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& sub(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& and_(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& or_(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& xor_(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& shl(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& shr(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& mul(Reg rd, Reg rs1, Reg rs2);
  ProgramBuilder& addi(Reg rd, Reg rs1, std::int64_t imm);
  ProgramBuilder& andi(Reg rd, Reg rs1, std::int64_t imm);
  ProgramBuilder& xori(Reg rd, Reg rs1, std::int64_t imm);
  ProgramBuilder& shli(Reg rd, Reg rs1, std::int64_t imm);
  ProgramBuilder& shri(Reg rd, Reg rs1, std::int64_t imm);

  // -- memory ----------------------------------------------------------
  ProgramBuilder& lw(Reg rd, Reg addr_base, std::int64_t offset = 0);
  ProgramBuilder& lb(Reg rd, Reg addr_base, std::int64_t offset = 0);
  ProgramBuilder& sw(Reg addr_base, std::int64_t offset, Reg value);
  ProgramBuilder& sb(Reg addr_base, std::int64_t offset, Reg value);
  ProgramBuilder& clflush(Reg addr_base, std::int64_t offset = 0);

  // -- control flow ----------------------------------------------------
  ProgramBuilder& br(BranchCond cond, Reg rs1, Reg rs2, const std::string& target_label);
  ProgramBuilder& jump(const std::string& target_label);
  ProgramBuilder& jump_abs(VirtAddr target);
  ProgramBuilder& jr(Reg target);
  ProgramBuilder& call(const std::string& target_label);
  ProgramBuilder& call_abs(VirtAddr target);
  ProgramBuilder& callr(Reg target);
  ProgramBuilder& ret();

  // -- misc -------------------------------------------------------------
  ProgramBuilder& fence();
  ProgramBuilder& rdcycle(Reg rd);
  ProgramBuilder& ecall(std::int64_t service);
  ProgramBuilder& halt();

  /// Resolves labels and returns the finished program.
  Program build();

 private:
  ProgramBuilder& emit(Instruction inst);
  ProgramBuilder& emit_labelled_target(Instruction inst, const std::string& target);

  VirtAddr base_;
  std::vector<Instruction> code_;
  std::unordered_map<std::string, VirtAddr> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

}  // namespace hwsec::sim
