// Signature-verified boot chain (paper §3.2: the TrustZone monitor
// "verifies all secure world code during boot using digital signatures";
// §3.3: TyTAN's secure boot).
//
// Classic chain-of-trust: each stage's measurement is signed by the
// device vendor; the ROM verifier checks stages in order and refuses to
// hand off control past the first mismatch. A flipped bit anywhere in
// any stage image — or a stage signed by the wrong key — stops the boot
// exactly there.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace hwsec::tee {

struct BootStage {
  std::string name;                 ///< "monitor", "secure-os", "ta-store"...
  std::vector<std::uint8_t> image;  ///< the stage's code/data blob.
  hwsec::crypto::u64 signature = 0; ///< vendor signature over the measurement.
};

/// Vendor-side signing of a stage image (factory / firmware-release step).
BootStage make_signed_stage(const std::string& name, std::vector<std::uint8_t> image,
                            const hwsec::crypto::RsaKeyPair& vendor_key);

struct BootResult {
  bool ok = false;
  /// Index of the first stage that failed verification (only meaningful
  /// when !ok).
  std::size_t failed_stage = 0;
  /// Measurements of every verified stage, in boot order — the platform's
  /// boot-time identity (what attestation later reports against).
  std::vector<hwsec::crypto::Sha256Digest> measurements;
};

/// ROM-resident verifier: holds only the vendor's PUBLIC key.
class SecureBootChain {
 public:
  SecureBootChain(hwsec::crypto::u64 vendor_n, hwsec::crypto::u64 vendor_e)
      : n_(vendor_n), e_(vendor_e) {}

  /// Verifies the stages in order; stops at the first failure.
  BootResult boot(const std::vector<BootStage>& stages) const;

 private:
  hwsec::crypto::u64 n_;
  hwsec::crypto::u64 e_;
};

/// Measurement-to-message folding shared by signer and verifier.
hwsec::crypto::u64 measurement_message(const hwsec::crypto::Sha256Digest& digest,
                                       hwsec::crypto::u64 modulus);

}  // namespace hwsec::tee
