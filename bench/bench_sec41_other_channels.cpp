// E10 — §4.1's generalization claim: "attacks are, however, not limited
// to memory caches: theoretically, any cache structure shared by the
// attacker and the victim can be exploited, e.g. the TLB [15] or the
// BTB [28]" — plus the privileged-software countermeasure family the
// same section cites ([9] detection, [32] timer fuzzing).
//
// Measured here:
//   * the TLB occupancy channel recovering secret nibbles, vs. the TLB
//     way-partitioning defense;
//   * branch shadowing recovering secret branch directions, vs. the
//     predictor-flush defense;
//   * TimeWarp-style timer coarsening vs. Flush+Reload (degradation curve);
//   * the performance-counter detector's alert behaviour under benign and
//     attack load.
#include <benchmark/benchmark.h>

#include "attacks/cache/cache_attacks.h"
#include "attacks/cache/tlb_attack.h"
#include "attacks/transient/branch_shadow.h"
#include "core/detector.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace attacks = hwsec::attacks;
namespace core = hwsec::core;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

void BM_TlbAttackRound(benchmark::State& state) {
  sim::Machine machine(sim::MachineProfile::server(), 1001);
  attacks::TlbAttack attack(machine, 0);
  std::uint8_t nibble = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.recover_nibble(nibble));
    nibble = static_cast<std::uint8_t>((nibble + 1) & 0xF);
  }
}
BENCHMARK(BM_TlbAttackRound)->Iterations(500);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E10a — TLB occupancy channel (64 secret nibbles)");
  Table t({"configuration", "recovery accuracy"}, {44, 18});
  t.print_header();
  {
    sim::Machine machine(sim::MachineProfile::server(), 1002);
    attacks::TlbAttack attack(machine, 0);
    t.print_row("shared set-associative TLB (ASID-tagged)", attack.accuracy(64));
  }
  {
    sim::Machine machine(sim::MachineProfile::server(), 1003);
    attacks::TlbAttack attack(machine, 0);
    attack.mmu().tlb().set_way_partition(attacks::TlbAttack::kAttackerAsid, 0, 2);
    attack.mmu().tlb().set_way_partition(attacks::TlbAttack::kVictimAsid, 2, 2);
    t.print_row("TLB way-partitioned per context", attack.accuracy(64));
  }
  std::cout << "(tagging hides translations but not occupancy; partitioning removes\n"
               " the displacement signal entirely)\n";

  hwsec::bench::section("E10b — branch shadowing against a secret-dependent branch");
  Table b({"configuration", "bit inference accuracy"}, {44, 22});
  b.print_header();
  {
    sim::Machine machine(sim::MachineProfile::server(), 1004);
    attacks::BranchShadowAttack attack(machine, 0);
    b.print_row("shared PHT (SGX-like: no flush on exit)", attack.accuracy(128));
  }
  {
    sim::MachineProfile profile = sim::MachineProfile::server();
    profile.cpu.predictor.flush_on_domain_switch = true;
    sim::Machine machine(profile, 1005);
    attacks::BranchShadowAttack attack(machine, 0);
    b.print_row("predictor flushed on domain switch", attack.accuracy(128));
  }

  hwsec::bench::section("E10c — TimeWarp timer fuzzing vs. Flush+Reload (300 obs.)");
  Table w({"granularity", "jitter", "nibbles ok /16"}, {13, 9, 15});
  w.print_header();
  for (const auto& [granularity, jitter] :
       std::vector<std::pair<sim::Cycle, sim::Cycle>>{
           {1, 0}, {64, 0}, {128, 128}, {256, 256}, {512, 512}, {2048, 2048}}) {
    sim::MachineProfile profile = sim::MachineProfile::server();
    profile.timer.granularity = granularity;
    profile.timer.jitter = jitter;
    sim::Machine machine(profile, 1006 + granularity);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
    attacks::CacheAttackConfig config;
    config.trials = 300;
    const auto result = attacks::flush_reload_attack(
        machine, victim.layout(),
        [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config);
    w.print_row(granularity, jitter, result.correct_nibbles(kKey));
  }
  std::cout << "(degradation, not elimination — TimeWarp's own claim is that attacks\n"
               " need quadratically more samples)\n";

  hwsec::bench::section("E10d — performance-counter detection of Prime+Probe");
  {
    sim::Machine machine(sim::MachineProfile::server(), 1007);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    attacks::AesCacheVictim victim(machine, 1, 7, tables, kKey);
    core::CacheAttackDetector detector(machine, 7);
    hwsec::sim::Rng rng(1008);
    auto random_block = [&rng]() {
      crypto::AesBlock blk;
      for (auto& byte : blk) {
        byte = static_cast<std::uint8_t>(rng.next_u32());
      }
      return blk;
    };
    for (int w2 = 0; w2 < 10; ++w2) {
      detector.begin_window();
      for (int i = 0; i < 20; ++i) {
        victim.encrypt(random_block());
      }
      detector.end_window();
    }
    detector.finish_calibration();
    Table d({"window type", "victim evictions", "flagged"}, {20, 18, 10});
    d.print_header();
    for (int w2 = 0; w2 < 3; ++w2) {
      detector.begin_window();
      for (int i = 0; i < 20; ++i) {
        victim.encrypt(random_block());
      }
      const auto r = detector.end_window();
      d.print_row("benign", r.victim_evictions, r.flagged);
    }
    for (int w2 = 0; w2 < 3; ++w2) {
      detector.begin_window();
      attacks::CacheAttackConfig config;
      config.trials = 40;
      config.rng_seed = 1009 + static_cast<std::uint64_t>(w2);
      attacks::prime_probe_attack(
          machine, victim.layout(),
          [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config);
      const auto r = detector.end_window();
      d.print_row("under Prime+Probe", r.victim_evictions, r.flagged);
    }
    std::cout << "baseline victim evictions/window: " << detector.baseline_mean() << "\n";
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
