// E11 — §6's conclusion, executable: "it is important to select the
// optimal security architecture given the energy and performance budget
// of the application."
//
// Three application profiles from the paper's narrative, each run
// through the advisor (which scores the live architecture traits the E2
// probes validate):
//   * multi-tenant cloud inference (server, cache-SCA + DMA threats);
//   * third-party mobile payment apps (mobile, no vendor gatekeeping,
//     shipped silicon only);
//   * medical wearable sensor fleet (embedded, real-time, remote
//     attestation, physically exposed — cf. the paper's WearIT4Health
//     acknowledgement).
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/advisor.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace core = hwsec::core;

namespace {

void BM_RecommendAll(benchmark::State& state) {
  core::Requirements req;
  req.platform = sim::DeviceClass::kMobile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::recommend(req));
  }
}
BENCHMARK(BM_RecommendAll)->Iterations(5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  hwsec::bench::section("E11 / §6 — architecture selection for three application profiles");

  {
    std::cout << "--- multi-tenant cloud inference service ---\n";
    core::Requirements req;
    req.platform = sim::DeviceClass::kServer;
    req.multiple_enclaves = true;
    req.remote_attestation = true;
    req.cache_sca_threat = true;
    req.malicious_peripherals = true;
    std::cout << core::render_recommendations(req, core::recommend(req)) << "\n";
  }
  {
    std::cout << "--- third-party mobile payment apps ---\n";
    core::Requirements req;
    req.platform = sim::DeviceClass::kMobile;
    req.multiple_enclaves = true;
    req.no_vendor_gatekeeping = true;
    req.existing_hardware_only = true;
    req.cache_sca_threat = true;
    req.secure_peripheral_io = true;
    std::cout << core::render_recommendations(req, core::recommend(req)) << "\n";
  }
  {
    std::cout << "--- medical wearable sensor fleet ---\n";
    core::Requirements req;
    req.platform = sim::DeviceClass::kEmbedded;
    req.multiple_enclaves = true;
    req.remote_attestation = true;
    req.real_time = true;
    req.physical_adversary = true;
    req.malicious_peripherals = true;
    std::cout << core::render_recommendations(req, core::recommend(req)) << "\n";
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
