#include "sca/trace_store.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace hwsec::sca {

namespace {

constexpr std::uint32_t kManifestMagic = 0x4D545748u;  // "HWTM" little-endian.
constexpr std::uint32_t kChunkMagic = 0x43545748u;     // "HWTC".
constexpr std::uint32_t kFormatVersion = 1;

struct ManifestDisk {
  std::uint32_t magic = kManifestMagic;
  std::uint32_t version = kFormatVersion;
  std::uint64_t record_bytes = 0;
  std::uint64_t records_per_chunk = 0;
  std::uint64_t total = 0;
  std::uint64_t chunks = 0;
  std::uint64_t user_tag = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a of the preceding fields.
};

struct ChunkHeaderDisk {
  std::uint32_t magic = kChunkMagic;
  std::uint32_t version = kFormatVersion;
  std::uint64_t chunk_index = 0;
  std::uint64_t record_count = 0;
  std::uint64_t record_bytes = 0;
  std::uint64_t payload_checksum = 0;
};

std::string chunk_path(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk-%06zu.hwt", index);
  return dir + "/" + name;
}

std::string manifest_path(const std::string& dir) { return dir + "/manifest"; }

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("trace store: " + path + ": " + what);
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// ChunkedRecordWriter

ChunkedRecordWriter::ChunkedRecordWriter(std::string dir, std::size_t record_bytes,
                                         std::size_t records_per_chunk, std::uint64_t user_tag)
    : dir_(std::move(dir)),
      record_bytes_(record_bytes),
      records_per_chunk_(records_per_chunk),
      user_tag_(user_tag) {
  if (record_bytes_ == 0 || records_per_chunk_ == 0) {
    throw std::invalid_argument("trace store: record size and chunk capacity must be nonzero");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Drop any stale store (manifest + chunks) so a shorter re-capture can
  // never read a longer predecessor's tail chunks.
  std::filesystem::remove(manifest_path(dir_), ec);
  for (std::size_t i = 0;; ++i) {
    if (!std::filesystem::remove(chunk_path(dir_, i), ec)) {
      break;
    }
  }
  buffer_.reserve(record_bytes_ * records_per_chunk_);
}

ChunkedRecordWriter::~ChunkedRecordWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructor path: a failed flush leaves no manifest, which readers
    // report as "not a store" — the torn-write failure mode we want.
  }
}

void ChunkedRecordWriter::append(const std::uint8_t* record) {
  if (finalized_) {
    throw std::logic_error("trace store: append after finalize");
  }
  buffer_.insert(buffer_.end(), record, record + record_bytes_);
  ++total_;
  if (buffer_.size() >= record_bytes_ * records_per_chunk_) {
    close_chunk();
  }
}

void ChunkedRecordWriter::close_chunk() {
  if (buffer_.empty()) {
    return;
  }
  ChunkHeaderDisk header;
  header.chunk_index = chunks_;
  header.record_count = buffer_.size() / record_bytes_;
  header.record_bytes = record_bytes_;
  header.payload_checksum = fnv1a64(buffer_.data(), buffer_.size());
  const std::string path = chunk_path(dir_, chunks_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(buffer_.data()),
            static_cast<std::streamsize>(buffer_.size()));
  out.flush();
  if (!out) {
    fail(path, "write failed (disk full?)");
  }
  ++chunks_;
  buffer_.clear();
}

void ChunkedRecordWriter::finalize() {
  if (finalized_) {
    return;
  }
  close_chunk();
  ManifestDisk m;
  m.record_bytes = record_bytes_;
  m.records_per_chunk = records_per_chunk_;
  m.total = total_;
  m.chunks = chunks_;
  m.user_tag = user_tag_;
  m.checksum = fnv1a64(reinterpret_cast<const std::uint8_t*>(&m),
                       sizeof(ManifestDisk) - sizeof(std::uint64_t));
  // Write-to-temp + rename: the manifest is the store's commit record, so
  // it must appear atomically after every chunk it describes.
  const std::string path = manifest_path(dir_);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&m), sizeof(m));
    out.flush();
    if (!out) {
      fail(tmp, "manifest write failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    fail(path, "manifest rename failed");
  }
  finalized_ = true;
}

// ---------------------------------------------------------------------------
// ChunkedRecordReader

ChunkedRecordReader::ChunkedRecordReader(std::string dir) : dir_(std::move(dir)) {
  const std::string path = manifest_path(dir_);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(path, "missing manifest (not a finalized store)");
  }
  ManifestDisk m;
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || in.gcount() != sizeof(m)) {
    fail(path, "truncated manifest");
  }
  if (m.magic != kManifestMagic) {
    fail(path, "bad manifest magic");
  }
  if (m.version != kFormatVersion) {
    fail(path, "unsupported store version " + std::to_string(m.version));
  }
  const std::uint64_t expect = fnv1a64(reinterpret_cast<const std::uint8_t*>(&m),
                                       sizeof(ManifestDisk) - sizeof(std::uint64_t));
  if (m.checksum != expect) {
    fail(path, "manifest checksum mismatch");
  }
  if (m.record_bytes == 0 || m.records_per_chunk == 0) {
    fail(path, "degenerate manifest geometry");
  }
  record_bytes_ = m.record_bytes;
  records_per_chunk_ = m.records_per_chunk;
  total_ = m.total;
  chunks_ = m.chunks;
  user_tag_ = m.user_tag;
  const std::uint64_t max_capacity = chunks_ * records_per_chunk_;
  if (total_ > max_capacity) {
    fail(path, "manifest claims more records than its chunks can hold");
  }
}

void ChunkedRecordReader::replay(
    const std::function<void(std::size_t, const std::uint8_t*)>& visit) const {
  std::vector<std::uint8_t> payload;
  std::size_t index = 0;
  for (std::size_t c = 0; c < chunks_; ++c) {
    const std::string path = chunk_path(dir_, c);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      fail(path, "missing chunk");
    }
    ChunkHeaderDisk header;
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
    if (!in || in.gcount() != sizeof(header)) {
      fail(path, "truncated chunk header");
    }
    if (header.magic != kChunkMagic) {
      fail(path, "bad chunk magic");
    }
    if (header.version != kFormatVersion) {
      fail(path, "unsupported chunk version");
    }
    if (header.chunk_index != c) {
      fail(path, "chunk index mismatch (misnamed or shuffled chunk)");
    }
    if (header.record_bytes != record_bytes_) {
      fail(path, "chunk record size disagrees with manifest");
    }
    if (header.record_count == 0 || header.record_count > records_per_chunk_) {
      fail(path, "chunk record count out of range");
    }
    const std::size_t bytes = header.record_count * record_bytes_;
    payload.resize(bytes);
    in.read(reinterpret_cast<char*>(payload.data()), static_cast<std::streamsize>(bytes));
    if (!in || static_cast<std::size_t>(in.gcount()) != bytes) {
      fail(path, "truncated chunk payload");
    }
    if (fnv1a64(payload.data(), bytes) != header.payload_checksum) {
      fail(path, "chunk payload checksum mismatch (corrupt store)");
    }
    for (std::size_t r = 0; r < header.record_count; ++r) {
      if (index >= total_) {
        fail(path, "more records than the manifest declares");
      }
      visit(index++, payload.data() + r * record_bytes_);
    }
  }
  if (index != total_) {
    fail(manifest_path(dir_), "store ended short of the manifest's record count");
  }
}

// ---------------------------------------------------------------------------
// TraceStore

namespace {

constexpr std::size_t kBlockBytes = 32;  ///< plaintext + ciphertext prefix.

std::size_t default_traces_per_chunk(std::size_t samples) {
  const std::size_t record = kBlockBytes + samples * sizeof(double);
  const std::size_t target = 4u << 20;  // ~4 MiB chunks.
  return std::max<std::size_t>(1, target / record);
}

}  // namespace

TraceStoreWriter::TraceStoreWriter(const std::string& dir, std::size_t samples_per_trace,
                                   std::size_t traces_per_chunk)
    : samples_(samples_per_trace),
      writer_(dir, kBlockBytes + samples_per_trace * sizeof(double),
              traces_per_chunk != 0 ? traces_per_chunk
                                    : default_traces_per_chunk(samples_per_trace),
              /*user_tag=*/samples_per_trace),
      scratch_(kBlockBytes + samples_per_trace * sizeof(double)) {}

void TraceStoreWriter::append(std::span<const double> samples,
                              const std::array<std::uint8_t, 16>& plaintext,
                              const std::array<std::uint8_t, 16>& ciphertext) {
  if (samples.size() != samples_) {
    throw std::invalid_argument("trace store: trace has " + std::to_string(samples.size()) +
                                " samples, store expects " + std::to_string(samples_));
  }
  std::memcpy(scratch_.data(), plaintext.data(), 16);
  std::memcpy(scratch_.data() + 16, ciphertext.data(), 16);
  std::memcpy(scratch_.data() + kBlockBytes, samples.data(), samples.size() * sizeof(double));
  writer_.append(scratch_.data());
}

void TraceStoreWriter::append_batch(const TraceSet& batch) {
  for (std::size_t i = 0; i < batch.traces.size(); ++i) {
    append(batch.traces[i], batch.plaintexts[i],
           i < batch.ciphertexts.size() ? batch.ciphertexts[i] : std::array<std::uint8_t, 16>{});
  }
}

TraceStoreReader::TraceStoreReader(const std::string& dir) : reader_(dir) {
  samples_ = static_cast<std::size_t>(reader_.user_tag());
  if (reader_.record_bytes() != kBlockBytes + samples_ * sizeof(double)) {
    throw std::runtime_error("trace store: " + dir +
                             ": manifest geometry does not describe a trace store");
  }
}

void TraceStoreReader::replay(const std::function<void(const Record&)>& visit) const {
  const std::size_t samples = samples_;
  reader_.replay([&](std::size_t index, const std::uint8_t* raw) {
    Record rec;
    rec.index = index;
    std::memcpy(rec.plaintext.data(), raw, 16);
    std::memcpy(rec.ciphertext.data(), raw + 16, 16);
    // The chunk payload has no alignment guarantee for the f64 block;
    // copy through a properly aligned scratch row.
    thread_local std::vector<double> row;
    row.resize(samples);
    std::memcpy(row.data(), raw + kBlockBytes, samples * sizeof(double));
    rec.samples = std::span<const double>(row.data(), samples);
    visit(rec);
  });
}

TraceSet load_trace_set(const std::string& dir) {
  TraceStoreReader reader(dir);
  TraceSet set;
  set.traces.reserve(reader.size());
  set.plaintexts.reserve(reader.size());
  set.ciphertexts.reserve(reader.size());
  reader.replay([&](const TraceStoreReader::Record& rec) {
    set.traces.emplace_back(rec.samples.begin(), rec.samples.end());
    set.plaintexts.push_back(rec.plaintext);
    set.ciphertexts.push_back(rec.ciphertext);
  });
  return set;
}

}  // namespace hwsec::sca
