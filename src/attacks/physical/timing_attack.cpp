#include "attacks/physical/timing_attack.h"

#include <cmath>

#include "sim/rng.h"

namespace hwsec::attacks {

namespace crypto = hwsec::crypto;

std::vector<TimingSample> collect_timing_samples(const crypto::RsaKeyPair& key,
                                                 std::size_t count, double noise_sigma,
                                                 bool constant_time_victim, std::uint64_t seed) {
  hwsec::sim::Rng rng(seed);
  std::vector<TimingSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TimingSample s;
    s.ciphertext = rng.next_u64() % key.n;
    if (s.ciphertext < 2) {
      s.ciphertext = 2;
    }
    std::uint64_t ticks = 0;
    crypto::Instrumentation instr;
    instr.tick = [&ticks](std::uint64_t cost) { ticks += cost; };
    if (constant_time_victim) {
      crypto::rsa_private_ladder(s.ciphertext, key, instr);
    } else {
      crypto::rsa_private_naive(s.ciphertext, key, instr);
    }
    s.time = static_cast<double>(ticks) + rng.gaussian(0.0, noise_sigma);
    samples.push_back(s);
  }
  return samples;
}

namespace {

/// |mean(time | flag) - mean(time | !flag)|; 0 when a group is too small.
double separation(const std::vector<TimingSample>& samples, const std::vector<bool>& flags) {
  double sum1 = 0.0, sum0 = 0.0;
  std::size_t n1 = 0, n0 = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (flags[i]) {
      sum1 += samples[i].time;
      ++n1;
    } else {
      sum0 += samples[i].time;
      ++n0;
    }
  }
  if (n1 < 8 || n0 < 8) {
    return 0.0;
  }
  return std::abs(sum1 / static_cast<double>(n1) - sum0 / static_cast<double>(n0));
}

}  // namespace

TimingAttackResult timing_attack(crypto::u64 modulus, const std::vector<TimingSample>& samples,
                                 std::uint32_t exponent_bits) {
  TimingAttackResult result;
  if (exponent_bits < 2 || samples.empty()) {
    return result;
  }
  const crypto::Montgomery mont(modulus);

  // Per-sample simulated state after the bits recovered so far. After the
  // (set) top bit, the accumulator is c̄ (one Montgomery square of 1̄,
  // then the multiply).
  const std::size_t n = samples.size();
  std::vector<crypto::u64> c_mont(n);
  std::vector<crypto::u64> acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    c_mont[i] = mont.to_mont(samples[i].ciphertext);
    acc[i] = c_mont[i];
  }
  crypto::u64 recovered = 1;  // the assumed-set top bit.
  result.bits_decided = 1;

  std::vector<bool> mul_flag(n);
  std::vector<bool> next_square_if_zero(n);
  std::vector<crypto::u64> squared(n);
  std::vector<crypto::u64> multiplied(n);

  // Dhem-style error detection: when the recovered prefix is wrong, the
  // simulated accumulators decorrelate from the device and BOTH
  // discriminators collapse toward noise. We watch decision strength
  // against its running average and backtrack (flip the previous bit)
  // when it collapses — without this, a single early mistake silently
  // corrupts every later decision.
  struct Decision {
    bool bit;
    bool flipped;               ///< already retried with the other value.
    double strength;
    std::vector<crypto::u64> acc_before;
  };
  std::vector<Decision> trail;
  double strength_ewma = 0.0;
  int backtracks_left = 64;

  std::int32_t bit = static_cast<std::int32_t>(exponent_bits) - 2;
  while (bit >= 0) {
    for (std::size_t i = 0; i < n; ++i) {
      bool extra = false;
      squared[i] = mont.mul(acc[i], acc[i], &extra);
      multiplied[i] = mont.mul(squared[i], c_mont[i], &extra);
      mul_flag[i] = extra;  // extra reduction of the hypothesis-1 multiply.
      mont.mul(squared[i], squared[i], &extra);
      next_square_if_zero[i] = extra;  // next square under hypothesis 0.
    }
    const double d1 = separation(samples, mul_flag);
    const double d0 = separation(samples, next_square_if_zero);
    const double strength = std::max(d1, d0);

    const bool collapsed = trail.size() >= 4 && strength < 0.35 * strength_ewma;
    if (collapsed && backtracks_left > 0 && !trail.empty() && !trail.back().flipped) {
      // Revert the previous decision and force the other value.
      Decision prev = std::move(trail.back());
      trail.pop_back();
      acc = std::move(prev.acc_before);
      recovered >>= 1;
      --result.bits_decided;
      --backtracks_left;
      ++bit;  // redo the previous position...
      // ...with the flipped value, computed directly.
      for (std::size_t i = 0; i < n; ++i) {
        const crypto::u64 sq = mont.mul(acc[i], acc[i]);
        squared[i] = sq;
        multiplied[i] = mont.mul(sq, c_mont[i]);
      }
      const bool flipped_bit = !prev.bit;
      Decision redo;
      redo.bit = flipped_bit;
      redo.flipped = true;
      redo.strength = strength_ewma;  // neutral.
      redo.acc_before = acc;
      for (std::size_t i = 0; i < n; ++i) {
        acc[i] = flipped_bit ? multiplied[i] : squared[i];
      }
      recovered = (recovered << 1) | (flipped_bit ? 1u : 0u);
      ++result.bits_decided;
      trail.push_back(std::move(redo));
      --bit;
      continue;
    }

    const bool bit_is_one = d1 > d0;
    Decision d;
    d.bit = bit_is_one;
    d.flipped = false;
    d.strength = strength;
    d.acc_before = acc;
    trail.push_back(std::move(d));
    strength_ewma = trail.size() == 1 ? strength : 0.85 * strength_ewma + 0.15 * strength;

    recovered = (recovered << 1) | (bit_is_one ? 1u : 0u);
    ++result.bits_decided;
    for (std::size_t i = 0; i < n; ++i) {
      acc[i] = bit_is_one ? multiplied[i] : squared[i];
    }
    --bit;
  }

  // The final bit's hypothesis-0 discriminator has no following square;
  // verify the two candidates against the public operation instead.
  const crypto::u64 candidate_as_is = recovered;
  const crypto::u64 candidate_flipped = recovered ^ 1u;
  const crypto::u64 probe = samples.front().ciphertext;
  // d is correct iff (probe^d)^e == probe mod n for e = 65537 (the
  // framework's fixed public exponent).
  const auto verifies = [&](crypto::u64 d) {
    return crypto::powmod(crypto::powmod(probe, d, modulus), 65537, modulus) == probe % modulus;
  };
  if (!verifies(candidate_as_is) && verifies(candidate_flipped)) {
    recovered = candidate_flipped;
  }
  result.recovered_d = recovered;
  return result;
}

void score_against(TimingAttackResult& result, crypto::u64 true_d) {
  std::uint32_t correct = 0;
  for (std::uint32_t b = 0; b < result.bits_decided; ++b) {
    if (((result.recovered_d >> b) & 1) == ((true_d >> b) & 1)) {
      ++correct;
    }
  }
  result.bits_correct = correct;
}

}  // namespace hwsec::attacks
