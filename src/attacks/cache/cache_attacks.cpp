#include "attacks/cache/cache_attacks.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace crypto = hwsec::crypto;

namespace {

/// Vote accumulator: votes[key_byte][high_nibble_candidate].
class NibbleVotes {
 public:
  void add(std::size_t key_byte, std::uint8_t nibble) { ++votes_[key_byte][nibble & 0xF]; }

  void finish(CacheAttackResult& result) const {
    for (std::size_t i = 0; i < 16; ++i) {
      std::uint32_t best = 0, second = 0;
      std::uint8_t arg = 0;
      for (std::uint8_t v = 0; v < 16; ++v) {
        const std::uint32_t count = votes_[i][v];
        if (count > best) {
          second = best;
          best = count;
          arg = v;
        } else if (count > second) {
          second = count;
        }
      }
      result.high_nibbles[i] = arg;
      result.best_votes[i] = best;
      result.second_votes[i] = second;
    }
  }

 private:
  std::array<std::array<std::uint32_t, 16>, 16> votes_{};
};

/// Key bytes whose first-round lookup indexes table `t` (derivation in
/// attacks/cache/cache_attacks.h: T_t is indexed by bytes i with i%4==t).
std::array<std::size_t, 4> bytes_of_table(std::uint32_t t) {
  return {t, t + 4, t + 8, t + 12};
}

crypto::AesBlock random_block(sim::Rng& rng) {
  crypto::AesBlock b;
  for (auto& byte : b) {
    byte = static_cast<std::uint8_t>(rng.next_u32());
  }
  return b;
}

constexpr std::uint32_t kLinesPerTable = TableLayout::table_bytes() / 64;  // 16.

}  // namespace

double CacheAttackResult::mean_margin() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    sum += second_votes[i] > 0
               ? static_cast<double>(best_votes[i]) / static_cast<double>(second_votes[i])
               : (best_votes[i] > 0 ? 16.0 : 1.0);
  }
  return sum / 16.0;
}

CacheAttackResult flush_reload_attack(sim::Machine& machine, const TableLayout& layout,
                                      const VictimFn& victim, const CacheAttackConfig& config) {
  sim::Rng rng(config.rng_seed);
  NibbleVotes votes;
  CacheAttackResult result;
  result.trials = config.trials;

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    const crypto::AesBlock pt = random_block(rng);
    // Flush every line of the four round tables.
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
        machine.flush_line(layout.base[t] + 64 * l);
      }
    }
    victim(pt);
    // Reload: a fast access means the victim touched that line.
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
        const auto outcome =
            machine.touch(config.attacker_core, config.attacker_domain, layout.base[t] + 64 * l);
        if (machine.observe_latency(outcome.latency) < config.hit_threshold) {
          for (std::size_t i : bytes_of_table(t)) {
            votes.add(i, static_cast<std::uint8_t>(l ^ (pt[i] >> 4)));
          }
        }
      }
    }
  }
  votes.finish(result);
  return result;
}

CacheAttackResult prime_probe_attack(sim::Machine& machine, const TableLayout& layout,
                                     const VictimFn& victim, const CacheAttackConfig& config,
                                     EvictionSetBuilder::FrameAllocator allocator) {
  sim::Rng rng(config.rng_seed);
  const std::uint32_t ways = machine.caches().llc().config().ways;
  EvictionSetBuilder builder(machine, std::move(allocator));

  // Eviction set per (table, line) target.
  std::array<std::array<std::vector<sim::PhysAddr>, kLinesPerTable>, 4> sets;
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
      sets[t][l] = builder.build(layout.base[t] + 64 * l, ways);
    }
  }

  NibbleVotes votes;
  CacheAttackResult result;
  result.trials = config.trials;

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    const crypto::AesBlock pt = random_block(rng);
    // Prime: own every target set completely (repeatedly, so approximate
    // replacement policies converge to full attacker occupancy).
    for (std::uint32_t round = 0; round < std::max(1u, config.prime_rounds); ++round) {
      for (std::uint32_t t = 0; t < 4; ++t) {
        for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
          for (sim::PhysAddr a : sets[t][l]) {
            machine.touch(config.attacker_core, config.attacker_domain, a);
          }
        }
      }
    }
    victim(pt);
    // Probe: any DRAM-latency access means the victim displaced us.
    for (std::uint32_t t = 0; t < 4; ++t) {
      for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
        bool evicted = false;
        for (sim::PhysAddr a : sets[t][l]) {
          const auto outcome = machine.touch(config.attacker_core, config.attacker_domain, a);
          if (machine.observe_latency(outcome.latency) > config.hit_threshold) {
            evicted = true;
          }
        }
        if (evicted && !sets[t][l].empty()) {
          for (std::size_t i : bytes_of_table(t)) {
            votes.add(i, static_cast<std::uint8_t>(l ^ (pt[i] >> 4)));
          }
        }
      }
    }
  }
  votes.finish(result);
  return result;
}

CacheAttackResult evict_time_attack(sim::Machine& machine, const TableLayout& layout,
                                    const VictimFn& victim, const CacheAttackConfig& config,
                                    EvictionSetBuilder::FrameAllocator allocator) {
  sim::Rng rng(config.rng_seed);
  const std::uint32_t ways = machine.caches().llc().config().ways;
  EvictionSetBuilder builder(machine, std::move(allocator));

  std::array<std::array<std::vector<sim::PhysAddr>, kLinesPerTable>, 4> sets;
  for (std::uint32_t t = 0; t < 4; ++t) {
    for (std::uint32_t l = 0; l < kLinesPerTable; ++l) {
      sets[t][l] = builder.build(layout.base[t] + 64 * l, ways);
    }
  }

  // Evict+Time scores by ELIMINATION (Osvik et al.'s insight, adapted):
  // a T-table line is touched by ~90% of encryptions anyway (36 accesses
  // per table per block), so "slow" carries almost no information — but
  // "NOT slow" proves the first-round index of every byte using this
  // table had a different high nibble. The true key nibble is never
  // eliminated; every wrong candidate eventually is.
  std::array<std::array<std::uint32_t, 16>, 16> penalties{};
  CacheAttackResult result;
  result.trials = config.trials;
  const sim::Cycle dram = machine.caches().config().dram_latency;

  for (std::uint64_t trial = 0; trial < config.trials; ++trial) {
    const crypto::AesBlock pt = random_block(rng);
    const std::uint32_t t = static_cast<std::uint32_t>(trial % 4);
    const std::uint32_t l = static_cast<std::uint32_t>((trial / 4) % kLinesPerTable);
    if (sets[t][l].empty()) {
      continue;
    }

    // Warm the victim's working set, then evict exactly one table line.
    victim(pt);
    const sim::Cycle baseline = machine.observe_latency(victim(pt).latency);
    for (sim::PhysAddr a : sets[t][l]) {
      machine.touch(config.attacker_core, config.attacker_domain, a);
    }
    const sim::Cycle timed = machine.observe_latency(victim(pt).latency);

    const bool line_touched = timed > baseline + dram / 2;
    if (!line_touched) {
      for (std::size_t i : bytes_of_table(t)) {
        ++penalties[i][l ^ (pt[i] >> 4)];
      }
    }
  }

  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t best_penalty = UINT32_MAX, second_penalty = UINT32_MAX;
    std::uint8_t arg = 0;
    for (std::uint8_t v = 0; v < 16; ++v) {
      if (penalties[i][v] < best_penalty) {
        second_penalty = best_penalty;
        best_penalty = penalties[i][v];
        arg = v;
      } else if (penalties[i][v] < second_penalty) {
        second_penalty = penalties[i][v];
      }
    }
    result.high_nibbles[i] = arg;
    // Report penalties as "votes" with the margin sense preserved
    // (higher best_votes/second_votes = more confident).
    result.best_votes[i] = second_penalty;
    result.second_votes[i] = best_penalty + 1;
  }
  return result;
}

}  // namespace hwsec::attacks
