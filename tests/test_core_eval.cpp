// Evaluation engine: the measured Figure-1 matrix must reproduce the
// paper's qualitative shape, and the architecture matrix probes must
// agree with the declared traits.
#include <gtest/gtest.h>

#include "arch/sanctum.h"
#include "arch/sgx.h"
#include "arch/smart.h"
#include "core/arch_matrix.h"
#include "core/evaluation.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace core = hwsec::core;

namespace {

class Figure1Test : public ::testing::Test {
 protected:
  static const std::vector<core::PlatformEvaluation>& columns() {
    static const auto evals = core::evaluate_all_platforms(5);
    return evals;
  }
  static const core::PlatformEvaluation& server() { return columns()[0]; }
  static const core::PlatformEvaluation& mobile() { return columns()[1]; }
  static const core::PlatformEvaluation& embedded() { return columns()[2]; }
};

TEST_F(Figure1Test, RemoteAndLocalApplyEverywhere) {
  for (const auto& c : columns()) {
    EXPECT_EQ(c.remote, 3) << c.platform;
    EXPECT_EQ(c.local, 3) << c.platform;
  }
}

TEST_F(Figure1Test, MicroarchitecturalImportanceFallsTowardEmbedded) {
  EXPECT_GT(server().microarchitectural, mobile().microarchitectural);
  EXPECT_GT(mobile().microarchitectural, embedded().microarchitectural);
  EXPECT_EQ(embedded().microarchitectural, 0)
      << "no speculation + no shared caches = nothing to attack";
}

TEST_F(Figure1Test, PhysicalImportanceRisesTowardEmbedded) {
  EXPECT_LT(server().classical_physical, mobile().classical_physical);
  EXPECT_LE(mobile().classical_physical, embedded().classical_physical);
  EXPECT_EQ(embedded().classical_physical, 3);
}

TEST_F(Figure1Test, PerformanceOrderingMatchesPlatforms) {
  EXPECT_GT(server().mips, mobile().mips);
  EXPECT_GT(mobile().mips, embedded().mips);
  EXPECT_GT(server().performance, embedded().performance);
}

TEST_F(Figure1Test, EnergyBudgetTightensTowardEmbedded) {
  EXPECT_GT(server().nj_per_instruction, mobile().nj_per_instruction);
  EXPECT_GT(mobile().nj_per_instruction, embedded().nj_per_instruction);
  EXPECT_GT(embedded().energy_budget, server().energy_budget);
}

TEST_F(Figure1Test, ProbesCarryEvidence) {
  // Server: everything microarchitectural works.
  for (const auto& probe : server().uarch_probes) {
    EXPECT_TRUE(probe.succeeded) << probe.name << ": " << probe.detail;
  }
  // Mobile: Spectre yes, Meltdown no.
  bool spectre_ok = false, meltdown_ok = true;
  for (const auto& probe : mobile().uarch_probes) {
    if (probe.name == "Spectre-PHT") {
      spectre_ok = probe.succeeded;
    }
    if (probe.name == "Meltdown") {
      meltdown_ok = probe.succeeded;
    }
  }
  EXPECT_TRUE(spectre_ok);
  EXPECT_FALSE(meltdown_ok);
  // Embedded: nothing applicable.
  for (const auto& probe : embedded().uarch_probes) {
    EXPECT_FALSE(probe.applicable) << probe.name;
  }
}

TEST_F(Figure1Test, RenderProducesAllRows) {
  const std::string rendered = core::render_figure1(columns());
  for (const char* row : {"remote attacks", "local attacks", "classical physical attacks",
                          "microarchitectural attacks", "performance", "energy budget"}) {
    EXPECT_NE(rendered.find(row), std::string::npos) << row;
  }
}

TEST(ArchMatrix, SgxAssessmentMatchesTraits) {
  sim::Machine machine(sim::MachineProfile::server(), 6);
  arch::Sgx sgx(machine);
  tee::EnclaveImage image;
  image.name = "probe";
  image.code = {1};
  image.secret = {'x', 'y', 'z', 'w'};
  const auto id = sgx.create_enclave(image).value;
  const tee::EnclaveInfo* info = sgx.enclave(id);

  const auto assessment = core::assess_architecture(
      sgx, info->base + 1, {'x', 'y', 'z', 'w'}, [&machine, info]() {
        auto aspace = machine.create_address_space();
        aspace.map(0x70000000, sim::page_base(info->base), sim::pte::kUser);
        machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                      aspace.root(), 9);
        return machine.cpu(0).mmu().translate(0x70000000, sim::AccessType::kRead).fault !=
               sim::Fault::kNone;
      });

  EXPECT_EQ(assessment.enclaves_created, 3);
  EXPECT_TRUE(assessment.attestation_verified);
  EXPECT_EQ(assessment.dma, core::DmaProbeOutcome::kCiphertextOnly);
  EXPECT_TRUE(assessment.isolation_enforced);
}

TEST(ArchMatrix, SmartAssessmentShowsTheGaps) {
  sim::Machine machine(sim::MachineProfile::embedded(), 7);
  arch::Smart smart(machine);
  const auto key = smart.report_verification_key();
  const auto assessment = core::assess_architecture(
      smart, smart.key_phys(), key, [&smart]() {
        return smart.try_key_access(0x80000) != sim::Fault::kNone;
      });
  EXPECT_EQ(assessment.enclaves_created, 0);
  EXPECT_EQ(assessment.capacity_stop, tee::EnclaveError::kUnsupported);
  EXPECT_TRUE(assessment.attestation_verified);
  EXPECT_EQ(assessment.dma, core::DmaProbeOutcome::kLeakedPlaintext)
      << "DMA is outside SMART's threat model";
  EXPECT_TRUE(assessment.isolation_enforced) << "the PC gate itself holds";
}

TEST(ArchMatrix, SanctumAssessmentBlocksDma) {
  sim::Machine machine(sim::MachineProfile::server(), 8);
  arch::Sanctum sanctum(machine);
  tee::EnclaveImage image;
  image.name = "probe";
  image.code = {1};
  image.secret = {'q'};
  const auto id = sanctum.create_enclave(image).value;
  const tee::EnclaveInfo* info = sanctum.enclave(id);
  const auto assessment =
      core::assess_architecture(sanctum, info->base + 1, {'q'}, nullptr);
  EXPECT_EQ(assessment.dma, core::DmaProbeOutcome::kBlocked);
  EXPECT_TRUE(assessment.attestation_verified);
}

TEST(ArchMatrix, RenderContainsEveryArchitecture) {
  std::vector<core::ArchitectureAssessment> rows(2);
  rows[0].traits.name = "Intel SGX";
  rows[1].traits.name = "SMART";
  const std::string rendered = core::render_matrix(rows);
  EXPECT_NE(rendered.find("Intel SGX"), std::string::npos);
  EXPECT_NE(rendered.find("SMART"), std::string::npos);
}

}  // namespace
