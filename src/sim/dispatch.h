// Dispatch-backend selection for the CPU commit loop.
//
// Two interpreters execute committed instructions:
//  * kUops — the predecoded micro-op core (sim/dispatch.cpp): computed-goto
//    threaded dispatch on GCC/Clang (plain switch elsewhere), plus a fetch
//    memo that replays TLB/L1I hit side effects for already-seen pcs
//    without re-entering the MMU and bus layers. The default.
//  * kSwitch — the original per-step decode interpreter (Cpu::step), kept
//    fully intact both as the portability fallback and as the reference
//    half of differential testing: the conformance fuzzer runs the same
//    corpus under both backends and diffs the full architectural and
//    microarchitectural outcome.
//
// Selection: HWSEC_DISPATCH=uops|switch in the environment (read once per
// process), overridable per Cpu via set_dispatch_backend for tests and
// per-backend benchmark rows.
#pragma once

#include <string>

namespace hwsec::sim {

enum class DispatchBackend : std::uint8_t {
  kUops,
  kSwitch,
};

std::string to_string(DispatchBackend backend);

/// Backend selected by HWSEC_DISPATCH (default kUops; unknown values fall
/// back to kUops). Resolved once and cached for the process lifetime.
DispatchBackend dispatch_backend_from_env();

}  // namespace hwsec::sim
