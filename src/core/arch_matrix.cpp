#include "core/arch_matrix.h"

#include <iomanip>
#include <sstream>

#include "arch/domains.h"
#include "sim/dma.h"

namespace hwsec::core {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

std::string to_string(DmaProbeOutcome o) {
  switch (o) {
    case DmaProbeOutcome::kLeakedPlaintext: return "leaked-plaintext";
    case DmaProbeOutcome::kCiphertextOnly: return "ciphertext-only";
    case DmaProbeOutcome::kBlocked: return "blocked";
    case DmaProbeOutcome::kNotProbed: return "not-probed";
  }
  return "?";
}

ArchitectureAssessment assess_architecture(tee::Architecture& arch,
                                           sim::PhysAddr secret_phys,
                                           const std::vector<std::uint8_t>& secret,
                                           const std::function<bool()>& isolation_check) {
  ArchitectureAssessment a;
  a.traits = arch.traits();

  // --- capacity probe ----------------------------------------------------
  std::vector<tee::EnclaveId> created;
  for (int i = 0; i < 3; ++i) {
    tee::EnclaveImage image;
    image.name = "capacity-probe-" + std::to_string(i);
    image.code = {static_cast<std::uint8_t>(i), 0x42};
    const auto r = arch.create_enclave(image);
    if (!r.ok()) {
      a.capacity_stop = r.error;
      break;
    }
    created.push_back(r.value);
    ++a.enclaves_created;
  }
  for (const tee::EnclaveId id : created) {
    arch.destroy_enclave(id);
  }

  // --- attestation probe ---------------------------------------------------
  tee::Nonce nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i) {
    nonce[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  a.attestation_verified = arch.attestation_round_trip(nonce);

  // --- DMA probe -------------------------------------------------------------
  if (!secret.empty()) {
    sim::DmaDevice device(arch.machine().bus(), hwsec::arch::kUntrustedDeviceDomain,
                          "thunderclap");
    const auto bytes =
        device.exfiltrate(secret_phys, static_cast<std::uint32_t>(secret.size()));
    if (bytes.size() < secret.size()) {
      a.dma = DmaProbeOutcome::kBlocked;
    } else if (std::equal(secret.begin(), secret.end(), bytes.begin())) {
      a.dma = DmaProbeOutcome::kLeakedPlaintext;
    } else {
      a.dma = DmaProbeOutcome::kCiphertextOnly;
    }
  }

  // --- isolation probe ----------------------------------------------------------
  if (isolation_check) {
    a.isolation_enforced = isolation_check();
  }
  return a;
}

std::string render_matrix(const std::vector<ArchitectureAssessment>& rows) {
  std::ostringstream os;
  os << std::left << std::setw(14) << "arch" << std::setw(10) << "class" << std::setw(22)
     << "software TCB" << std::setw(10) << "enclaves" << std::setw(8) << "memenc"
     << std::setw(18) << "DMA probe" << std::setw(20) << "cache defense" << std::setw(8)
     << "attest" << std::setw(10) << "isolated" << "\n";
  os << std::string(120, '-') << "\n";
  const auto short_class = [](sim::DeviceClass c) -> std::string {
    switch (c) {
      case sim::DeviceClass::kServer: return "server";
      case sim::DeviceClass::kMobile: return "mobile";
      case sim::DeviceClass::kEmbedded: return "embedded";
    }
    return "?";
  };
  for (const auto& a : rows) {
    std::string capacity;
    if (a.traits.enclave_capacity == 0) {
      capacity = "none";
    } else if (a.traits.enclave_capacity == 1) {
      capacity = "1";
    } else {
      capacity = "N (" + std::to_string(a.enclaves_created) + "+ ok)";
    }
    os << std::left << std::setw(14) << a.traits.name << std::setw(10)
       << short_class(a.traits.target) << std::setw(22) << to_string(a.traits.tcb)
       << std::setw(10) << capacity << std::setw(8)
       << (a.traits.memory_encryption ? "yes" : "no") << std::setw(18) << to_string(a.dma)
       << std::setw(20) << to_string(a.traits.cache_defense) << std::setw(8)
       << (a.attestation_verified ? "ok" : "-") << std::setw(10)
       << (a.isolation_enforced ? "yes" : "NO") << "\n";
  }
  return os.str();
}

}  // namespace hwsec::core
