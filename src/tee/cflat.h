// Control-flow attestation in the style of C-FLAT (Abera et al., the
// paper's [1] — the same work its adversary classification builds on).
//
// Static attestation (SMART & friends) proves WHAT code is loaded;
// C-FLAT proves HOW it executed: the prover hash-chains every committed
// control-flow transfer into a path digest and MACs it with the platform
// key. The verifier, who knows the program's CFG, precomputes the
// digests of legal paths; a control-flow hijack — even one that executes
// only legitimate instructions, like ROP — produces a digest outside
// that set.
//
// The monitor rides the simulator CPU's control-flow hook, standing in
// for C-FLAT's instrumented trampolines / hardware tracing.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sha256.h"
#include "sim/cpu.h"
#include "tee/attestation.h"

namespace hwsec::tee {

/// Records the control-flow path of one measured execution.
class CflatMonitor {
 public:
  /// Attaches to `cpu`; transfers are recorded between begin() and end().
  explicit CflatMonitor(hwsec::sim::Cpu& cpu);
  ~CflatMonitor();

  CflatMonitor(const CflatMonitor&) = delete;
  CflatMonitor& operator=(const CflatMonitor&) = delete;

  /// Starts a fresh measurement.
  void begin();

  /// Finishes and returns the path digest: H(... H(H(seed ‖ e1) ‖ e2) ...)
  /// over the (from, to) transfer sequence.
  hwsec::crypto::Sha256Digest end();

  std::uint64_t transfers_recorded() const { return transfers_; }

 private:
  void on_transfer(hwsec::sim::VirtAddr from, hwsec::sim::VirtAddr to);

  hwsec::sim::Cpu* cpu_;
  bool active_ = false;
  hwsec::crypto::Sha256Digest running_{};
  std::uint64_t transfers_ = 0;
};

/// Prover-side report: the path digest MACed with the platform key,
/// bound to a verifier nonce (same report format as static attestation,
/// with the path digest in the measurement field).
AttestationReport attest_path(std::span<const std::uint8_t> platform_key,
                              const hwsec::crypto::Sha256Digest& path_digest,
                              const Nonce& nonce);

/// Verifier-side check: report authenticity + membership of the attested
/// path in the set of known-legal path digests.
bool verify_path(std::span<const std::uint8_t> platform_key, const AttestationReport& report,
                 const Nonce& nonce,
                 const std::vector<hwsec::crypto::Sha256Digest>& legal_paths);

}  // namespace hwsec::tee
