#include "conformance/differ.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "conformance/reference.h"
#include "crypto/sha256.h"

namespace hwsec::conformance {

namespace sim = hwsec::sim;

namespace {

constexpr std::size_t kMaxMismatches = 12;
constexpr sim::Word kProbeSentinel = 0x51E11u;

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

bool has_secret_prefix(sim::Word w) { return (w & 0xFFFF0000u) == 0xA5EC0000u; }

void note(TrialVerdict& v, std::string msg) {
  v.diverged = true;
  if (v.mismatches.size() < kMaxMismatches) {
    v.mismatches.push_back(std::move(msg));
  }
}

void note_invariant(TrialVerdict& v, std::string msg) {
  v.invariant_violated = true;
  if (v.mismatches.size() < kMaxMismatches) {
    v.mismatches.push_back(std::move(msg));
  }
}

sim::Program halt_stub_program(const EnvSpec& spec) {
  sim::Program p;
  p.base = spec.halt_stub;
  p.code.push_back(sim::Instruction{.op = sim::Opcode::kHalt});
  return p;
}

std::uint32_t read32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

/// SHA-256 over the measured region as the attestation engine would see it:
/// word-wise, after undoing the MEE transform.
template <typename Read32>
std::array<std::uint8_t, 32> measure_region(const EnvSpec& spec, Read32&& read32) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(spec.measured_end - spec.measured_start);
  for (sim::PhysAddr a = spec.measured_start; a < spec.measured_end; a += 4) {
    sim::Word w = read32(a);
    if (spec.in_mee(a)) {
      w = mee_word(a, w);
    }
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }
  return crypto::Sha256::hash(bytes);
}

ArchContext build_arch_context(FuzzArch arch) {
  ArchContext ctx;
  ctx.spec = make_env_spec(arch);
  ctx.profile = fuzz_machine_profile(arch);
  // The baseline DRAM image is seed-independent: a Machine's seed feeds
  // only its RNG and glitch injector, and install_env writes the same
  // bytes for every trial of an arch.
  sim::Machine machine(ctx.profile, /*seed=*/1);
  MachineRunLog log;
  ctx.secret_frame = install_env(machine, ctx.spec, log);
  const auto raw = std::as_const(machine.memory()).raw();
  ctx.baseline.assign(raw.begin(), raw.end());
  ctx.baseline_measurement = measure_region(
      ctx.spec, [&](sim::PhysAddr a) { return read32_le(ctx.baseline.data() + a); });
  return ctx;
}

void diff_faults(TrialVerdict& v, const std::vector<FaultRecord>& machine,
                 const std::vector<FaultRecord>& oracle) {
  if (machine == oracle) {
    return;
  }
  std::string msg = "fault log differs: machine has " + std::to_string(machine.size()) +
                    " records, oracle " + std::to_string(oracle.size());
  const std::size_t n = std::min(machine.size(), oracle.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(machine[i] == oracle[i])) {
      msg += "; first divergent record #" + std::to_string(i) + ": machine {" +
             sim::to_string(machine[i].fault) + " pc=" + hex(machine[i].pc) +
             " addr=" + hex(machine[i].addr) + " " + sim::to_string(machine[i].type) +
             "} oracle {" + sim::to_string(oracle[i].fault) + " pc=" + hex(oracle[i].pc) +
             " addr=" + hex(oracle[i].addr) + " " + sim::to_string(oracle[i].type) + "}";
      break;
    }
  }
  note(v, std::move(msg));
}

/// Directed deny-is-fault probe: from the normal context, a load of the
/// enclave-owned secret page must fault — and must not succeed with a
/// zeroed (or any) value. Runs after the diff, so the extra faults and
/// register writes it produces perturb nothing that is still compared.
void probe_secret_denial(TrialVerdict& v, const EnvSpec& spec, sim::Machine& machine,
                         MachineRunLog& log) {
  sim::Cpu& cpu = machine.cpu(0);
  cpu.switch_context(spec.normal.domain, spec.normal.priv, spec.page_root, spec.normal.asid);
  const std::size_t faults_before = log.faults.size();

  sim::Program probe;
  probe.base = spec.halt_stub + 16;  // inside the executable halt-stub page.
  probe.code = {
      sim::Instruction{.op = sim::Opcode::kLoadImm, .rd = sim::R11,
                       .imm = static_cast<std::int64_t>(spec.secret_base)},
      sim::Instruction{.op = sim::Opcode::kLoadImm, .rd = sim::R12, .imm = kProbeSentinel},
      sim::Instruction{.op = sim::Opcode::kLoad, .rd = sim::R12, .rs1 = sim::R11},
      sim::Instruction{.op = sim::Opcode::kHalt},
  };
  cpu.load_program(probe);
  cpu.run_from(probe.base, 16);

  const bool faulted = log.faults.size() > faults_before;
  const sim::Word got = cpu.reg(sim::R12);
  if (!faulted) {
    if (got == 0) {
      note_invariant(v, "secret-page deny is silent zero: probe load from " +
                            hex(spec.secret_base) + " succeeded with value 0");
    } else {
      note_invariant(v, "cross-domain read of enclave-owned page allowed: probe load from " +
                            hex(spec.secret_base) + " returned " + hex(got));
    }
    if (has_secret_prefix(got)) {
      v.secret_leak = true;
    }
  } else if (got != kProbeSentinel) {
    note_invariant(v, "secret-page probe faulted but still produced a value: " + hex(got));
    if (has_secret_prefix(got)) {
      v.secret_leak = true;
    }
  }
}

}  // namespace

const ArchContext& arch_context(FuzzArch arch) {
  static const std::array<ArchContext, std::size(kAllFuzzArchs)> contexts = [] {
    std::array<ArchContext, std::size(kAllFuzzArchs)> all{};
    for (std::size_t i = 0; i < std::size(kAllFuzzArchs); ++i) {
      all[i] = build_arch_context(kAllFuzzArchs[i]);
    }
    return all;
  }();
  return contexts[static_cast<std::size_t>(arch)];
}

TrialVerdict run_case(const ArchContext& arch, const GeneratedCase& test, std::uint64_t seed,
                      core::MachinePool* pool, MachineVariant variant, BugInjection inject) {
  const EnvSpec& spec = arch.spec;
  TrialVerdict v;
  v.arch = spec.arch;
  v.seed = seed;

  // Oracle run against the shared immutable baseline.
  ReferenceInterpreter ref(spec, arch.baseline,
                           {halt_stub_program(spec), test.normal, test.enclave});
  const ReferenceResult oracle = ref.run(spec.code_base, kTrialBudget);

  // Machine run. Pooled machines are bit-identical to fresh construction;
  // the fuzzer runs both variants to keep that claim under test.
  core::MachineLease lease = core::acquire_machine(
      variant == MachineVariant::kFresh ? nullptr : pool, arch.profile, seed);
  sim::Machine& machine = *lease;
  MachineRunLog log;
  install_env(machine, spec, log, inject);
  sim::Cpu& cpu = machine.cpu(0);
  cpu.load_program(test.normal);
  cpu.load_program(test.enclave);
  const sim::RunResult run = cpu.run_from(spec.code_base, kTrialBudget);

  // ---- architectural diff ----------------------------------------------
  for (std::uint32_t r = 1; r < sim::kNumRegs; ++r) {
    const sim::Word mv = cpu.reg(static_cast<sim::Reg>(r));
    const sim::Word ov = oracle.regs[r];
    if (mv != ov) {
      std::string msg = "r";
      msg += std::to_string(r);
      msg += ": machine=" + hex(mv) + " oracle=" + hex(ov);
      note(v, std::move(msg));
      if (has_secret_prefix(mv)) {
        v.secret_leak = true;
      }
    }
  }
  if (cpu.pc() != oracle.pc) {
    note(v, "pc: machine=" + hex(cpu.pc()) + " oracle=" + hex(oracle.pc));
  }
  if (run.halted != oracle.halted) {
    std::string msg = "halted: machine=";
    msg += run.halted ? "yes" : "no";
    msg += " oracle=";
    msg += oracle.halted ? "yes" : "no";
    note(v, std::move(msg));
  }
  if (run.executed != oracle.executed) {
    note(v, "executed: machine=" + std::to_string(run.executed) + " oracle=" +
                std::to_string(oracle.executed));
  }
  if (cpu.domain() != oracle.final_domain) {
    note(v, "final domain: machine=" + std::to_string(cpu.domain()) + " oracle=" +
                std::to_string(oracle.final_domain));
  }
  if (cpu.privilege() != oracle.final_priv) {
    note(v, "final privilege: machine=" + sim::to_string(cpu.privilege()) + " oracle=" +
                sim::to_string(oracle.final_priv));
  }
  if (log.leak_hash != oracle.leak_hash) {
    note(v, "leak-trace hash: machine=" + hex(log.leak_hash) + " oracle=" +
                hex(oracle.leak_hash));
  }
  diff_faults(v, log.faults, oracle.faults);

  // ---- memory diff: every DRAM page vs baseline-or-overlay -------------
  const auto dram = std::as_const(machine.memory()).raw();
  const ShadowMemory& omem = ref.memory();
  const std::uint32_t pages = static_cast<std::uint32_t>(dram.size()) / sim::kPageSize;
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::uint8_t* mp = dram.data() + static_cast<std::size_t>(p) * sim::kPageSize;
    const std::span<const std::uint8_t> op = omem.page(p);
    if (std::memcmp(mp, op.data(), sim::kPageSize) == 0) {
      continue;
    }
    for (std::uint32_t off = 0; off < sim::kPageSize; off += 4) {
      const sim::Word mw = read32_le(mp + off);
      const sim::Word ow = read32_le(op.data() + off);
      if (mw != ow) {
        const sim::PhysAddr addr = p * sim::kPageSize + off;
        note(v, "memory at " + hex(addr) + ": machine=" + hex(mw) + " oracle=" + hex(ow));
        if (has_secret_prefix(mw)) {
          v.secret_leak = true;
        }
        break;  // first divergent word per page is enough detail.
      }
    }
  }

  // ---- attestation-measurement invariant --------------------------------
  const auto machine_meas =
      measure_region(spec, [&](sim::PhysAddr a) { return read32_le(dram.data() + a); });
  const auto oracle_meas = measure_region(spec, [&](sim::PhysAddr a) { return omem.read32(a); });
  if (machine_meas != oracle_meas) {
    note_invariant(v, "attestation measurement diverged between machine and oracle");
  }
  if (!oracle.enclave_wrote_measured && machine_meas != arch.baseline_measurement) {
    note_invariant(v, "attestation measurement moved without an enclave write");
  }

  // ---- deny-is-fault invariant ------------------------------------------
  probe_secret_denial(v, spec, machine, log);

  return v;
}

TrialVerdict run_trial(FuzzArch arch, std::uint64_t seed, core::MachinePool* pool,
                       MachineVariant variant, BugInjection inject) {
  const ArchContext& ctx = arch_context(arch);
  return run_case(ctx, generate_case(ctx.spec, seed), seed, pool, variant, inject);
}

}  // namespace hwsec::conformance
