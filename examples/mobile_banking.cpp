// Scenario: a mobile banking app protecting its transaction-signing key —
// the §3.2 motivation ("protecting sensitive user-space code on mobile
// devices based on ARM TrustZone").
//
// Three deployments of the same AES-based signing service on the same
// phone-class machine:
//   (a) plain app in normal-world memory       -> Prime+Probe steals the key;
//   (b) TrustZone trusted app                  -> needs the vendor's blessing,
//       and TruSpy-style cache probing still works;
//   (c) Sanctuary app                          -> no vendor gatekeeping, and
//       the cache exclusion defense blinds the attacker.
//
// Build & run:   ./build/examples/mobile_banking
#include <iostream>

#include "arch/sanctuary.h"
#include "arch/trustzone.h"
#include "attacks/cache/cache_attacks.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kSigningKey = {0x13, 0x37, 0xc0, 0xde, 0xba, 0x5e, 0xba, 0x11,
                                    0x0f, 0xf1, 0xce, 0x00, 0x12, 0x34, 0x56, 0x78};

std::uint32_t attack(sim::Machine& machine, const attacks::TableLayout& layout,
                     const attacks::VictimFn& victim) {
  attacks::CacheAttackConfig config;
  config.trials = 500;
  const auto result = attacks::prime_probe_attack(machine, layout, victim, config);
  return result.correct_nibbles(kSigningKey);
}

void report(const std::string& deployment, std::uint32_t nibbles) {
  std::cout << "  " << deployment << ": attacker recovered " << nibbles
            << "/16 key nibbles -> " << (nibbles >= 12 ? "KEY COMPROMISED" : "key safe")
            << "\n";
}

}  // namespace

int main() {
  std::cout << "A malware app on the same phone runs LLC Prime+Probe against the\n"
               "banking app's transaction-signing service.\n\n";

  {  // (a) plain app.
    sim::Machine machine(sim::MachineProfile::mobile(), 7001);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    attacks::AesCacheVictim victim(machine, 1, 7, tables, kSigningKey);
    report("plain app (no TEE)      ",
           attack(machine, victim.layout(),
                  [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }));
  }

  {  // (b) TrustZone TA.
    sim::Machine machine(sim::MachineProfile::mobile(), 7002);
    arch::TrustZone tz(machine);

    // First pain: deployment needs the device vendor's signature.
    tee::EnclaveImage identity;
    identity.name = "aes-service";
    identity.code = {0xAE, 0x50};
    identity.heap_pages = 2;
    const auto unsigned_attempt = tz.create_enclave(identity);
    std::cout << "  TrustZone, unsigned TA  : deployment "
              << tee::to_string(unsigned_attempt.error)
              << " (the vendor trust relationship the paper calls costly)\n";
    tz.vendor_sign(identity);

    attacks::EnclaveAesVictim victim(tz, kSigningKey, 0);
    report("TrustZone TA (signed)   ",
           attack(machine, victim.layout(),
                  [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }));
  }

  {  // (c) Sanctuary app.
    sim::Machine machine(sim::MachineProfile::mobile(), 7003);
    arch::Sanctuary sanctuary(machine);
    attacks::EnclaveAesVictim victim(sanctuary, kSigningKey, 1);
    report("Sanctuary app           ",
           attack(machine, victim.layout(),
                  [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }));

    // And the deployment story: no vendor in the loop, attestation works.
    tee::Nonce nonce{};
    nonce[3] = 0x77;
    std::cout << "  Sanctuary deployment    : no vendor signature needed; attestation "
              << (sanctuary.attestation_round_trip(nonce) ? "verifies" : "FAILS") << "\n";
  }

  std::cout << "\nShape of the result (paper §3.2/§4.1): TrustZone's single secure world\n"
               "neither scales to third-party apps nor defends the cache side channel;\n"
               "Sanctuary provides unlimited user-space enclaves on the same silicon and\n"
               "its cache-exclusion defense blinds the probing malware.\n";
  return 0;
}
