// Common enclave abstractions shared by every architecture model.
//
// An EnclaveImage is what a developer ships: named code + initial data.
// The *code bytes are measured* (hashed into the enclave identity) while
// the secret bytes model provisioned secrets (keys) living in enclave
// memory at runtime — the asset every attack in this framework is after.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "sim/types.h"

namespace hwsec::tee {

using EnclaveId = std::uint32_t;
inline constexpr EnclaveId kInvalidEnclave = 0;

struct EnclaveImage {
  std::string name;
  std::vector<std::uint8_t> code;    ///< measured content.
  std::vector<std::uint8_t> secret;  ///< provisioned secret data (not measured).
  std::uint32_t heap_pages = 1;      ///< additional zeroed pages.
};

/// SHA-256 over the image's measured content (code + name + layout),
/// the MRENCLAVE analogue.
hwsec::crypto::Sha256Digest measure_image(const EnclaveImage& image);

enum class EnclaveError : std::uint8_t {
  kOk,
  kUnsupported,        ///< architecture has no such capability.
  kCapacityExceeded,   ///< e.g. TrustZone's single secure world.
  kOutOfMemory,        ///< EPC / secure RAM exhausted.
  kNoSuchEnclave,
  kNotInitialized,
  kConfigLocked,       ///< TrustLite: regions are static after boot.
  kVerificationFailed, ///< secure boot signature / measurement mismatch.
};

std::string to_string(EnclaveError e);

/// Runtime handle state for a created enclave.
struct EnclaveInfo {
  EnclaveId id = kInvalidEnclave;
  std::string name;
  hwsec::crypto::Sha256Digest measurement{};
  hwsec::sim::DomainId domain = hwsec::sim::kDomainNormal;
  hwsec::sim::PhysAddr base = 0;   ///< first owned frame.
  std::uint32_t pages = 0;
  /// Distance between consecutive owned frames, in pages. 1 = contiguous;
  /// Sanctum's page-coloring allocator hands out every num_colors-th
  /// frame so all enclave frames share one LLC color.
  std::uint32_t stride_pages = 1;
  bool initialized = false;

  /// Physical address of a byte offset within the enclave's (possibly
  /// strided) memory.
  hwsec::sim::PhysAddr phys_of(std::uint32_t offset) const {
    const std::uint32_t page = offset / hwsec::sim::kPageSize;
    return base + page * stride_pages * hwsec::sim::kPageSize +
           (offset & hwsec::sim::kPageOffsetMask);
  }
};

}  // namespace hwsec::tee
