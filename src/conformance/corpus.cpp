#include "conformance/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace hwsec::conformance {

namespace sim = hwsec::sim;

namespace {

const char* cond_name(sim::BranchCond c) {
  switch (c) {
    case sim::BranchCond::kEq: return "eq";
    case sim::BranchCond::kNe: return "ne";
    case sim::BranchCond::kLt: return "lt";
    case sim::BranchCond::kGe: return "ge";
    case sim::BranchCond::kLtu: return "ltu";
    case sim::BranchCond::kGeu: return "geu";
  }
  return "eq";
}

const std::unordered_map<std::string, sim::Opcode>& opcode_table() {
  static const std::unordered_map<std::string, sim::Opcode> table = [] {
    std::unordered_map<std::string, sim::Opcode> t;
    // kRdCycle is deliberately absent: a corpus program must stay
    // oracle-predictable.
    for (int op = 0; op <= static_cast<int>(sim::Opcode::kEcall); ++op) {
      const auto code = static_cast<sim::Opcode>(op);
      if (code != sim::Opcode::kRdCycle) {
        t.emplace(sim::to_string(code), code);
      }
    }
    return t;
  }();
  return table;
}

const std::unordered_map<std::string, sim::BranchCond>& cond_table() {
  static const std::unordered_map<std::string, sim::BranchCond> table = {
      {"eq", sim::BranchCond::kEq},   {"ne", sim::BranchCond::kNe},
      {"lt", sim::BranchCond::kLt},   {"ge", sim::BranchCond::kGe},
      {"ltu", sim::BranchCond::kLtu}, {"geu", sim::BranchCond::kGeu},
  };
  return table;
}

std::string imm_to_string(std::int64_t imm) {
  if (imm >= -4096 && imm < 4096) {
    return std::to_string(imm);
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(imm));
  return buf;
}

void serialize_program(std::ostringstream& out, const char* name, const sim::Program& p) {
  char base[24];
  std::snprintf(base, sizeof base, "0x%x", p.base);
  out << "program " << name << ' ' << base << '\n';
  for (const sim::Instruction& inst : p.code) {
    out << sim::to_string(inst.op) << " r" << static_cast<int>(inst.rd) << " r"
        << static_cast<int>(inst.rs1) << " r" << static_cast<int>(inst.rs2) << ' '
        << cond_name(inst.cond) << ' ' << imm_to_string(inst.imm) << '\n';
  }
}

sim::Reg parse_reg(const std::string& tok) {
  if (tok.size() < 2 || tok[0] != 'r') {
    throw std::invalid_argument("corpus: bad register token '" + tok + "'");
  }
  const int n = std::stoi(tok.substr(1));
  if (n < 0 || n >= static_cast<int>(sim::kNumRegs)) {
    throw std::invalid_argument("corpus: register out of range '" + tok + "'");
  }
  return static_cast<sim::Reg>(n);
}

std::int64_t parse_imm(const std::string& tok) {
  // Hex immediates serialize as the raw 64-bit pattern; reinterpret so a
  // round-trip of a negative value is exact.
  if (tok.rfind("0x", 0) == 0 || tok.rfind("-0x", 0) == 0) {
    return static_cast<std::int64_t>(std::stoull(tok, nullptr, 16));
  }
  return std::stoll(tok, nullptr, 10);
}

}  // namespace

std::string serialize_corpus(FuzzArch arch, const GeneratedCase& test) {
  std::ostringstream out;
  out << "# hwsec conformance corpus (minimized failing case)\n";
  out << "arch " << to_string(arch) << '\n';
  serialize_program(out, "normal", test.normal);
  serialize_program(out, "enclave", test.enclave);
  return out.str();
}

CorpusCase parse_corpus(const std::string& text) {
  CorpusCase out;
  bool saw_arch = false;
  sim::Program* current = nullptr;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head[0] == '#') {
      continue;
    }
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("corpus line " + std::to_string(lineno) + ": " + why);
    };
    if (head == "arch") {
      std::string name;
      if (!(tokens >> name)) {
        fail("missing architecture name");
      }
      out.arch = fuzz_arch_from_string(name);
      saw_arch = true;
    } else if (head == "program") {
      std::string which;
      std::string base;
      if (!(tokens >> which >> base)) {
        fail("program header needs '<name> <base>'");
      }
      if (which == "normal") {
        current = &out.test.normal;
      } else if (which == "enclave") {
        current = &out.test.enclave;
      } else {
        fail("unknown program name '" + which + "'");
      }
      current->base = static_cast<sim::VirtAddr>(std::stoull(base, nullptr, 0));
      current->code.clear();
    } else {
      if (current == nullptr) {
        fail("instruction before any 'program' header");
      }
      const auto op = opcode_table().find(head);
      if (op == opcode_table().end()) {
        fail("unknown or rejected opcode '" + head + "'");
      }
      std::string rd;
      std::string rs1;
      std::string rs2;
      std::string cond;
      std::string imm;
      if (!(tokens >> rd >> rs1 >> rs2 >> cond >> imm)) {
        fail("instruction needs 6 fields: <op> <rd> <rs1> <rs2> <cond> <imm>");
      }
      const auto c = cond_table().find(cond);
      if (c == cond_table().end()) {
        fail("unknown branch condition '" + cond + "'");
      }
      current->code.push_back(sim::Instruction{.op = op->second,
                                               .rd = parse_reg(rd),
                                               .rs1 = parse_reg(rs1),
                                               .rs2 = parse_reg(rs2),
                                               .imm = parse_imm(imm),
                                               .cond = c->second});
    }
  }
  if (!saw_arch) {
    throw std::invalid_argument("corpus: missing 'arch' line");
  }
  if (out.test.normal.code.empty()) {
    throw std::invalid_argument("corpus: missing or empty 'program normal'");
  }
  return out;
}

CorpusCase load_corpus_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("corpus: cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_corpus(text.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void write_corpus_file(const std::string& path, FuzzArch arch, const GeneratedCase& test) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("corpus: cannot write " + path);
  }
  out << serialize_corpus(arch, test);
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".corpus") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace hwsec::conformance
