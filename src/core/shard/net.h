// Multi-host shard networking: TCP plumbing, host discovery, and the
// connect/handshake protocol.
//
// Discovery is deliberately static — a comma-separated host list
// (`--hosts a:7700,b:7700`, the HWSEC_SHARD_HOSTS environment variable, or
// the `hosts` array in an hwsecd campaign spec). The supervisor dials each
// host (a listening hwsec-shard-worker); workers can equally dial a
// listening supervisor. Either direction, the WORKER always speaks first:
//
//   worker     kHello    wire version, capability bits, the campaign
//                        digest it expects (0 = any), a display name;
//   supervisor kWelcome  campaign digest + the canonical spec JSON that
//                        produced it, plus every execution knob a remote
//                        trial needs to be bit-identical to a local one
//                        (heartbeat period, chaos plan, wall-clock cap);
//           or kReject   a NAMED reason — version skew, digest mismatch,
//                        missing capability — never silence, never UB.
//
// The digest is fnv1a64 over the canonical spec encoding, so "a stale
// worker can never join the wrong run" is enforced twice: the supervisor
// refuses a worker expecting a different campaign, and the worker verifies
// the welcome's spec bytes hash to the digest it was promised.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/resilience/chaos.h"
#include "core/shard/transport.h"
#include "core/shard/wire.h"

namespace hwsec::core::shard {

/// Capability bits a worker announces in kHello. kCapSpecRunner = "I can
/// decode a campaign spec JSON and run catalog trial bodies" — the one
/// capability today's supervisor requires of a remote worker.
inline constexpr std::uint32_t kCapSpecRunner = 1u << 0;

/// Cap on a handshake frame from a not-yet-trusted peer. A hello is a few
/// dozen bytes and a welcome carries one spec JSON document; anything
/// larger is hostile or desynchronized.
inline constexpr std::uint32_t kMaxHandshakePayload = 1u << 20;  // 1 MiB.

// ---- host discovery -----------------------------------------------------

struct HostSpec {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port[,host:port...]" (the --hosts / HWSEC_SHARD_HOSTS
/// syntax). Returns false with a named reason on an empty element, a
/// malformed port, or a hostile host string.
bool parse_hosts(const std::string& list, std::vector<HostSpec>& out, std::string& error);

/// Parses one "host:port" element.
bool parse_host(const std::string& element, HostSpec& out, std::string& error);

/// Hosts from HWSEC_SHARD_HOSTS (empty vector when unset or unparsable;
/// a malformed value is reported through `error`).
std::vector<HostSpec> hosts_from_env(std::string& error);

// ---- TCP plumbing -------------------------------------------------------

/// Connects to host:port with a bounded wait. Returns the connected fd or
/// -1 with a named reason ("connect(host:port): ...").
int tcp_connect(const HostSpec& host, std::chrono::milliseconds timeout, std::string& error);

/// Binds + listens on address:port (port 0 = kernel-assigned). Returns the
/// listening fd or -1 with a named reason.
int tcp_listen(const std::string& address, std::uint16_t port, std::string& error);

/// The locally bound port of a listening fd (after tcp_listen with port 0).
std::uint16_t tcp_local_port(int listen_fd);

/// Accepts one pending connection; -1 when none is pending (the listening
/// fd is non-blocking) or on error.
int tcp_accept(int listen_fd);

// ---- handshake payloads -------------------------------------------------

struct HelloPayload {
  std::uint16_t wire_version = kWireVersion;
  std::uint32_t capabilities = kCapSpecRunner;
  /// Campaign digest this worker will accept; 0 = join whatever campaign
  /// the supervisor offers. A worker restarted from an old run pins the
  /// old digest and is rejected by name instead of polluting a new run.
  std::uint64_t expect_digest = 0;
  std::string worker_name;
};

struct WelcomePayload {
  std::uint64_t campaign_digest = 0;  ///< fnv1a64 of spec_json.
  std::string spec_json;              ///< canonical CampaignSpec encoding.
  std::uint32_t heartbeat_ms = 25;
  std::uint32_t wall_clock_timeout_ms = 0;
  ChaosConfig chaos;  ///< full chaos plan: remote dice must equal local dice.
};

struct RejectPayload {
  std::string reason;
};

std::string encode_hello(const HelloPayload& p);
bool decode_hello(const std::string& payload, HelloPayload& out);

std::string encode_welcome(const WelcomePayload& p);
bool decode_welcome(const std::string& payload, WelcomePayload& out);

std::string encode_reject(const RejectPayload& p);
bool decode_reject(const std::string& payload, RejectPayload& out);

// ---- handshake protocol -------------------------------------------------

/// What the supervisor offers a connecting worker.
struct RemoteCampaignInfo {
  std::string spec_json;
  std::uint64_t digest = 0;  ///< fnv1a64(spec_json); computed by the caller.
  std::uint32_t heartbeat_ms = 25;
  std::uint32_t wall_clock_timeout_ms = 0;
  ChaosConfig chaos;
};

/// Supervisor side: waits for kHello, validates version / capability /
/// expected digest, answers kWelcome on success or kReject (with the same
/// named reason returned in `error`) on refusal. False also covers a
/// corrupt or timed-out handshake stream.
bool handshake_accept(Transport& transport, const RemoteCampaignInfo& info,
                      std::chrono::milliseconds timeout, HelloPayload& hello_out,
                      std::string& error);

/// Worker side: sends kHello, waits for kWelcome/kReject, and verifies the
/// welcome's spec bytes hash to the promised digest. On any failure the
/// named reason lands in `error`.
bool handshake_connect(Transport& transport, const HelloPayload& hello,
                       std::chrono::milliseconds timeout, WelcomePayload& welcome_out,
                       std::string& error);

}  // namespace hwsec::core::shard
