// Bus firewalls, memory-encryption transforms, and DMA semantics.
#include <gtest/gtest.h>

#include "sim/bus.h"
#include "sim/dma.h"

namespace sim = hwsec::sim;

namespace {

class BusTest : public ::testing::Test {
 protected:
  BusTest()
      : mem_(1 << 20),
        caches_([] {
          sim::HierarchyConfig h;
          h.num_cores = 1;
          return h;
        }()),
        bus_(mem_, caches_) {}

  sim::PhysicalMemory mem_;
  sim::CacheHierarchy caches_;
  sim::Bus bus_;
};

TEST_F(BusTest, ReadWriteRoundTrip) {
  const auto w = bus_.cpu_write(0, 0, sim::Privilege::kSupervisor, 0x1000, 0xCAFEBABE);
  EXPECT_EQ(w.fault, sim::Fault::kNone);
  const auto r = bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000);
  EXPECT_EQ(r.value, 0xCAFEBABEu);
}

TEST_F(BusTest, OutOfDramIsBusError) {
  const auto r = bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x7FFFFFFF);
  EXPECT_EQ(r.fault, sim::Fault::kBusError);
}

TEST_F(BusTest, ChecksVetoByDomain) {
  bus_.add_check([](sim::PhysAddr addr, sim::AccessType, sim::DomainId domain, sim::Privilege,
                    bool) {
    return (addr >= 0x2000 && addr < 0x3000 && domain != 1) ? sim::Fault::kSecurityViolation
                                                            : sim::Fault::kNone;
  });
  EXPECT_EQ(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x2000).fault,
            sim::Fault::kSecurityViolation);
  EXPECT_EQ(bus_.cpu_read(0, 1, sim::Privilege::kSupervisor, 0x2000).fault, sim::Fault::kNone);
}

TEST_F(BusTest, RemovedCheckStopsApplying) {
  const auto id = bus_.add_check([](sim::PhysAddr, sim::AccessType, sim::DomainId,
                                    sim::Privilege, bool) {
    return sim::Fault::kSecurityViolation;
  });
  EXPECT_NE(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000).fault, sim::Fault::kNone);
  bus_.remove_check(id);
  EXPECT_EQ(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000).fault, sim::Fault::kNone);
}

TEST_F(BusTest, TransformEncryptsDramButCpuSeesPlaintext) {
  // XOR "MEE" over [0x4000, 0x5000).
  bus_.set_transform([](sim::PhysAddr addr, sim::Word value, sim::DomainId, bool) {
    if (addr >= 0x4000 && addr < 0x5000) {
      return value ^ 0xA5A5A5A5u;
    }
    return value;
  });
  bus_.cpu_write(0, 0, sim::Privilege::kSupervisor, 0x4000, 0x11111111);
  EXPECT_EQ(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x4000).value, 0x11111111u);
  EXPECT_EQ(mem_.read32(0x4000), 0x11111111u ^ 0xA5A5A5A5u) << "DRAM holds ciphertext";
  // DMA bypasses the transform: ciphertext only.
  EXPECT_EQ(bus_.dma_read(2, 0x4000).value, 0x11111111u ^ 0xA5A5A5A5u);
}

TEST_F(BusTest, PeekAppliesTransformWithoutCacheEffects) {
  bus_.set_transform([](sim::PhysAddr addr, sim::Word value, sim::DomainId, bool) {
    return addr == 0x4000 ? value ^ 0xFFu : value;
  });
  mem_.write32(0x4000, 0x12345678 ^ 0xFF);
  EXPECT_EQ(bus_.peek(0x4000, 0), 0x12345678u);
  EXPECT_FALSE(caches_.in_l1d(0, 0x4000));
}

TEST_F(BusTest, ByteAccessPreservesNeighbors) {
  bus_.cpu_write(0, 0, sim::Privilege::kSupervisor, 0x1000, 0xAABBCCDD);
  bus_.cpu_write8(0, 0, sim::Privilege::kSupervisor, 0x1001, 0x55);
  EXPECT_EQ(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000).value, 0xAABB55DDu);
  EXPECT_EQ(bus_.cpu_read8(0, 0, sim::Privilege::kSupervisor, 0x1003).value, 0xAAu);
}

TEST_F(BusTest, DmaWriteInvalidatesCachedCopies) {
  bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000);  // cache it.
  ASSERT_TRUE(caches_.in_l1d(0, 0x1000));
  bus_.dma_write(2, 0x1000, 0x99999999);
  EXPECT_FALSE(caches_.in_l1d(0, 0x1000)) << "snooping keeps caches coherent";
  EXPECT_EQ(bus_.cpu_read(0, 0, sim::Privilege::kSupervisor, 0x1000).value, 0x99999999u);
}

TEST_F(BusTest, DmaDeviceBlockTransfers) {
  sim::DmaDevice dev(bus_, 2, "test-dev");
  const std::vector<sim::Word> payload = {1, 2, 3, 4};
  EXPECT_EQ(dev.write_block(0x6000, payload).words_done, 4u);
  std::vector<sim::Word> readback(4);
  EXPECT_EQ(dev.read_block(0x6000, readback).words_done, 4u);
  EXPECT_EQ(readback, payload);
}

TEST_F(BusTest, DmaExfiltrationStopsAtFirstVeto) {
  bus_.add_check([](sim::PhysAddr addr, sim::AccessType, sim::DomainId, sim::Privilege,
                    bool is_dma) {
    return (is_dma && addr >= 0x6008) ? sim::Fault::kSecurityViolation : sim::Fault::kNone;
  });
  sim::DmaDevice dev(bus_, 2, "evil");
  mem_.write32(0x6000, 0x41414141);
  mem_.write32(0x6004, 0x42424242);
  const auto bytes = dev.exfiltrate(0x6000, 16);
  EXPECT_EQ(bytes.size(), 8u) << "partial exfiltration up to the veto boundary";
  EXPECT_EQ(bytes[0], 0x41u);
  EXPECT_EQ(bytes[4], 0x42u);
}

}  // namespace
