// E7 — §5 passive side-channel analysis: CPA/DPA traces-to-success against
// AES under the hiding/masking countermeasure taxonomy, plus the Kocher
// timing attack on RSA.
//
// Paper's expected shape:
//   * unprotected implementations fall to DPA/CPA with modest traces;
//   * hiding (noise, random delays) RAISES the trace count (quadratic in
//     noise) but does not stop the attack;
//   * masking removes the first-order dependency entirely;
//   * constant-time software stops timing/cache observation but NOT power;
//   * the Kocher timing attack recovers the private exponent from the
//     naive square-and-multiply and collapses against the Montgomery
//     ladder.
#include <benchmark/benchmark.h>

#include "attacks/physical/power_analysis.h"
#include "attacks/physical/timing_attack.h"
#include "core/campaign.h"
#include "core/capture.h"
#include "core/resilience/resilient.h"
#include "sca/cpa.h"
#include "sca/second_order.h"
#include "sca/streaming.h"
#include "table.h"

namespace attacks = hwsec::attacks;
namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                             0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};

std::uint32_t cpa_bytes(attacks::AesVariant variant, std::size_t traces, double sigma,
                        std::uint32_t jitter, double hiding_sigma, std::uint64_t seed) {
  sca::RecorderConfig rec;
  rec.noise_sigma = sigma;
  rec.hiding_noise_sigma = hiding_sigma;
  rec.max_jitter = jitter;
  rec.seed = seed;
  // Streaming pipeline: batched capture feeds a single-pass accumulator,
  // so trace memory stays at one capture window regardless of `traces`.
  // The batch stream is identical to collect_aes_traces_parallel's, and
  // the finalized scores match the materialized cpa_attack_key to 1e-9
  // (the equivalence gate in bench_sca_streaming/test_sca), so the
  // printed numbers are unchanged from the materialized pipeline's.
  hwsec::core::BatchedCaptureConfig capture;
  capture.seed = seed * 3 + 1;
  capture.total_traces = traces;
  const auto acc = hwsec::core::run_streaming_cpa_campaign(capture, kKey, variant, rec);
  return acc.finalize_key().correct_bytes(kKey);
}

/// Minimum traces (from a geometric sweep) for >= 14/16 bytes.
std::size_t traces_to_success(attacks::AesVariant variant, double sigma, std::uint32_t jitter,
                              double hiding_sigma, std::size_t cap, std::uint64_t seed) {
  for (std::size_t n = 32; n <= cap; n *= 2) {
    if (cpa_bytes(variant, n, sigma, jitter, hiding_sigma, seed) >= 14) {
      return n;
    }
  }
  return 0;  // not reached within cap.
}

std::uint32_t exponent_bits(crypto::u64 d) {
  std::uint32_t bits = 0;
  while (d) {
    d >>= 1;
    ++bits;
  }
  return bits;
}

void BM_Cpa256Traces(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpa_bytes(attacks::AesVariant::kTTable, 256, 1.0, 0, 0.0, 1));
  }
}
BENCHMARK(BM_Cpa256Traces)->Iterations(2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E7a / §5 — CPA traces-to-success vs. countermeasure");
  Table t({"implementation", "countermeasure", "traces to >=14/16", "500-trace bytes"},
          {18, 30, 20, 16});
  t.print_header();
  t.print_row("T-table AES", "none", traces_to_success(attacks::AesVariant::kTTable, 1.0, 0,
                                                       0.0, 8192, 11),
              cpa_bytes(attacks::AesVariant::kTTable, 500, 1.0, 0, 0.0, 11));
  t.print_row("T-table AES", "hiding: +4 sigma noise",
              traces_to_success(attacks::AesVariant::kTTable, 1.0, 0, 4.0, 16384, 12),
              cpa_bytes(attacks::AesVariant::kTTable, 500, 1.0, 0, 4.0, 12));
  t.print_row("T-table AES", "hiding: random delays (j=4)",
              traces_to_success(attacks::AesVariant::kTTable, 1.0, 4, 0.0, 16384, 13),
              cpa_bytes(attacks::AesVariant::kTTable, 500, 1.0, 4, 0.0, 13));
  t.print_row("constant-time AES", "none (power still leaks)",
              traces_to_success(attacks::AesVariant::kConstantTime, 1.0, 0, 0.0, 8192, 14),
              cpa_bytes(attacks::AesVariant::kConstantTime, 500, 1.0, 0, 0.0, 14));
  t.print_row("masked AES", "first-order Boolean masking",
              traces_to_success(attacks::AesVariant::kMasked, 1.0, 0, 0.0, 8192, 15),
              cpa_bytes(attacks::AesVariant::kMasked, 500, 1.0, 0, 0.0, 15));
  // Escalation: a SECOND-order attack (combining the mask-load sample
  // with the S-box samples) re-opens the masked implementation.
  {
    std::size_t needed = 0;
    std::uint32_t bytes_4000 = 0;
    for (std::size_t traces : {500u, 1000u, 2000u, 4000u, 8000u}) {
      sca::RecorderConfig rec;
      rec.noise_sigma = 0.25;
      rec.seed = 16;
      const auto set =
          attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, traces, rec, 49);
      // Streaming second-order accumulator over the same capture stream;
      // ranking matches sca::second_order_cpa_key (equivalence suite).
      sca::StreamingSecondOrderCpa acc(set.traces.front().size(), 1);
      acc.add_batch(set);
      const auto r = acc.finalize_key();
      if (traces == 4000u) {
        bytes_4000 = r.correct_bytes(kKey);
      }
      if (needed == 0 && r.correct_bytes(kKey) >= 14) {
        needed = traces;
      }
    }
    t.print_row("masked AES", "-> 2nd-order CPA (mask sample)", needed, bytes_4000);
  }
  std::cout << "(0 = not reached within the sweep cap; the 2nd-order row shows why\n"
               " masking ORDER matters: first-order masking falls to a bivariate attack)\n";

  hwsec::bench::section("E7b — ablation: measurement noise sigma vs. traces-to-success");
  Table n({"sigma", "traces to >=14/16"}, {8, 20});
  n.print_header();
  {
    // Resilient campaign: one independent trial per noise level, printed
    // in sweep order. A trial that throws only blanks its own row (the
    // sweep keeps going and reports the structured error instead).
    const std::vector<double> sigmas = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
    const auto needed = hwsec::core::run_campaign_resilient<std::size_t>(
        {.seed = 17, .trials = sigmas.size()}, {},
        [&sigmas](const hwsec::core::TrialContext& ctx) {
          const double sigma = sigmas[ctx.index];
          return traces_to_success(attacks::AesVariant::kTTable, sigma, 0, 0.0, 32768,
                                   static_cast<std::uint64_t>(sigma * 100) + 17);
        });
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
      if (needed[i].ok()) {
        n.print_row(sigmas[i], needed[i].value());
      } else {
        n.print_row(sigmas[i], std::string("error: ") + needed[i].error->what());
      }
    }
  }
  std::cout << "(classic SNR scaling: traces grow ~quadratically with noise)\n";

  hwsec::bench::section("E7c / §5 — Kocher timing attack on RSA (64-bit toy modulus)");
  Table k({"victim", "samples", "exponent bits correct", "full d recovered"},
          {28, 10, 22, 16});
  k.print_header();
  hwsec::sim::Rng rng(1812);
  const auto key = crypto::rsa_generate(rng);
  for (const std::size_t samples : {500u, 2000u, 6000u, 12000u}) {
    const auto s = attacks::collect_timing_samples(key, samples, 2.0, false, samples);
    auto r = attacks::timing_attack(key.n, s, exponent_bits(key.d));
    attacks::score_against(r, key.d);
    k.print_row("square-and-multiply (naive)", samples,
                std::to_string(r.bits_correct) + "/" + std::to_string(r.bits_decided),
                r.recovered_d == key.d);
  }
  {
    const auto s = attacks::collect_timing_samples(key, 12000, 2.0, true, 99);
    auto r = attacks::timing_attack(key.n, s, exponent_bits(key.d));
    attacks::score_against(r, key.d);
    k.print_row("Montgomery ladder (const-time)", 12000,
                std::to_string(r.bits_correct) + "/" + std::to_string(r.bits_decided),
                r.recovered_d == key.d);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
