#include "conformance/fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "conformance/corpus.h"
#include "core/campaign.h"
#include "core/obs/metrics.h"

namespace hwsec::conformance {

namespace {

const obs::Counter& trials_counter() {
  static const obs::Counter c = obs::counter("conformance_trials");
  return c;
}

const obs::Counter& divergence_counter() {
  static const obs::Counter c = obs::counter("conformance_divergences");
  return c;
}

}  // namespace

FuzzReport run_fuzz(const FuzzConfig& config) {
  FuzzReport report;
  report.trials = config.trials;
  if (config.trials == 0 || config.archs.empty()) {
    return report;
  }

  core::CampaignConfig campaign;
  campaign.seed = config.seed;
  campaign.trials = config.trials;
  campaign.workers = config.workers;

  const std::function<TrialVerdict(const core::TrialContext&)> body =
      [&config](const core::TrialContext& ctx) {
        const FuzzArch arch = config.archs[ctx.index % config.archs.size()];
        const bool fresh = config.fresh_every != 0 && ctx.index % config.fresh_every == 0;
        TrialVerdict verdict =
            run_trial(arch, ctx.seed, fresh ? nullptr : ctx.machines,
                      fresh ? MachineVariant::kFresh : MachineVariant::kPooled, config.inject);
        trials_counter().add(1);
        if (verdict.failed()) {
          divergence_counter().add(1);
        }
        return verdict;
      };
  std::vector<TrialVerdict> verdicts = core::run_campaign(campaign, body);

  // Post-campaign: count, then shrink the first few failures sequentially.
  for (TrialVerdict& verdict : verdicts) {
    if (!verdict.failed()) {
      continue;
    }
    ++report.divergences;
    if (verdict.secret_leak) {
      ++report.secret_leaks;
    }
    if (report.failures.size() >= config.max_shrunk) {
      continue;
    }
    const ArchContext& arch = arch_context(verdict.arch);
    ShrinkResult shrunk =
        shrink_case(arch, generate_case(arch.spec, verdict.seed), config.inject);
    FuzzFailure failure;
    failure.verdict = std::move(verdict);
    failure.instructions = shrunk.instructions;
    failure.shrunk = std::move(shrunk.test);
    if (!config.corpus_dir.empty()) {
      std::filesystem::create_directories(config.corpus_dir);
      char name[64];
      std::snprintf(name, sizeof name, "%s-seed-%016llx.corpus",
                    to_string(failure.verdict.arch).c_str(),
                    static_cast<unsigned long long>(failure.verdict.seed));
      failure.corpus_path = (std::filesystem::path(config.corpus_dir) / name).string();
      write_corpus_file(failure.corpus_path, failure.verdict.arch, failure.shrunk);
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

TrialVerdict replay_corpus_file(const std::string& path) {
  const CorpusCase c = load_corpus_file(path);
  return run_case(arch_context(c.arch), c.test, /*seed=*/0, /*pool=*/nullptr,
                  MachineVariant::kFresh);
}

FuzzConfig fuzz_config_from_env(FuzzConfig defaults) {
  if (const char* trials = std::getenv("HWSEC_FUZZ_TRIALS")) {
    defaults.trials = static_cast<std::size_t>(std::strtoull(trials, nullptr, 10));
  }
  if (const char* seed = std::getenv("HWSEC_FUZZ_SEED")) {
    defaults.seed = std::strtoull(seed, nullptr, 0);
  }
  if (const char* workers = std::getenv("HWSEC_FUZZ_WORKERS")) {
    defaults.workers = static_cast<unsigned>(std::strtoul(workers, nullptr, 10));
  }
  return defaults;
}

}  // namespace hwsec::conformance
