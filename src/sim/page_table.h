// Two-level page tables stored *inside simulated DRAM*.
//
// Keeping the tables in simulated memory (rather than a host-side map)
// matters for fidelity: the paper's Foreshadow discussion hinges on the
// fact that the untrusted OS owns the page tables and can clear the
// present bit / set reserved bits of enclave pages at will. An OS-level
// adversary in this framework edits PTEs through exactly this interface.
//
// PTE layout (32-bit, x86-flavoured):
//   bit  0: P   present
//   bit  1: W   writable
//   bit  2: U   user-accessible
//   bit  3: X   executable
//   bit  4: RSV reserved (must be zero; abused by the L1TF attack)
//   bits 12-31: physical frame base
//
// Virtual address split: [31:22] level-1 index, [21:12] level-2 index,
// [11:0] page offset. A level-1 entry with P=0 means the whole 4 MiB
// region is unmapped.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/memory.h"
#include "sim/types.h"

namespace hwsec::sim {

namespace pte {
inline constexpr Word kPresent = 1u << 0;
inline constexpr Word kWritable = 1u << 1;
inline constexpr Word kUser = 1u << 2;
inline constexpr Word kExecutable = 1u << 3;
inline constexpr Word kReserved = 1u << 4;
inline constexpr Word kFlagsMask = 0xFFFu;
inline constexpr Word kFrameMask = ~kFlagsMask;

constexpr PhysAddr frame(Word entry) { return entry & kFrameMask; }
}  // namespace pte

/// Decoded translation result produced by a page walk.
struct Translation {
  PhysAddr phys = 0;
  Word flags = 0;       ///< PTE flag bits of the leaf entry.
  PhysAddr pte_addr = 0;///< physical address of the leaf PTE itself.
};

/// Owner/editor view of one address space. The OS constructs address
/// spaces through this class; the MMU only ever *reads* the tables.
class AddressSpace {
 public:
  /// Creates an address space whose root table lives at `root` (one page,
  /// zeroed by this constructor). The caller owns frame allocation;
  /// `alloc_frame` is invoked whenever a level-2 table page is needed.
  using FrameAllocator = PhysAddr (*)(void* ctx);
  AddressSpace(PhysicalMemory& mem, PhysAddr root, FrameAllocator alloc, void* alloc_ctx);

  PhysAddr root() const { return root_; }

  /// Maps the 4 KiB page at virtual `va` to physical `pa` with `flags`
  /// (kPresent is implied). Overwrites any existing mapping.
  void map(VirtAddr va, PhysAddr pa, Word flags);

  /// Removes the mapping (clears the leaf PTE entirely).
  void unmap(VirtAddr va);

  /// Reads the raw leaf PTE for `va`, if the level-1 entry exists.
  std::optional<Word> pte_of(VirtAddr va) const;

  /// Rewrites the raw leaf PTE for `va`; the level-1 entry must exist.
  /// This is the adversarial primitive: clear kPresent, set kReserved,
  /// or point the frame bits anywhere — the MMU will faithfully use it.
  void set_pte(VirtAddr va, Word raw_entry);

  /// Convenience adversarial edits.
  void clear_present(VirtAddr va);
  void set_reserved(VirtAddr va);
  void restore_present(VirtAddr va);

  static std::uint32_t l1_index(VirtAddr va) { return va >> 22; }
  static std::uint32_t l2_index(VirtAddr va) { return (va >> 12) & 0x3FF; }

 private:
  PhysAddr leaf_addr(VirtAddr va, bool create);

  PhysicalMemory* mem_;
  PhysAddr root_;
  FrameAllocator alloc_;
  void* alloc_ctx_;
};

/// Stateless page walker used by the MMU: walks the tables rooted at
/// `root` in `mem`. Returns nullopt if a non-leaf entry is not present.
std::optional<Translation> walk(const PhysicalMemory& mem, PhysAddr root, VirtAddr va);

}  // namespace hwsec::sim
