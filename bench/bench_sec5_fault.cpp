// E8 — §5 fault (glitch) attacks: the Bellcore RSA-CRT break, AES DFA,
// and the glitch-success-vs-intensity curve of the fault model.
//
// Paper's expected shape:
//   * ONE exploitable faulty CRT signature factors the modulus;
//   * a handful of single-bit faults per byte position recover the full
//     AES key via DFA;
//   * glitch effectiveness follows the physical-parameter margin ("forcing
//     changes in the values of relevant physical parameters outside the
//     specified intervals");
//   * verify-before-release and envelope interlocks stop the respective
//     attacks.
#include <benchmark/benchmark.h>

#include "attacks/physical/fault_attacks.h"
#include "core/campaign.h"
#include "core/resilience/resilient.h"
#include "sim/dvfs.h"
#include "sim/rng.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace attacks = hwsec::attacks;
namespace crypto = hwsec::crypto;

namespace {

void BM_DfaAttack64Pairs(benchmark::State& state) {
  const crypto::AesKey key = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2, 3, 4, 5, 6};
  sim::FaultInjector injector(800);
  injector.set_probability(0.25);
  crypto::Instrumentation instr;
  instr.fault = [&injector](std::uint32_t v) { return injector.corrupt(v); };
  crypto::AesTTable leaky(key, instr);
  crypto::AesTTable clean(key);
  hwsec::sim::Rng rng(801);
  std::vector<attacks::DfaPair> pairs;
  while (pairs.size() < 64) {
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto c = clean.encrypt(pt);
    const auto f = leaky.encrypt_with_fault_round(pt, 10);
    if (c != f) {
      pairs.push_back({c, f});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(attacks::aes_dfa_attack(pairs));
  }
}
BENCHMARK(BM_DfaAttack64Pairs)->Iterations(20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  hwsec::bench::section("E8a / §5 — Bellcore RSA-CRT fault attack");
  Table b({"fault placement", "countermeasure", "signatures", "modulus factored"},
          {24, 26, 12, 18});
  b.print_header();
  {
    hwsec::sim::Rng rng(821);
    const auto key = crypto::rsa_generate(rng);
    crypto::Instrumentation glitch;
    bool armed = true;
    glitch.fault = [&armed](std::uint32_t v) { return armed ? (armed = false, v ^ 2u) : v; };
    const crypto::u64 m = 0x1234567 % key.n;
    const auto s = crypto::rsa_sign_crt(m, key, glitch);
    const auto factor = attacks::rsa_crt_fault_attack(key.n, key.e, m, s);
    b.print_row("one bit, p-half", "none", 1, factor != 0 && key.n % factor == 0);
  }
  {
    hwsec::sim::Rng rng(822);
    const auto key = crypto::rsa_generate(rng);
    const crypto::u64 m = 0x1234567 % key.n;
    const auto s = crypto::rsa_sign_crt(m, key);
    b.print_row("no fault", "none", 1, attacks::rsa_crt_fault_attack(key.n, key.e, m, s) != 0);
  }
  {
    hwsec::sim::Rng rng(823);
    const auto key = crypto::rsa_generate(rng);
    crypto::Instrumentation glitch;
    bool armed = true;
    glitch.fault = [&armed](std::uint32_t v) { return armed ? (armed = false, v ^ 2u) : v; };
    const crypto::u64 m = 0x1234567 % key.n;
    const auto s = crypto::rsa_sign_crt_checked(m, key, glitch);
    b.print_row("one bit, p-half", "verify-before-release", 1,
                s != 0 && attacks::rsa_crt_fault_attack(key.n, key.e, m, s) != 0);
  }

  hwsec::bench::section("E8b / §5 — AES differential fault analysis: pairs vs. recovery");
  Table d({"faulty pairs", "usable (1-byte)", "ambiguous bytes", "key recovered"},
          {14, 16, 16, 14});
  d.print_header();
  const crypto::AesKey key = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                              0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};
  for (const std::size_t target : {8u, 24u, 48u, 96u, 192u, 320u}) {
    sim::FaultInjector injector(830 + target);
    injector.set_probability(0.25);
    crypto::Instrumentation instr;
    instr.fault = [&injector](std::uint32_t v) { return injector.corrupt(v); };
    crypto::AesTTable leaky(key, instr);
    crypto::AesTTable clean(key);
    hwsec::sim::Rng rng(840 + target);
    std::vector<attacks::DfaPair> pairs;
    while (pairs.size() < target) {
      crypto::AesBlock pt;
      for (auto& b2 : pt) {
        b2 = static_cast<std::uint8_t>(rng.next_u32());
      }
      const auto c = clean.encrypt(pt);
      const auto f = leaky.encrypt_with_fault_round(pt, 10);
      if (c != f) {
        pairs.push_back({c, f});
      }
    }
    const auto result = attacks::aes_dfa_attack(pairs);
    std::uint32_t ambiguous = 0;
    for (const auto c : result.candidates_left) {
      ambiguous += c != 1 ? 1 : 0;
    }
    d.print_row(target, result.pairs_consumed, ambiguous,
                result.key_recovered && result.key == key);
  }

  hwsec::bench::section("E8c — glitch fault probability vs. overclock margin");
  Table g({"margin (MHz past envelope)", "fault prob (model)", "fault rate (measured)"},
          {28, 20, 22});
  g.print_header();
  {
    // Resilient campaign: each margin point is one independent trial (its
    // own DVFS controller and injector, fixed seed) — measured
    // concurrently, printed in sweep order; a throwing point reports its
    // structured error without sinking the sweep.
    const std::vector<double> margins = {0.0, 50.0, 150.0, 400.0, 800.0, 1600.0};
    struct GlitchRow {
      double margin = 0.0;
      double model_prob = 0.0;
      double measured_rate = 0.0;
    };
    const double v = 0.9;
    const auto rows = hwsec::core::run_campaign_resilient<GlitchRow>(
        {.seed = 860, .trials = margins.size()}, {},
        [&margins, v](const hwsec::core::TrialContext& ctx) {
          const double margin = margins[ctx.index];
          sim::DvfsController dvfs;
          dvfs.set_point({dvfs.stable_freq_mhz(v) + margin, v});
          sim::FaultInjector injector(860);
          injector.set_probability(dvfs.fault_probability());
          int faults = 0;
          const int n = 4000;
          for (int i = 0; i < n; ++i) {
            if (injector.corrupt(0x5A5A5A5A) != 0x5A5A5A5A) {
              ++faults;
            }
          }
          return GlitchRow{margin, dvfs.fault_probability(), static_cast<double>(faults) / n};
        });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].ok()) {
        const GlitchRow& row = rows[i].value();
        g.print_row(row.margin, row.model_prob, row.measured_rate);
      } else {
        g.print_row(margins[i], std::string("error: ") + rows[i].error->what(), "");
      }
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
