// Kocher-style timing attack on RSA square-and-multiply (paper §5, [23]),
// refined with Dhem et al.'s Montgomery extra-reduction statistic.
//
// Threat model: the attacker submits ciphertexts and measures the TOTAL
// private-key operation time (e.g. over the network or a local clock); it
// knows the modulus and the implementation (public), nothing else.
//
// Recovery is MSB-first, one exponent bit per decision:
//   * the attacker tracks, per ciphertext, the simulated Montgomery
//     accumulator for the exponent prefix recovered so far;
//   * hypothesis "next bit = 1": the extra multiply acc·c̄ happens — its
//     extra-reduction predicate partitions the ciphertexts; if the bit is
//     really 1, the partition correlates with the measured times;
//   * hypothesis "next bit = 0": the following square acc·acc is the
//     first differing operation — same test;
//   * the hypothesis with the stronger mean-time separation wins.
//
// Against the constant-time Montgomery ladder there is no extra-reduction
// event and both separations collapse to noise — the E7 bench shows the
// recovered-bit rate dropping to coin-flip level.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/rsa.h"

namespace hwsec::attacks {

struct TimingSample {
  hwsec::crypto::u64 ciphertext = 0;
  double time = 0.0;  ///< measured total operation time (tick units).
};

/// Collects `count` samples against the given private-key path. The
/// measurement includes Gaussian noise of `noise_sigma` tick units
/// (models network / interrupt jitter).
std::vector<TimingSample> collect_timing_samples(
    const hwsec::crypto::RsaKeyPair& key, std::size_t count, double noise_sigma,
    bool constant_time_victim, std::uint64_t seed = 99);

struct TimingAttackResult {
  hwsec::crypto::u64 recovered_d = 0;
  std::uint32_t bits_decided = 0;
  std::uint32_t bits_correct = 0;  ///< filled by score() when truth known.

  double correct_fraction() const {
    return bits_decided == 0 ? 0.0
                             : static_cast<double>(bits_correct) /
                                   static_cast<double>(bits_decided);
  }
};

/// Runs the attack over the samples. `exponent_bits` is the attacker's
/// bound on the exponent length (top bit assumed set).
TimingAttackResult timing_attack(hwsec::crypto::u64 modulus,
                                 const std::vector<TimingSample>& samples,
                                 std::uint32_t exponent_bits);

/// Scores a result against the true exponent (experiment bookkeeping).
void score_against(TimingAttackResult& result, hwsec::crypto::u64 true_d);

}  // namespace hwsec::attacks
