#include "core/evaluation.h"

#include <algorithm>
#include <sstream>

#include "attacks/cache/cache_attacks.h"
#include "attacks/physical/power_analysis.h"
#include "attacks/transient/meltdown.h"
#include "attacks/transient/spectre.h"
#include "core/campaign.h"
#include "core/obs/trace.h"
#include "core/resilience/resilient.h"
#include "sca/cpa.h"
#include "sim/program.h"

namespace hwsec::core {

namespace sim = hwsec::sim;
namespace attacks = hwsec::attacks;

namespace {

/// Reference workload: a mixed ALU/memory/branch loop over an 8 KiB
/// working set — enough to exercise caches where they exist.
struct WorkloadResult {
  double mips = 0.0;
  double nj_per_instruction = 0.0;
};

WorkloadResult run_reference_workload(sim::Machine& machine) {
  sim::Cpu& cpu = machine.cpu(0);
  const sim::PhysAddr buffer = machine.alloc_frames(2);

  // Bare-metal style program against physical addresses; for MMU machines
  // we run it in supervisor mode with an identity-ish mapping.
  sim::ProgramBuilder b(0x1000);
  b.label("start")
      .li(sim::R1, buffer)     // cursor
      .li(sim::R2, 0)          // loop counter
      .li(sim::R3, 2000)       // iterations
      .label("loop")
      .lw(sim::R4, sim::R1)
      .add(sim::R4, sim::R4, sim::R2)
      .sw(sim::R1, 0, sim::R4)
      .xori(sim::R4, sim::R4, 0x5A)
      .mul(sim::R5, sim::R4, sim::R4)
      .andi(sim::R5, sim::R5, 0x1FC0)
      .li(sim::R6, buffer)
      .add(sim::R1, sim::R6, sim::R5)  // pseudo-random walk in 8 KiB
      .addi(sim::R2, sim::R2, 1)
      .br(sim::BranchCond::kLtu, sim::R2, sim::R3, "loop")
      .halt();
  const sim::Program program = b.build();

  if (machine.profile().has_mmu) {
    // Supervisor-mode flat mapping covering code + buffer.
    sim::AddressSpace as = machine.create_address_space();
    as.map(sim::page_base(program.base), sim::page_base(program.base),
           sim::pte::kWritable | sim::pte::kExecutable);
    as.map(buffer, buffer, sim::pte::kWritable);
    as.map(buffer + sim::kPageSize, buffer + sim::kPageSize, sim::pte::kWritable);
    cpu.switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, as.root(), 0);
  }
  cpu.load_program(program);
  machine.reset_stats();
  const sim::Cycle start_cycles = cpu.cycles();
  cpu.run_from(program.address_of("start"), 100'000);
  const sim::Cycle cycles = cpu.cycles() - start_cycles;

  WorkloadResult result;
  const double seconds =
      static_cast<double>(cycles) * machine.dvfs().ns_per_cycle() * 1e-9;
  const double instructions = static_cast<double>(cpu.stats().retired);
  result.mips = instructions / seconds / 1e6;
  result.nj_per_instruction = machine.energy_nj() / instructions;
  return result;
}

int level_from(double value, double t1, double t2, double t3) {
  if (value >= t3) {
    return 3;
  }
  if (value >= t2) {
    return 2;
  }
  if (value >= t1) {
    return 1;
  }
  return 0;
}

}  // namespace

PlatformEvaluation evaluate_platform(sim::DeviceClass device_class, std::uint64_t seed,
                                     unsigned workers, MachinePool* machines) {
  obs::Span eval_span("evaluate_platform", static_cast<std::int64_t>(device_class),
                      "device_class");
  PlatformEvaluation eval;
  eval.device_class = device_class;

  MachinePool local_machines;
  if (machines == nullptr) {
    machines = &local_machines;
  }

  sim::MachineProfile profile;
  switch (device_class) {
    case sim::DeviceClass::kServer: profile = sim::MachineProfile::server(); break;
    case sim::DeviceClass::kMobile: profile = sim::MachineProfile::mobile(); break;
    case sim::DeviceClass::kEmbedded: profile = sim::MachineProfile::embedded(); break;
  }
  eval.platform = profile.name;

  const bool speculative = profile.cpu.speculative_execution;
  const bool has_caches = profile.hierarchy.has_llc;

  // The workload and every probe build their own Machine from a fixed seed
  // (seed .. seed+5, same values as the historical sequential code) and
  // write to their own slot, so the fan-out below is bit-identical to the
  // sequential run at any worker count.
  eval.uarch_probes.resize(3);
  eval.physical_probes.resize(2);
  std::vector<std::function<void()>> tasks;

  // ---- non-functional requirements (measured) -------------------------
  tasks.push_back([&eval, profile, seed, machines] {
    obs::Span probe_span("probe:workload");
    auto machine_lease = acquire_machine(machines, profile, seed);
    sim::Machine& machine = *machine_lease;
    const WorkloadResult w = run_reference_workload(machine);
    eval.mips = w.mips;
    eval.nj_per_instruction = w.nj_per_instruction;
  });

  // ---- microarchitectural probes --------------------------------------
  tasks.push_back([&eval, profile, seed, speculative, machines] {
    obs::Span probe_span("probe:spectre_pht");
    AttackProbe p{.name = "Spectre-PHT", .applicable = speculative && profile.has_mmu, .succeeded = false, .detail = {}};
    if (p.applicable) {
      auto machine_lease = acquire_machine(machines, profile, seed + 1);
      sim::Machine& machine = *machine_lease;
      attacks::SpectreV1 spectre(machine, 0);
      const sim::Word index = spectre.plant_secret("K");
      const auto byte = spectre.leak_byte(index);
      p.succeeded = byte.has_value() && *byte == 'K';
      p.detail = p.succeeded ? "leaked out-of-bounds byte" : "probe array stayed cold";
    } else {
      p.detail = "no speculative execution";
    }
    eval.uarch_probes[0] = p;
  });
  tasks.push_back([&eval, profile, seed, speculative, machines] {
    obs::Span probe_span("probe:meltdown");
    AttackProbe p{.name = "Meltdown", .applicable = speculative && profile.has_mmu, .succeeded = false, .detail = {}};
    if (p.applicable) {
      auto machine_lease = acquire_machine(machines, profile, seed + 2);
      sim::Machine& machine = *machine_lease;
      attacks::MeltdownAttack meltdown(machine, 0);
      const sim::VirtAddr va = meltdown.plant_kernel_secret("S");
      const auto byte = meltdown.leak_byte(va);
      p.succeeded = byte.has_value() && *byte == 'S';
      p.detail = p.succeeded ? "read kernel memory from user space"
                             : "fault forwarding absent (mitigated/in-order)";
    } else {
      p.detail = "no speculative execution";
    }
    eval.uarch_probes[1] = p;
  });
  tasks.push_back([&eval, profile, seed, has_caches, machines] {
    obs::Span probe_span("probe:prime_probe");
    AttackProbe p{.name = "LLC Prime+Probe", .applicable = has_caches, .succeeded = false, .detail = {}};
    if (p.applicable) {
      auto machine_lease = acquire_machine(machines, profile, seed + 3);
      sim::Machine& machine = *machine_lease;
      const hwsec::crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                         0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
      const sim::PhysAddr tables = machine.alloc_frames(2);
      attacks::AesCacheVictim victim(machine, 1, 7, tables, key);
      attacks::CacheAttackConfig config;
      config.trials = 400;
      const auto result = attacks::prime_probe_attack(
          machine, victim.layout(),
          [&victim](const hwsec::crypto::AesBlock& pt) { return victim.encrypt(pt); }, config);
      p.succeeded = result.correct_nibbles(key) >= 12;
      std::ostringstream os;
      os << result.correct_nibbles(key) << "/16 key nibbles";
      p.detail = os.str();
    } else {
      p.detail = "no shared caches";
    }
    eval.uarch_probes[2] = p;
  });

  // ---- classical physical probes ---------------------------------------
  tasks.push_back([&eval, seed] {
    obs::Span probe_span("probe:cpa_aes");
    AttackProbe p{.name = "CPA on AES", .applicable = true, .succeeded = false, .detail = {}};
    const hwsec::crypto::AesKey key = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                                       0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};
    hwsec::sca::RecorderConfig rec;
    rec.noise_sigma = 1.0;
    rec.seed = seed + 4;
    const auto traces = attacks::collect_aes_traces(key, attacks::AesVariant::kTTable, 256, rec);
    const auto result = hwsec::sca::cpa_attack_key(traces);
    p.succeeded = result.correct_bytes(key) >= 14;
    std::ostringstream os;
    os << result.correct_bytes(key) << "/16 key bytes";
    p.detail = os.str();
    eval.physical_probes[0] = p;
  });
  tasks.push_back([&eval, profile, seed, machines] {
    obs::Span probe_span("probe:glitch");
    AttackProbe p{.name = "voltage/clock glitch", .applicable = true, .succeeded = false, .detail = {}};
    auto machine_lease = acquire_machine(machines, profile, seed + 5);
    sim::Machine& machine = *machine_lease;
    // Drive the platform's DVFS past its envelope and count induced
    // faults over 200 sensitive operations.
    const auto& cfg = machine.dvfs().config();
    const sim::OperatingPoint overclocked{
        machine.dvfs().stable_freq_mhz(cfg.rated_points.front().voltage) * 1.6,
        cfg.rated_points.front().voltage};
    machine.dvfs().set_point(overclocked);
    machine.injector().set_probability(machine.dvfs().fault_probability());
    std::uint32_t faults = 0;
    for (int i = 0; i < 200; ++i) {
      if (machine.injector().corrupt(0xDEADBEEF) != 0xDEADBEEF) {
        ++faults;
      }
    }
    p.succeeded = faults > 0;
    std::ostringstream os;
    os << faults << "/200 operations glitched";
    p.detail = os.str();
    eval.physical_probes[1] = p;
  });

  // Fan out with fault containment: a probe that throws only blanks its
  // own slot; the names below mirror the push order above.
  static const char* kTaskNames[] = {"workload",   "Spectre-PHT", "Meltdown",
                                     "LLC Prime+Probe", "CPA on AES", "voltage/clock glitch"};
  const auto task_errors = run_parallel_tasks_resilient(tasks, workers);
  for (std::size_t i = 0; i < task_errors.size(); ++i) {
    if (task_errors[i].has_value()) {
      eval.errors.push_back(std::string(kTaskNames[i]) + ": " + task_errors[i]->what());
    }
  }

  auto success_rate = [](const std::vector<AttackProbe>& probes) {
    if (probes.empty()) {
      return 0.0;
    }
    std::size_t ok = 0;
    for (const auto& p : probes) {
      ok += p.succeeded ? 1 : 0;
    }
    return static_cast<double>(ok) / static_cast<double>(probes.size());
  };
  eval.uarch_success_rate = success_rate(eval.uarch_probes);
  eval.physical_success_rate = success_rate(eval.physical_probes);

  // ---- modeled exposure -------------------------------------------------
  switch (device_class) {
    case sim::DeviceClass::kServer: eval.physical_exposure = 0.15; break;   // locked racks.
    case sim::DeviceClass::kMobile: eval.physical_exposure = 0.60; break;   // stolen/lost devices.
    case sim::DeviceClass::kEmbedded: eval.physical_exposure = 1.00; break; // in the field.
  }

  // ---- importance levels -------------------------------------------------
  eval.remote = 3;  // §2: applicable to all platforms.
  eval.local = 3;
  eval.microarchitectural =
      level_from(eval.uarch_success_rate, 0.15, 0.45, 0.80);
  eval.classical_physical =
      level_from(eval.physical_exposure * eval.physical_success_rate, 0.10, 0.35, 0.70);
  eval.performance = level_from(eval.mips, 2.0, 20.0, 150.0);
  // Energy-budget importance rises as the per-op budget shrinks.
  eval.energy_budget = level_from(1.0 / std::max(eval.nj_per_instruction, 1e-6), 0.5, 2.0, 8.0);
  return eval;
}

std::vector<PlatformEvaluation> evaluate_all_platforms(std::uint64_t seed, unsigned workers,
                                                       MachinePool* machines) {
  const sim::DeviceClass classes[] = {sim::DeviceClass::kServer, sim::DeviceClass::kMobile,
                                      sim::DeviceClass::kEmbedded};
  MachinePool local_machines;
  if (machines == nullptr) {
    machines = &local_machines;  // one pool backs all three columns.
  }
  std::vector<PlatformEvaluation> evals(3);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < 3; ++i) {
    tasks.push_back([&evals, &classes, i, seed, workers, machines] {
      evals[i] = evaluate_platform(classes[i], seed, workers, machines);
    });
  }
  const auto task_errors = run_parallel_tasks_resilient(tasks, workers);
  for (std::size_t i = 0; i < task_errors.size(); ++i) {
    if (task_errors[i].has_value()) {
      evals[i].device_class = classes[i];
      evals[i].errors.push_back(std::string("platform evaluation: ") + task_errors[i]->what());
    }
  }
  return evals;
}

std::string render_figure1(const std::vector<PlatformEvaluation>& columns) {
  static const char* kShade[] = {"  .  ", "  +  ", " ++  ", " +++ "};
  std::ostringstream os;
  os << "                          ";
  for (const auto& c : columns) {
    os << "| " << c.platform << std::string(c.platform.size() < 9 ? 9 - c.platform.size() : 1, ' ');
  }
  os << "\n";
  auto row = [&](const std::string& label, auto getter) {
    os << label << std::string(label.size() < 26 ? 26 - label.size() : 1, ' ');
    for (const auto& c : columns) {
      os << "|  " << kShade[getter(c)] << "   ";
    }
    os << "\n";
  };
  row("remote attacks", [](const PlatformEvaluation& c) { return c.remote; });
  row("local attacks", [](const PlatformEvaluation& c) { return c.local; });
  row("classical physical attacks",
      [](const PlatformEvaluation& c) { return c.classical_physical; });
  row("microarchitectural attacks",
      [](const PlatformEvaluation& c) { return c.microarchitectural; });
  row("performance", [](const PlatformEvaluation& c) { return c.performance; });
  row("energy budget", [](const PlatformEvaluation& c) { return c.energy_budget; });
  return os.str();
}

}  // namespace hwsec::core
