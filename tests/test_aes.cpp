// AES-128 correctness (FIPS-197 + NIST vectors) and the behavioural
// contracts of the three side-channel variants.
#include <gtest/gtest.h>

#include <set>

#include "crypto/aes.h"

namespace crypto = hwsec::crypto;

namespace {

crypto::AesKey key_from(const std::array<std::uint8_t, 16>& bytes) { return bytes; }

// FIPS-197 Appendix B.
const crypto::AesKey kFipsKey = key_from({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c});
const crypto::AesBlock kFipsPlain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                                     0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
const crypto::AesBlock kFipsCipher = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                                      0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};

// NIST SP 800-38A F.1.1 (AES-128 ECB), first block.
const crypto::AesKey kNistKey = kFipsKey;
const crypto::AesBlock kNistPlain = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
                                     0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
const crypto::AesBlock kNistCipher = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60,
                                      0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66, 0xef, 0x97};

TEST(AesSbox, MatchesKnownAnchors) {
  const auto& s = crypto::aes_sbox();
  EXPECT_EQ(s[0x00], 0x63);
  EXPECT_EQ(s[0x01], 0x7c);
  EXPECT_EQ(s[0x53], 0xed);
  EXPECT_EQ(s[0xff], 0x16);
}

TEST(AesSbox, InverseIsConsistent) {
  const auto& s = crypto::aes_sbox();
  const auto& inv = crypto::aes_inv_sbox();
  for (int x = 0; x < 256; ++x) {
    EXPECT_EQ(inv[s[static_cast<std::size_t>(x)]], x);
  }
}

TEST(AesSbox, IsAPermutation) {
  const auto& s = crypto::aes_sbox();
  std::set<std::uint8_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 256u);
}

TEST(AesKeySchedule, Fips197AppendixA) {
  const auto ks = crypto::expand_key(kFipsKey);
  EXPECT_EQ(ks.words[0], 0x2b7e1516u);
  EXPECT_EQ(ks.words[4], 0xa0fafe17u);  // first derived word.
  EXPECT_EQ(ks.words[43], 0xb6630ca6u); // last word, Appendix A.1.
}

TEST(AesTTable, Fips197Vector) {
  crypto::AesTTable aes(kFipsKey);
  EXPECT_EQ(aes.encrypt(kFipsPlain), kFipsCipher);
}

TEST(AesTTable, NistEcbVector) {
  crypto::AesTTable aes(kNistKey);
  EXPECT_EQ(aes.encrypt(kNistPlain), kNistCipher);
}

TEST(AesConstantTime, MatchesTTableOnRandomBlocks) {
  crypto::AesKey key{};
  for (int i = 0; i < 16; ++i) {
    key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(17 * i + 3);
  }
  crypto::AesTTable reference(key);
  crypto::AesConstantTime ct(key);
  crypto::AesBlock block{};
  for (int trial = 0; trial < 64; ++trial) {
    for (auto& b : block) {
      b = static_cast<std::uint8_t>(b * 31 + trial + 7);
    }
    EXPECT_EQ(ct.encrypt(block), reference.encrypt(block));
  }
}

TEST(AesMasked, MatchesTTableOnRandomBlocks) {
  crypto::AesTTable reference(kFipsKey);
  crypto::AesMasked masked(kFipsKey, /*rng_seed=*/555);
  crypto::AesBlock block = kFipsPlain;
  for (int trial = 0; trial < 64; ++trial) {
    EXPECT_EQ(masked.encrypt(block), reference.encrypt(block));
    block[static_cast<std::size_t>(trial % 16)] ^= static_cast<std::uint8_t>(trial + 1);
  }
}

TEST(AesTTable, TouchHookSeesFirstRoundIndices) {
  // With a known key and plaintext, the first four T0 touches must be
  // pt[0]^k[0], pt[4]^k[4], pt[8]^k[8], pt[12]^k[12].
  std::vector<std::pair<std::uint32_t, std::uint32_t>> touches;
  crypto::Instrumentation instr;
  instr.touch = [&touches](std::uint32_t table, std::uint32_t index) {
    touches.emplace_back(table, index);
  };
  crypto::AesTTable aes(kFipsKey, instr);
  aes.encrypt(kFipsPlain);

  // 16 touches per round x 9 T-table rounds + 16 final-round S-box.
  EXPECT_EQ(touches.size(), 160u);
  std::vector<std::uint32_t> t0_indices;
  for (std::size_t i = 0; i < 16; ++i) {
    if (touches[i].first == crypto::kT0) {
      t0_indices.push_back(touches[i].second);
    }
  }
  ASSERT_EQ(t0_indices.size(), 4u);
  EXPECT_EQ(t0_indices[0], static_cast<std::uint32_t>(kFipsPlain[0] ^ kFipsKey[0]));
  EXPECT_EQ(t0_indices[1], static_cast<std::uint32_t>(kFipsPlain[4] ^ kFipsKey[4]));
  EXPECT_EQ(t0_indices[2], static_cast<std::uint32_t>(kFipsPlain[8] ^ kFipsKey[8]));
  EXPECT_EQ(t0_indices[3], static_cast<std::uint32_t>(kFipsPlain[12] ^ kFipsKey[12]));
}

TEST(AesConstantTime, EmitsNoTouches) {
  std::uint32_t touches = 0;
  crypto::Instrumentation instr;
  instr.touch = [&touches](std::uint32_t, std::uint32_t) { ++touches; };
  crypto::AesConstantTime aes(kFipsKey, instr);
  aes.encrypt(kFipsPlain);
  EXPECT_EQ(touches, 0u) << "constant-time AES must not perform table lookups";
}

TEST(AesTTable, FaultHookFiresOnlyAtRequestedRound) {
  std::uint32_t fault_calls = 0;
  crypto::Instrumentation instr;
  instr.fault = [&fault_calls](std::uint32_t v) {
    ++fault_calls;
    return v;
  };
  crypto::AesTTable aes(kFipsKey, instr);
  const auto clean = aes.encrypt_with_fault_round(kFipsPlain, 10);
  EXPECT_EQ(fault_calls, 4u);  // all four state words offered once.
  EXPECT_EQ(clean, kFipsCipher) << "identity fault hook must not change the result";
}

TEST(AesTTable, SingleBitFaultInRound10FlipsExactlyOneByte) {
  crypto::Instrumentation instr;
  bool armed = true;
  instr.fault = [&armed](std::uint32_t v) {
    if (armed) {
      armed = false;
      return v ^ 0x00010000u;  // one bit in one byte of s0.
    }
    return v;
  };
  crypto::AesTTable aes(kFipsKey, instr);
  const auto faulty = aes.encrypt_with_fault_round(kFipsPlain, 10);
  int diffs = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    diffs += faulty[i] != kFipsCipher[i] ? 1 : 0;
  }
  EXPECT_EQ(diffs, 1) << "a pre-SubBytes single-bit fault in round 10 stays in one byte";
}

}  // namespace
