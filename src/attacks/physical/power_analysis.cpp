#include "attacks/physical/power_analysis.h"

#include <memory>

#include "sim/rng.h"

namespace hwsec::attacks {

namespace crypto = hwsec::crypto;
namespace sca = hwsec::sca;

sca::TraceSet collect_aes_traces(const crypto::AesKey& key, AesVariant variant,
                                 std::size_t count, const sca::RecorderConfig& recorder_config,
                                 std::uint64_t seed) {
  hwsec::sim::Rng rng(seed);
  sca::PowerTraceRecorder recorder(recorder_config);

  crypto::Instrumentation instr;
  instr.leak = [&recorder](std::uint32_t value) { recorder.on_value(value); };

  // Jitter misaligns traces; keep the matrix rectangular at a length that
  // accommodates the worst case.
  const std::size_t fixed_length =
      kAesSamplesPerTrace * (1 + recorder_config.max_jitter);

  std::unique_ptr<crypto::AesTTable> ttable;
  std::unique_ptr<crypto::AesConstantTime> ct;
  std::unique_ptr<crypto::AesMasked> masked;
  switch (variant) {
    case AesVariant::kTTable:
      ttable = std::make_unique<crypto::AesTTable>(key, instr);
      break;
    case AesVariant::kConstantTime:
      ct = std::make_unique<crypto::AesConstantTime>(key, instr);
      break;
    case AesVariant::kMasked:
      masked = std::make_unique<crypto::AesMasked>(key, seed ^ 0xABCD, instr);
      break;
  }

  sca::TraceSet set;
  for (std::size_t i = 0; i < count; ++i) {
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    recorder.begin_trace();
    crypto::AesBlock ctxt{};
    switch (variant) {
      case AesVariant::kTTable: ctxt = ttable->encrypt(pt); break;
      case AesVariant::kConstantTime: ctxt = ct->encrypt(pt); break;
      case AesVariant::kMasked: ctxt = masked->encrypt(pt); break;
    }
    set.traces.push_back(recorder.end_trace(fixed_length));
    set.plaintexts.push_back(pt);
    set.ciphertexts.push_back(ctxt);
  }
  return set;
}

}  // namespace hwsec::attacks
