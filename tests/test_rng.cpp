// Determinism and distribution sanity of the simulator RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace sim = hwsec::sim;

namespace {

TEST(Rng, DeterministicForSameSeed) {
  sim::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  sim::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  sim::Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  sim::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  sim::Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  sim::Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

class RngChanceTest : public ::testing::TestWithParam<double> {};

TEST_P(RngChanceTest, FrequencyTracksProbability) {
  const double p = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(p * 1000) + 1);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(p) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngChanceTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
