#include "core/shutdown.h"

#include <csignal>
#include <unistd.h>

namespace hwsec::core {

namespace {

// Async-signal-safe state: the handler performs one store (first signal)
// or one _exit (second).
volatile std::sig_atomic_t g_shutdown_signal = 0;

void on_shutdown_signal(int signal) {
  if (g_shutdown_signal != 0) {
    // Escalation: the first signal started a graceful drain; a second one
    // means the operator wants out NOW (a daemon stuck mid-drain must not
    // absorb Ctrl-C forever). _exit is async-signal-safe; the conventional
    // 128+signal code reports the abort to the caller.
    _exit(128 + signal);
  }
  g_shutdown_signal = signal;
}

}  // namespace

void install_graceful_shutdown() {
  struct sigaction action {};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: the campaign loops poll the flag at trial boundaries; no
  // need to make every blocking syscall in the process EINTR-aware.
  action.sa_flags = SA_RESTART;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool shutdown_requested() { return g_shutdown_signal != 0; }

int shutdown_signal() { return static_cast<int>(g_shutdown_signal); }

int shutdown_exit_code() {
  return g_shutdown_signal == 0 ? 0 : 128 + static_cast<int>(g_shutdown_signal);
}

void reset_shutdown_for_test() { g_shutdown_signal = 0; }

}  // namespace hwsec::core
