#include "crypto/hmac.h"

namespace hwsec::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k_block{};
  if (key.size() > kBlock) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace hwsec::crypto
