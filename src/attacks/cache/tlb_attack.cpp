#include "attacks/cache/tlb_attack.h"

#include "sim/rng.h"

namespace hwsec::attacks {

namespace sim = hwsec::sim;

TlbAttack::TlbAttack(sim::Machine& machine, sim::CoreId core)
    : machine_(&machine), core_(core), aspace_(machine.create_address_space()) {
  const auto& tlb_config = machine.cpu(core).config().tlb;
  tlb_ways_ = tlb_config.ways;
  tlb_sets_ = tlb_config.entries / tlb_config.ways;

  // Attacker pages: ways x sets pages such that page j*sets + s maps to
  // TLB set s. Victim pages: 16 pages, page n maps to set (n % sets).
  for (std::uint32_t j = 0; j < tlb_ways_ + 1; ++j) {
    for (std::uint32_t s = 0; s < tlb_sets_; ++s) {
      const sim::VirtAddr va = attacker_base_ + (j * tlb_sets_ + s) * sim::kPageSize;
      aspace_.map(va, machine.alloc_frame(), sim::pte::kUser);
    }
  }
  for (std::uint32_t n = 0; n < 16; ++n) {
    aspace_.map(victim_base_ + n * sim::kPageSize, machine.alloc_frame(), sim::pte::kUser);
  }
}

sim::Mmu& TlbAttack::mmu() { return machine_->cpu(core_).mmu(); }

void TlbAttack::prime() {
  mmu().set_context(aspace_.root(), kAttackerAsid, sim::kDomainNormal, sim::Privilege::kUser);
  for (std::uint32_t j = 0; j < tlb_ways_; ++j) {
    for (std::uint32_t s = 0; s < tlb_sets_; ++s) {
      const sim::VirtAddr va = attacker_base_ + (j * tlb_sets_ + s) * sim::kPageSize;
      mmu().translate(va, sim::AccessType::kRead);
    }
  }
}

void TlbAttack::victim_access(std::uint8_t secret_nibble) {
  mmu().set_context(aspace_.root(), kVictimAsid, sim::kDomainNormal, sim::Privilege::kUser);
  mmu().translate(victim_base_ + (secret_nibble & 0xF) * sim::kPageSize,
                  sim::AccessType::kRead);
}

std::optional<std::uint8_t> TlbAttack::recover_nibble(std::uint8_t secret_nibble) {
  prime();
  victim_access(secret_nibble);

  // Probe: time one translation per (way, set); a page walk betrays the
  // displaced entry. The nibble maps to set (nibble % sets); with the
  // default 16-set TLB the mapping is exact.
  mmu().set_context(aspace_.root(), kAttackerAsid, sim::kDomainNormal, sim::Privilege::kUser);
  const sim::Cycle walk = mmu().tlb().config().walk_latency;
  std::optional<std::uint8_t> slow_set;
  for (std::uint32_t s = 0; s < tlb_sets_; ++s) {
    sim::Cycle total = 0;
    for (std::uint32_t j = 0; j < tlb_ways_; ++j) {
      const sim::VirtAddr va = attacker_base_ + (j * tlb_sets_ + s) * sim::kPageSize;
      total += machine_->observe_latency(mmu().translate(va, sim::AccessType::kRead).latency);
    }
    if (total >= walk) {  // at least one probe took a page walk.
      if (slow_set.has_value()) {
        return std::nullopt;  // noise: more than one set disturbed.
      }
      slow_set = static_cast<std::uint8_t>(s);
    }
  }
  return slow_set;
}

double TlbAttack::accuracy(std::uint32_t rounds, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::uint32_t correct = 0;
  for (std::uint32_t i = 0; i < rounds; ++i) {
    const std::uint8_t nibble = static_cast<std::uint8_t>(rng.below(16));
    const auto recovered = recover_nibble(nibble);
    if (recovered.has_value() && *recovered == (nibble % tlb_sets_)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(rounds);
}

}  // namespace hwsec::attacks
