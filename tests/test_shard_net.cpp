// Multi-host sharded campaigns (core/shard transport + net layers).
//
// The invariant under test extends PR 7's: a campaign spread over N hosts
// — behind real loopback TCP, behind socketpairs, or behind a transport
// that deliberately short-writes, trickles bytes, disconnects mid-frame,
// stalls past the heartbeat horizon, or duplicates terminal frames —
// produces exactly the outcome vector the in-process resilient runner
// produces. The wire moves work, never results that depend on where (or
// how badly) they traveled.
//
// Process hygiene: every fork-based test lives in the MultiHostProc suite
// so sanitizer jobs that cannot mix fork with threads (TSan) can filter
// them with --gtest_filter=-MultiHostProc.*; everything else runs workers
// as plain threads over socketpairs.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/remote_worker.h"
#include "core/service/spec.h"
#include "core/shard/net.h"
#include "core/shard/supervisor.h"
#include "core/shard/transport.h"
#include "core/shard/wire.h"
#include "sim/rng.h"

namespace core = hwsec::core;
namespace shard = hwsec::core::shard;
namespace service = hwsec::core::service;
using hwsec::ErrorKind;
using hwsec::SimError;

namespace {

std::string ckpt_path(const std::string& name) {
  const char* dir = std::getenv("HWSEC_CHECKPOINT_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name + "." + std::to_string(::getpid()) + ".ckpt";
}

service::CampaignSpec mix_spec(std::uint64_t seed, std::uint64_t trials) {
  service::CampaignSpec spec;
  spec.tenant = "nettest";
  spec.kind = "mix";
  spec.seed = seed;
  spec.trials = trials;
  return spec;
}

/// The reference every multi-host run must be bit-identical to: the same
/// spec through the plain in-process resilient runner.
service::ServiceOutcomes reference_run(const service::CampaignSpec& spec) {
  service::CampaignSpec local = spec;
  local.processes = 0;
  local.hosts.clear();
  return service::run_spec(local, core::ResilienceConfig{});
}

void expect_identical(const service::ServiceOutcomes& got,
                      const service::ServiceOutcomes& want, const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].ok(), want[i].ok()) << label << " slot " << i;
    if (want[i].ok()) {
      EXPECT_EQ(got[i].value(), want[i].value()) << label << " slot " << i;
    }
  }
}

/// Runs `spec` through the sharded supervisor exactly the way
/// service::run_spec's sharded path does (same body, same folded knobs),
/// but with the caller's ShardConfig — the door to the dialer/fault seams.
service::ServiceOutcomes run_sharded_spec(const service::CampaignSpec& spec,
                                          shard::ShardConfig shard_cfg,
                                          shard::ShardStats* stats = nullptr,
                                          core::ResilienceConfig res = {}) {
  const auto body = service::make_trial_body(spec);
  core::CampaignConfig cfg;
  cfg.seed = spec.seed;
  cfg.trials = static_cast<std::size_t>(spec.trials);
  cfg.workers = spec.workers;
  res.policy = spec.policy;
  res.max_attempts = spec.max_attempts;
  res.trial_cycle_budget = spec.trial_cycle_budget;
  shard_cfg.remote_spec_json = service::encode_spec(spec);
  return shard::run_campaign_sharded<service::ServiceTrialResult>(cfg, res, shard_cfg,
                                                                  body, stats);
}

// ---- in-thread worker fleet (TSan-safe: no fork anywhere) ---------------

/// Joinable bag of worker threads; keeps fault-matrix tests leak-free even
/// when a transport dies mid-session.
struct ThreadFleet {
  std::vector<std::thread> threads;
  std::mutex mutex;

  ~ThreadFleet() { join(); }

  void join() {
    std::vector<std::thread> local;
    {
      std::lock_guard<std::mutex> lock(mutex);
      local.swap(threads);
    }
    for (auto& t : local) {
      if (t.joinable()) {
        t.join();
      }
    }
  }
};

/// A dialer that "reaches" an in-thread remote worker over a socketpair:
/// every dial spawns a fresh serve_supervisor session thread and hands the
/// supervisor its end — wrapped in a FaultyTransport when `plan` is set.
/// Re-dials after a death naturally get a brand-new worker, mirroring a
/// remote machine whose worker process was restarted. Each dial advances
/// the fault seed: a replayable plan that killed session k at frame j
/// would otherwise kill session k+1 at frame j too, and a host whose
/// handshake dies once could never join at all.
std::function<std::unique_ptr<shard::Transport>(const shard::HostSpec&, std::string&)>
thread_worker_dialer(ThreadFleet& fleet, const shard::FaultPlan* plan = nullptr,
                     std::uint64_t expect_digest = 0) {
  auto dials = std::make_shared<std::uint64_t>(0);
  return [&fleet, plan, expect_digest, dials](
             const shard::HostSpec&, std::string& error) -> std::unique_ptr<shard::Transport> {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      error = "socketpair failed";
      return nullptr;
    }
    {
      std::lock_guard<std::mutex> lock(fleet.mutex);
      fleet.threads.emplace_back([fd = sv[1], expect_digest] {
        shard::FdTransport transport(fd, fd);
        transport.set_label("thread-worker");
        shard::HelloPayload hello;
        hello.worker_name = "thread";
        hello.expect_digest = expect_digest;
        std::string err;
        service::serve_supervisor(transport, hello, std::chrono::milliseconds(2000), err);
      });
    }
    if (plan != nullptr) {
      shard::FaultPlan session_plan = *plan;
      session_plan.seed = plan->seed + 1000 * (*dials)++;
      return std::make_unique<shard::FaultyTransport>(sv[0], sv[0], session_plan);
    }
    return std::make_unique<shard::FdTransport>(sv[0], sv[0]);
  };
}

/// N fake host entries (the dialer ignores the address; each entry is one
/// remote worker slot with its own dial/backoff budget).
std::vector<shard::HostSpec> fake_hosts(std::size_t n) {
  std::vector<shard::HostSpec> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    hosts.push_back(shard::HostSpec{"worker" + std::to_string(i),
                                    static_cast<std::uint16_t>(7000 + i)});
  }
  return hosts;
}

// ---- wire: socket framing + the unified payload cap ---------------------

TEST(NetWire, FramesRoundTripOverASocketTransport) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  shard::FdTransport a(sv[0], sv[0]);
  shard::FdTransport b(sv[1], sv[1]);

  shard::TrialPayload trial;
  trial.index = 41;
  trial.record.ok = true;
  trial.record.payload = std::string("\x10\x20\x30\x40", 4);
  ASSERT_TRUE(a.send({shard::FrameType::kTrial, shard::encode_trial(trial)}));
  ASSERT_TRUE(a.send({shard::FrameType::kHeartbeat, {}}));

  shard::Frame frame;
  ASSERT_TRUE(b.recv_blocking(frame, std::chrono::milliseconds(2000)));
  ASSERT_EQ(frame.type, shard::FrameType::kTrial);
  shard::TrialPayload got;
  ASSERT_TRUE(shard::decode_trial(frame.payload, got));
  EXPECT_EQ(got.index, 41u);
  EXPECT_EQ(got.record.payload, trial.record.payload);
  ASSERT_TRUE(b.recv_blocking(frame, std::chrono::milliseconds(2000)));
  EXPECT_EQ(frame.type, shard::FrameType::kHeartbeat);

  // Half-close: a's writes end, but the reverse direction still works.
  ASSERT_TRUE(b.send({shard::FrameType::kShutdown, {}}));
  a.shutdown_writes();
  ASSERT_TRUE(a.recv_blocking(frame, std::chrono::milliseconds(2000)));
  EXPECT_EQ(frame.type, shard::FrameType::kShutdown);
  EXPECT_FALSE(b.recv_blocking(frame, std::chrono::milliseconds(2000)));  // EOF.
}

TEST(NetWire, EncodeFrameMatchesWriteFrameBytes) {
  const shard::Frame frame{shard::FrameType::kAssign, "payload-bytes"};
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_TRUE(shard::write_frame(fds[1], frame));
  char raw[128];
  const ssize_t n = read(fds[0], raw, sizeof(raw));
  close(fds[0]);
  close(fds[1]);
  const std::string encoded = shard::encode_frame(frame);
  ASSERT_EQ(static_cast<std::size_t>(n), encoded.size());
  EXPECT_EQ(std::memcmp(raw, encoded.data(), encoded.size()), 0);
}

// Regression for the unified header check: a length field over the shard
// cap (but under the generic 1 GiB wire cap) must poison BOTH decode
// paths — FrameBuffer::next and read_frame ran separate checks before
// wire.cpp's parse_header unified them, and only one enforced the cap a
// remote worker is held to.
TEST(NetWire, OversizedLengthFromAWorkerPoisonsEveryDecodePath) {
  std::string header = shard::encode_frame({shard::FrameType::kTrial, {}});
  const std::uint32_t hostile = shard::kMaxShardFramePayload + 1;
  header[8] = static_cast<char>(hostile & 0xFF);
  header[9] = static_cast<char>((hostile >> 8) & 0xFF);
  header[10] = static_cast<char>((hostile >> 16) & 0xFF);
  header[11] = static_cast<char>((hostile >> 24) & 0xFF);

  shard::FrameBuffer buf(shard::kMaxShardFramePayload);
  buf.append(header.data(), header.size());
  shard::Frame out;
  EXPECT_FALSE(buf.next(out));
  EXPECT_TRUE(buf.corrupt());

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  ASSERT_EQ(write(fds[1], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  close(fds[1]);
  EXPECT_FALSE(shard::read_frame(fds[0], out, shard::kMaxShardFramePayload));
  close(fds[0]);

  // The same bytes under the generic cap are a legal (if huge) length —
  // proving the rejection above came from the per-channel cap, not luck.
  shard::FrameBuffer wide(shard::kMaxFramePayload);
  wide.append(header.data(), header.size());
  EXPECT_FALSE(wide.next(out));   // waiting for the payload...
  EXPECT_FALSE(wide.corrupt());   // ...not poisoned.
}

// ---- handshake codecs + fuzz --------------------------------------------

TEST(NetHandshake, PayloadCodecsRoundTrip) {
  shard::HelloPayload hello;
  hello.capabilities = shard::kCapSpecRunner | (1u << 7);
  hello.expect_digest = 0xDEADBEEFCAFEF00Dull;
  hello.worker_name = "rig-b.worker-3";
  shard::HelloPayload hello2;
  ASSERT_TRUE(shard::decode_hello(shard::encode_hello(hello), hello2));
  EXPECT_EQ(hello2.wire_version, shard::kWireVersion);
  EXPECT_EQ(hello2.capabilities, hello.capabilities);
  EXPECT_EQ(hello2.expect_digest, hello.expect_digest);
  EXPECT_EQ(hello2.worker_name, hello.worker_name);

  shard::WelcomePayload welcome;
  welcome.spec_json = service::encode_spec(mix_spec(9, 50));
  welcome.campaign_digest = shard::fnv1a64(welcome.spec_json);
  welcome.heartbeat_ms = 15;
  welcome.wall_clock_timeout_ms = 30000;
  welcome.chaos.seed = 77;
  welcome.chaos.throw_probability = 0.125;
  welcome.chaos.worker_kill_probability = 0.0625;
  welcome.chaos.max_delay_us = 1234;
  shard::WelcomePayload welcome2;
  ASSERT_TRUE(shard::decode_welcome(shard::encode_welcome(welcome), welcome2));
  EXPECT_EQ(welcome2.campaign_digest, welcome.campaign_digest);
  EXPECT_EQ(welcome2.spec_json, welcome.spec_json);
  EXPECT_EQ(welcome2.heartbeat_ms, 15u);
  EXPECT_EQ(welcome2.wall_clock_timeout_ms, 30000u);
  EXPECT_EQ(welcome2.chaos.seed, 77u);
  EXPECT_EQ(welcome2.chaos.throw_probability, 0.125);
  EXPECT_EQ(welcome2.chaos.worker_kill_probability, 0.0625);
  EXPECT_EQ(welcome2.chaos.max_delay_us, 1234u);

  shard::RejectPayload reject{"campaign digest mismatch: worker expects 1, this campaign is 2"};
  shard::RejectPayload reject2;
  ASSERT_TRUE(shard::decode_reject(shard::encode_reject(reject), reject2));
  EXPECT_EQ(reject2.reason, reject.reason);
}

TEST(NetHandshake, TruncatedPayloadsNeverDecode) {
  shard::WelcomePayload welcome;
  welcome.spec_json = service::encode_spec(mix_spec(3, 10));
  welcome.campaign_digest = shard::fnv1a64(welcome.spec_json);
  const std::string hello_bytes = shard::encode_hello(shard::HelloPayload{});
  const std::string welcome_bytes = shard::encode_welcome(welcome);
  for (std::size_t n = 0; n < hello_bytes.size(); ++n) {
    shard::HelloPayload out;
    EXPECT_FALSE(shard::decode_hello(hello_bytes.substr(0, n), out)) << "prefix " << n;
  }
  for (std::size_t n = 0; n < welcome_bytes.size(); ++n) {
    shard::WelcomePayload out;
    EXPECT_FALSE(shard::decode_welcome(welcome_bytes.substr(0, n), out)) << "prefix " << n;
  }
}

TEST(NetHandshake, GarbagePayloadFuzzNeverCrashes) {
  hwsec::sim::Rng rng(0xF00DF00Dull);
  for (int round = 0; round < 400; ++round) {
    const std::size_t len = static_cast<std::size_t>(rng.below(200));
    std::string bytes(len, '\0');
    for (auto& c : bytes) {
      c = static_cast<char>(rng.next_u64() & 0xFF);
    }
    shard::HelloPayload hello;
    shard::WelcomePayload welcome;
    shard::RejectPayload reject;
    (void)shard::decode_hello(bytes, hello);
    (void)shard::decode_welcome(bytes, welcome);
    (void)shard::decode_reject(bytes, reject);
  }
  SUCCEED();  // no crash, no sanitizer report.
}

// ---- handshake protocol over socketpairs --------------------------------

struct HandshakeRig {
  int sv[2] = {-1, -1};
  std::unique_ptr<shard::FdTransport> supervisor;
  std::unique_ptr<shard::FdTransport> worker;

  HandshakeRig() {
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    supervisor = std::make_unique<shard::FdTransport>(sv[0], sv[0]);
    worker = std::make_unique<shard::FdTransport>(sv[1], sv[1]);
  }
};

shard::RemoteCampaignInfo campaign_info(const service::CampaignSpec& spec) {
  shard::RemoteCampaignInfo info;
  info.spec_json = service::encode_spec(spec);
  info.digest = shard::fnv1a64(info.spec_json);
  info.heartbeat_ms = 10;
  return info;
}

TEST(NetHandshake, WorkerJoinsAndReceivesTheCampaign) {
  HandshakeRig rig;
  const auto info = campaign_info(mix_spec(5, 25));
  std::thread accept_thread([&] {
    shard::HelloPayload hello;
    std::string error;
    EXPECT_TRUE(shard::handshake_accept(*rig.supervisor, info,
                                        std::chrono::milliseconds(2000), hello, error))
        << error;
    EXPECT_EQ(hello.worker_name, "w1");
  });
  shard::HelloPayload hello;
  hello.worker_name = "w1";
  shard::WelcomePayload welcome;
  std::string error;
  ASSERT_TRUE(shard::handshake_connect(*rig.worker, hello, std::chrono::milliseconds(2000),
                                       welcome, error))
      << error;
  EXPECT_EQ(welcome.campaign_digest, info.digest);
  EXPECT_EQ(welcome.spec_json, info.spec_json);
  EXPECT_EQ(welcome.heartbeat_ms, 10u);
  accept_thread.join();
}

TEST(NetHandshake, OldWireVersionIsRejectedByName) {
  HandshakeRig rig;
  const auto info = campaign_info(mix_spec(5, 25));
  // A worker built against wire v0: craft the hello by hand.
  std::string payload = shard::encode_hello(shard::HelloPayload{});
  payload[0] = 0;  // wire_version low byte.
  payload[1] = 0;
  ASSERT_TRUE(rig.worker->send({shard::FrameType::kHello, payload}));

  shard::HelloPayload hello;
  std::string error;
  EXPECT_FALSE(shard::handshake_accept(*rig.supervisor, info,
                                       std::chrono::milliseconds(2000), hello, error));
  EXPECT_NE(error.find("wire version mismatch"), std::string::npos) << error;

  // The worker got the same named reason in a kReject frame, not silence.
  shard::Frame frame;
  ASSERT_TRUE(rig.worker->recv_blocking(frame, std::chrono::milliseconds(2000)));
  ASSERT_EQ(frame.type, shard::FrameType::kReject);
  shard::RejectPayload reject;
  ASSERT_TRUE(shard::decode_reject(frame.payload, reject));
  EXPECT_NE(reject.reason.find("wire version mismatch"), std::string::npos) << reject.reason;
}

TEST(NetHandshake, StaleWorkerDigestIsRejectedByName) {
  HandshakeRig rig;
  const auto info = campaign_info(mix_spec(5, 25));
  std::thread accept_thread([&] {
    shard::HelloPayload hello;
    std::string error;
    EXPECT_FALSE(shard::handshake_accept(*rig.supervisor, info,
                                         std::chrono::milliseconds(2000), hello, error));
    EXPECT_NE(error.find("campaign digest mismatch"), std::string::npos) << error;
  });
  shard::HelloPayload hello;
  hello.expect_digest = info.digest ^ 0xBAD;  // pinned to some other campaign.
  shard::WelcomePayload welcome;
  std::string error;
  EXPECT_FALSE(shard::handshake_connect(*rig.worker, hello,
                                        std::chrono::milliseconds(2000), welcome, error));
  EXPECT_NE(error.find("campaign digest mismatch"), std::string::npos) << error;
  accept_thread.join();
}

TEST(NetHandshake, MissingCapabilityIsRejectedByName) {
  HandshakeRig rig;
  const auto info = campaign_info(mix_spec(5, 25));
  shard::HelloPayload bare;
  bare.capabilities = 0;  // cannot run spec campaigns.
  ASSERT_TRUE(rig.worker->send({shard::FrameType::kHello, shard::encode_hello(bare)}));
  shard::HelloPayload hello;
  std::string error;
  EXPECT_FALSE(shard::handshake_accept(*rig.supervisor, info,
                                       std::chrono::milliseconds(2000), hello, error));
  EXPECT_NE(error.find("capability"), std::string::npos) << error;
}

TEST(NetHandshake, WorkerRefusesAWelcomeWhoseSpecDoesNotHashToTheDigest) {
  HandshakeRig rig;
  std::thread lying_supervisor([&] {
    shard::Frame frame;
    ASSERT_TRUE(rig.supervisor->recv_blocking(frame, std::chrono::milliseconds(2000)));
    ASSERT_EQ(frame.type, shard::FrameType::kHello);
    shard::WelcomePayload welcome;
    welcome.spec_json = service::encode_spec(mix_spec(5, 25));
    welcome.campaign_digest = shard::fnv1a64(welcome.spec_json) ^ 1;  // lie.
    ASSERT_TRUE(
        rig.supervisor->send({shard::FrameType::kWelcome, shard::encode_welcome(welcome)}));
  });
  shard::WelcomePayload welcome;
  std::string error;
  EXPECT_FALSE(shard::handshake_connect(*rig.worker, shard::HelloPayload{},
                                        std::chrono::milliseconds(2000), welcome, error));
  EXPECT_NE(error.find("digest"), std::string::npos) << error;
  lying_supervisor.join();
}

// ---- host discovery ------------------------------------------------------

TEST(NetDiscovery, ParsesHostListsAndNamesEveryRejection) {
  std::vector<shard::HostSpec> hosts;
  std::string error;
  ASSERT_TRUE(shard::parse_hosts("127.0.0.1:7700,rig-b.lan:7701", hosts, error)) << error;
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].host, "127.0.0.1");
  EXPECT_EQ(hosts[0].port, 7700);
  EXPECT_EQ(hosts[1].host, "rig-b.lan");
  EXPECT_EQ(hosts[1].port, 7701);

  for (const char* bad : {"127.0.0.1", "host:", ":7700", "host:0", "host:99999",
                          "host:7x00", "a,b", "evil;rm:7700", ""}) {
    hosts.clear();
    error.clear();
    EXPECT_FALSE(shard::parse_hosts(bad, hosts, error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(NetDiscovery, EnvironmentFallbackParsesAndReportsErrors) {
  setenv("HWSEC_SHARD_HOSTS", "127.0.0.1:7812", 1);
  std::string error;
  auto hosts = shard::hosts_from_env(error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0].port, 7812);

  setenv("HWSEC_SHARD_HOSTS", "not-a-host-list", 1);
  hosts = shard::hosts_from_env(error);
  EXPECT_TRUE(hosts.empty());
  EXPECT_NE(error.find("HWSEC_SHARD_HOSTS"), std::string::npos) << error;

  unsetenv("HWSEC_SHARD_HOSTS");
  error.clear();
  hosts = shard::hosts_from_env(error);
  EXPECT_TRUE(hosts.empty());
  EXPECT_TRUE(error.empty());
}

TEST(NetDiscovery, SpecsCarryAndValidateHostLists) {
  service::CampaignSpec spec = mix_spec(11, 6);
  spec.hosts = {"127.0.0.1:7700", "127.0.0.1:7701"};
  const std::string json = service::encode_spec(spec);
  service::CampaignSpec decoded;
  std::string error;
  ASSERT_TRUE(service::decode_spec(json, decoded, error)) << error;
  EXPECT_EQ(decoded.hosts, spec.hosts);
  // The digest covers the host list: same spec, different hosts => a
  // different campaign identity.
  service::CampaignSpec other = spec;
  other.hosts = {"127.0.0.1:7700"};
  EXPECT_NE(shard::fnv1a64(service::encode_spec(spec)),
            shard::fnv1a64(service::encode_spec(other)));

  service::CampaignSpec bad;
  EXPECT_FALSE(service::decode_spec(
      R"({"hwsec_spec_version": 1, "tenant": "t", "kind": "mix", "trials": 1,)"
      R"( "hosts": ["no-port"]})",
      bad, error));
  EXPECT_NE(error.find("hosts"), std::string::npos) << error;
  EXPECT_FALSE(service::decode_spec(
      R"({"hwsec_spec_version": 1, "tenant": "t", "kind": "mix", "trials": 1,)"
      R"( "hosts": "127.0.0.1:1"})",
      bad, error));
}

// ---- the network failure matrix (threads over socketpairs) --------------

TEST(NetFault, ShortWritesAreReassembledBitIdentically) {
  const auto spec = mix_spec(0xA11CE, 30);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.seed = 11;
  plan.short_write_probability = 1.0;  // every frame scattered into 3-byte writes.
  plan.counts = std::make_shared<shard::FaultCounts>();
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(1);
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "short-writes");
  EXPECT_GT(plan.counts->short_writes, 0u);
  EXPECT_EQ(stats.remote_workers, 1u);
}

TEST(NetFault, ByteAtATimeDeliveryIsBitIdentical) {
  const auto spec = mix_spec(0xB17E, 12);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.byte_trickle = true;  // worst-case fragmentation on the inbound path.
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(1);
  cfg.shard_size = 3;
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  const auto got = run_sharded_spec(spec, cfg);
  fleet.join();
  expect_identical(got, want, "byte-trickle");
}

TEST(NetFault, MidFrameDisconnectMigratesAndReconnects) {
  const auto spec = mix_spec(0xD15C, 40);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.seed = 5;
  plan.disconnect_probability = 0.2;  // dies within a few outbound frames.
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(2);
  cfg.shard_size = 4;
  cfg.max_reconnects = 8;
  cfg.reconnect_backoff = std::chrono::milliseconds(5);
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "mid-frame-disconnect");
  EXPECT_GT(stats.worker_deaths, 0u);
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.remote_reconnects, 0u);
}

TEST(NetFault, StallPastHeartbeatAgeIsDetectedAndMigrated) {
  const auto spec = mix_spec(0x57A11, 24);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.seed = 3;
  plan.stall_probability = 0.3;  // rolled per inbound frame (heartbeats!).
  plan.stall_duration = std::chrono::milliseconds(2000);
  plan.counts = std::make_shared<shard::FaultCounts>();
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(2);
  cfg.shard_size = 4;
  cfg.heartbeat_interval = std::chrono::milliseconds(10);
  cfg.hang_timeout = std::chrono::milliseconds(150);  // << stall_duration.
  cfg.max_reconnects = 8;
  cfg.reconnect_backoff = std::chrono::milliseconds(5);
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "stall");
  EXPECT_GT(plan.counts->stalls, 0u);
  EXPECT_GT(stats.worker_hangs, 0u);
  EXPECT_GT(stats.migrations, 0u);
}

TEST(NetFault, DuplicatedTerminalFramesMergeIdempotently) {
  const auto spec = mix_spec(0xD0B1E, 30);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.seed = 7;
  plan.duplicate_probability = 1.0;  // every kTrial/kShardDone delivered twice.
  plan.counts = std::make_shared<shard::FaultCounts>();
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(1);
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "duplicate-frames");
  EXPECT_GT(plan.counts->duplicates, 0u);
  EXPECT_GT(stats.duplicate_trials, 0u);
}

TEST(NetFault, CombinedFaultSoupConvergesAcrossSeeds) {
  const auto spec = mix_spec(0x50FA, 36);
  const auto want = reference_run(spec);
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ThreadFleet fleet;
    shard::FaultPlan plan;
    plan.seed = seed;
    plan.short_write_probability = 0.5;
    plan.disconnect_probability = 0.05;
    plan.duplicate_probability = 0.3;
    shard::ShardConfig cfg;
    cfg.processes = 0;
    cfg.hosts = fake_hosts(2);
    cfg.shard_size = 4;
    cfg.max_reconnects = 16;
    cfg.reconnect_backoff = std::chrono::milliseconds(2);
    cfg.dialer = thread_worker_dialer(fleet, &plan);
    const auto got = run_sharded_spec(spec, cfg);
    fleet.join();
    expect_identical(got, want, "fault-soup seed=" + std::to_string(seed));
  }
}

TEST(NetFault, UnreachableHostsExhaustBackoffBudgetAndFallBack) {
  const auto spec = mix_spec(0xFA11, 14);
  const auto want = reference_run(spec);
  unsigned dials = 0;
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(1);
  cfg.max_reconnects = 3;
  cfg.reconnect_backoff = std::chrono::milliseconds(2);
  cfg.dialer = [&dials](const shard::HostSpec&,
                        std::string& error) -> std::unique_ptr<shard::Transport> {
    ++dials;
    error = "connection refused";
    return nullptr;
  };
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  expect_identical(got, want, "unreachable-host");
  EXPECT_EQ(dials, 3u);  // the budget, exactly — backoff never spins free retries.
  EXPECT_EQ(stats.fallback_trials, spec.trials);
  EXPECT_EQ(stats.remote_workers, 0u);
}

TEST(NetFault, EveryRemoteDyingShiftsWorkInProcess) {
  const auto spec = mix_spec(0xDEAD, 16);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::FaultPlan plan;
  plan.seed = 9;
  // Aggressive but not certain per frame: some sessions survive the
  // welcome, then die on the next frames — deaths AND handshake
  // rejections both drain the dial budget until nothing remote is left.
  plan.disconnect_probability = 0.55;
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(2);
  cfg.max_reconnects = 3;
  cfg.reconnect_backoff = std::chrono::milliseconds(2);
  cfg.dialer = thread_worker_dialer(fleet, &plan);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "all-remotes-gone");
  EXPECT_GT(stats.fallback_trials, 0u);
  EXPECT_GT(stats.worker_deaths, 0u);
}

TEST(NetFault, StaleWorkerIsTurnedAwayAndTheCampaignStillConverges) {
  const auto spec = mix_spec(0x57A1E, 10);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.hosts = fake_hosts(1);
  cfg.max_reconnects = 2;
  cfg.reconnect_backoff = std::chrono::milliseconds(2);
  // Every dialed worker pins a digest from some other campaign.
  cfg.dialer = thread_worker_dialer(fleet, nullptr, /*expect_digest=*/0x1BAD);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "stale-worker");
  EXPECT_EQ(stats.handshakes_rejected, 2u);  // both dial attempts refused.
  EXPECT_EQ(stats.remote_workers, 0u);
  EXPECT_EQ(stats.fallback_trials, spec.trials);
}

TEST(NetFault, MixedLocalProcessesAndThreadHostsStayBitIdentical) {
  const auto spec = mix_spec(0x3117, 44);
  const auto want = reference_run(spec);
  ThreadFleet fleet;
  shard::ShardConfig cfg;
  cfg.processes = 0;  // keep this suite fork-free; MultiHostProc covers the mix.
  cfg.hosts = fake_hosts(3);
  cfg.shard_size = 4;
  cfg.dialer = thread_worker_dialer(fleet);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  fleet.join();
  expect_identical(got, want, "three-thread-hosts");
  EXPECT_EQ(stats.remote_workers, 3u);
  EXPECT_EQ(stats.trials_executed, spec.trials);
}

// ---- real TCP loopback, forked workers (filtered out under TSan) --------

/// Forks a hwsec-shard-worker process in listen mode on an ephemeral port
/// and reports the port the kernel assigned. The child serves sessions
/// until killed (or exits after one when `once`).
pid_t fork_tcp_worker(std::uint16_t& port_out, bool once = false) {
  int port_pipe[2];
  if (pipe(port_pipe) != 0) {
    return -1;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(port_pipe[0]);
    close(port_pipe[1]);
    return -1;
  }
  if (pid == 0) {
    close(port_pipe[0]);
    service::RemoteWorkerOptions options;
    options.listen_port = 0;
    options.serve_forever = !once;
    options.worker_name = "tcp-worker";
    options.on_listening = [fd = port_pipe[1]](std::uint16_t port) {
      (void)!write(fd, &port, sizeof(port));
      close(fd);
    };
    _exit(service::run_remote_worker(options));
  }
  close(port_pipe[1]);
  std::uint16_t port = 0;
  const ssize_t n = read(port_pipe[0], &port, sizeof(port));
  close(port_pipe[0]);
  if (n != sizeof(port)) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    return -1;
  }
  port_out = port;
  return pid;
}

void reap_worker(pid_t pid) {
  if (pid > 0) {
    kill(pid, SIGTERM);
    // SIGTERM only interrupts a listening worker between sessions; escalate
    // so the test never wedges on a worker mid-poll.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
  }
}

TEST(MultiHostProc, LoopbackEquivalenceMatrixAcrossHostCounts) {
  const auto spec = mix_spec(0x10CA1, 60);
  const auto want = reference_run(spec);
  for (const std::size_t n_hosts : {1u, 2u, 4u}) {
    std::vector<pid_t> workers;
    service::CampaignSpec remote = spec;
    for (std::size_t i = 0; i < n_hosts; ++i) {
      std::uint16_t port = 0;
      const pid_t pid = fork_tcp_worker(port);
      ASSERT_GT(pid, 0) << "worker " << i;
      workers.push_back(pid);
      remote.hosts.push_back("127.0.0.1:" + std::to_string(port));
    }
    // Through the same entry point hwsecd uses: the spec's host list
    // routes the campaign onto the wire.
    const auto got = service::run_spec(remote, core::ResilienceConfig{});
    expect_identical(got, want, "loopback hosts=" + std::to_string(n_hosts));
    for (const pid_t pid : workers) {
      reap_worker(pid);
    }
  }
}

TEST(MultiHostProc, WorkerSigkillMidCampaignMigratesToSurvivors) {
  service::CampaignSpec spec = mix_spec(0x516C11, 48);
  const auto want = reference_run(spec);
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  const pid_t worker_a = fork_tcp_worker(port_a);
  const pid_t worker_b = fork_tcp_worker(port_b);
  ASSERT_GT(worker_a, 0);
  ASSERT_GT(worker_b, 0);

  shard::ShardConfig cfg;
  cfg.processes = 0;
  std::string error;
  ASSERT_TRUE(shard::parse_hosts("127.0.0.1:" + std::to_string(port_a) + ",127.0.0.1:" +
                                     std::to_string(port_b),
                                 cfg.hosts, error))
      << error;
  cfg.shard_size = 4;
  cfg.max_reconnects = 1;  // the killed worker stays dead; survivors absorb.
  // Pace trials so the kill lands mid-campaign deterministically enough.
  spec.trial_delay_us = 3000;

  std::thread assassin([worker_a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    kill(worker_a, SIGKILL);
  });
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  assassin.join();

  // The reference must use the SAME spec bytes (trial_delay_us changed).
  const auto paced_want = reference_run(spec);
  expect_identical(got, paced_want, "sigkill-migration");
  expect_identical(got, want, "pacing-must-not-change-results");
  EXPECT_GT(stats.worker_deaths, 0u);
  EXPECT_GT(stats.migrations, 0u);
  reap_worker(worker_a);
  reap_worker(worker_b);
}

TEST(MultiHostProc, CheckpointResumeAcrossADifferentHostCount) {
  const std::string path = ckpt_path("shard_net_resume");
  std::remove(path.c_str());
  const auto spec = mix_spec(0xC4EC, 24);
  const auto want = reference_run(spec);

  // Hand-build a partial checkpoint (the artifact a killed 1-host run
  // leaves behind), then finish on TWO hosts.
  core::CheckpointFile partial(spec.seed, spec.trials, sizeof(service::ServiceTrialResult));
  std::size_t prefilled = 0;
  for (std::size_t i = 0; i < spec.trials; i += 3) {
    core::CheckpointRecord rec;
    rec.ok = true;
    const service::ServiceTrialResult v = want[i].value();
    rec.payload.assign(reinterpret_cast<const char*>(&v), sizeof(v));
    partial.record(i, rec);
    ++prefilled;
  }
  ASSERT_TRUE(partial.save(path));

  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  const pid_t worker_a = fork_tcp_worker(port_a);
  const pid_t worker_b = fork_tcp_worker(port_b);
  ASSERT_GT(worker_a, 0);
  ASSERT_GT(worker_b, 0);

  shard::ShardConfig cfg;
  cfg.processes = 0;
  std::string error;
  ASSERT_TRUE(shard::parse_hosts("127.0.0.1:" + std::to_string(port_a) + ",127.0.0.1:" +
                                     std::to_string(port_b),
                                 cfg.hosts, error))
      << error;
  cfg.shard_size = 5;
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats, res);
  expect_identical(got, want, "resume-two-hosts");
  EXPECT_EQ(stats.trials_executed, spec.trials - prefilled);
  for (std::size_t i = 0; i < spec.trials; i += 3) {
    EXPECT_TRUE(got[i].from_checkpoint) << "slot " << i;
  }
  reap_worker(worker_a);
  reap_worker(worker_b);
  std::remove(path.c_str());
}

TEST(MultiHostProc, InboundWorkerDialsAListeningSupervisor) {
  const auto spec = mix_spec(0x1B0, 20);
  const auto want = reference_run(spec);

  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.listen = true;
  cfg.listen_port = 0;
  cfg.listen_grace = std::chrono::milliseconds(10000);
  pid_t worker = -1;
  cfg.on_listening = [&worker](std::uint16_t port) {
    // The supervisor's port exists only now: launch the worker that dials
    // back in (the --connect direction of the tool).
    worker = fork();
    if (worker == 0) {
      service::RemoteWorkerOptions options;
      options.connect_host = "127.0.0.1";
      options.connect_port = port;
      options.worker_name = "dialer";
      _exit(service::run_remote_worker(options));
    }
  };
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  expect_identical(got, want, "inbound-worker");
  EXPECT_EQ(stats.remote_workers, 1u);
  EXPECT_EQ(stats.trials_executed, spec.trials);
  EXPECT_EQ(stats.fallback_trials, 0u);
  ASSERT_GT(worker, 0);
  int status = 0;
  waitpid(worker, &status, 0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(MultiHostProc, ListenGraceExpiresIntoFallbackWhenNobodyDials) {
  const auto spec = mix_spec(0x9A4CE, 8);
  const auto want = reference_run(spec);
  shard::ShardConfig cfg;
  cfg.processes = 0;
  cfg.listen = true;
  cfg.listen_port = 0;
  cfg.listen_grace = std::chrono::milliseconds(150);
  shard::ShardStats stats;
  const auto got = run_sharded_spec(spec, cfg, &stats);
  expect_identical(got, want, "listen-grace-fallback");
  EXPECT_EQ(stats.remote_workers, 0u);
  EXPECT_EQ(stats.fallback_trials, spec.trials);
}

}  // namespace
