#include "core/shard/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <deque>
#include <thread>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/shard/wire.h"
#include "core/shutdown.h"

namespace hwsec::core::shard::detail_shard {

namespace {

struct Obs {
  static const obs::Counter& assignments() {
    static const obs::Counter c = obs::counter("shard_assignments");
    return c;
  }
  static const obs::Counter& migrations() {
    static const obs::Counter c = obs::counter("shard_migrations");
    return c;
  }
  static const obs::Counter& deaths() {
    static const obs::Counter c = obs::counter("shard_worker_deaths");
    return c;
  }
  static const obs::Counter& hangs() {
    static const obs::Counter c = obs::counter("shard_worker_hangs");
    return c;
  }
  static const obs::Counter& respawns() {
    static const obs::Counter c = obs::counter("shard_worker_respawns");
    return c;
  }
  static const obs::Counter& duplicates() {
    static const obs::Counter c = obs::counter("shard_duplicate_trials");
    return c;
  }
  static const obs::Counter& fallback() {
    static const obs::Counter c = obs::counter("shard_fallback_trials");
    return c;
  }
  static const obs::Gauge& live_workers() {
    static const obs::Gauge g = obs::gauge("shard_live_workers");
    return g;
  }
  static const obs::Gauge& heartbeat_age_ms() {
    static const obs::Gauge g = obs::gauge("shard_heartbeat_age_ms");
    return g;
  }
};

using Clock = std::chrono::steady_clock;

struct Assignment {
  std::uint64_t shard_id = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t attempt = 0;   ///< how many times this range was (re)assigned before.
  bool split_done = false;     ///< straggler tail already migrated once.
};

struct WorkerProc {
  pid_t pid = -1;
  int cmd_fd = -1;  ///< supervisor -> worker.
  int out_fd = -1;  ///< worker -> supervisor.
  FrameBuffer inbuf;
  Clock::time_point last_seen;
  std::optional<Assignment> current;
  bool alive = false;
  bool kill_sent = false;  ///< hang detector already SIGKILLed it.

  bool idle() const { return alive && !current.has_value(); }
};

class Supervisor {
 public:
  Supervisor(const ShardJob& job, const ShardConfig& config, const ResilienceConfig& res)
      : job_(job),
        config_(config),
        res_(res),
        checkpointing_(!res.checkpoint_path.empty()),
        checkpoint_(job.seed, job.trials, job.result_bytes, res.checkpoint_scope) {}

  SupervisorResult run() {
    obs::Span span("shard_campaign", static_cast<std::int64_t>(job_.trials), "trials");
    load_checkpoint();
    plan_shards();

    if (config_.processes == 0) {
      run_fallback();
      finish();
      return std::move(result_);
    }

    SigpipeIgnore no_sigpipe;
    workers_.resize(config_.processes);
    for (auto& worker : workers_) {
      spawn(worker);
    }

    while (!done() && !should_stop()) {
      pump_events();
      reap_exits();
      detect_hangs();
      respawn_dead();
      assign_work();
      migrate_stragglers();
    }

    shutdown_fleet();
    if (!done() && !result_.shutdown && !result_.failfast_tripped) {
      // Every fork avenue is exhausted but trials remain: finish them here.
      // Robustness means the campaign converges even with zero workers.
      run_fallback();
    }
    finish();
    return std::move(result_);
  }

 private:
  // ---- planning ---------------------------------------------------------

  void load_checkpoint() {
    if (!checkpointing_ || !checkpoint_.load(res_.checkpoint_path)) {
      return;
    }
    for (const auto& [index, rec] : checkpoint_.records()) {
      result_.records[index] = rec;
      result_.restored.insert(index);
    }
  }

  void plan_shards() {
    const std::size_t auto_size =
        config_.processes == 0
            ? job_.trials
            : std::max<std::size_t>(1, job_.trials / (std::size_t{config_.processes} * 4));
    const std::size_t shard_size =
        config_.shard_size == 0 ? std::max<std::size_t>(1, auto_size) : config_.shard_size;
    std::uint64_t next_id = 0;
    for (std::size_t begin = 0; begin < job_.trials; begin += shard_size) {
      const std::size_t end = std::min(job_.trials, begin + shard_size);
      // Skip shards whose every trial is already restored from checkpoint.
      bool has_pending = false;
      for (std::size_t i = begin; i < end && !has_pending; ++i) {
        has_pending = result_.records.count(i) == 0;
      }
      if (has_pending) {
        pending_.push_back(Assignment{next_id, begin, end, 0, false});
      }
      ++next_id;
    }
    result_.stats.shards_total = pending_.size();
  }

  bool done() const { return result_.records.size() == job_.trials; }

  bool should_stop() {
    if (shutdown_requested()) {
      result_.shutdown = true;
      return true;
    }
    if (result_.failfast_tripped) {
      // Drain: stop once no worker still holds a shard (in-flight shards
      // finish and their slots are recorded/checkpointed, matching the
      // in-process fail-fast contract).
      return std::none_of(workers_.begin(), workers_.end(),
                          [](const WorkerProc& w) { return w.alive && w.current; });
    }
    // No way to make progress? (all dead, respawn budget gone) -> fallback.
    const bool any_alive = std::any_of(workers_.begin(), workers_.end(),
                                       [](const WorkerProc& w) { return w.alive; });
    return !any_alive && result_.stats.worker_respawns >= config_.max_respawns;
  }

  // ---- process management ----------------------------------------------

  void spawn(WorkerProc& worker) {
    int cmd_pipe[2];
    int out_pipe[2];
    if (pipe(cmd_pipe) != 0) {
      return;
    }
    if (pipe(out_pipe) != 0) {
      close(cmd_pipe[0]);
      close(cmd_pipe[1]);
      return;
    }
    const pid_t pid = fork();
    if (pid < 0) {
      for (const int fd : {cmd_pipe[0], cmd_pipe[1], out_pipe[0], out_pipe[1]}) {
        close(fd);
      }
      return;
    }
    if (pid == 0) {
      // Child: keep only our two pipe ends, drop every other worker's.
      close(cmd_pipe[1]);
      close(out_pipe[0]);
      for (const WorkerProc& other : workers_) {
        if (other.cmd_fd >= 0) close(other.cmd_fd);
        if (other.out_fd >= 0) close(other.out_fd);
      }
      WorkerEnv env;
      env.heartbeat_interval = config_.heartbeat_interval;
      env.chaos = res_.chaos;
      int code = 1;
      try {
        const TrialRunner runner = job_.make_runner();
        code = worker_loop(cmd_pipe[0], out_pipe[1], env, runner);
      } catch (...) {
        code = 4;  // runner construction failed; supervisor migrates.
      }
      _exit(code);  // never unwind into the forked parent's state.
    }
    close(cmd_pipe[0]);
    close(out_pipe[1]);
    fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
    worker = WorkerProc{};
    worker.pid = pid;
    worker.cmd_fd = cmd_pipe[1];
    worker.out_fd = out_pipe[0];
    worker.last_seen = Clock::now();
    worker.alive = true;
    Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
  }

  std::size_t live_count() const {
    return static_cast<std::size_t>(std::count_if(
        workers_.begin(), workers_.end(), [](const WorkerProc& w) { return w.alive; }));
  }

  void close_worker_fds(WorkerProc& worker) {
    if (worker.cmd_fd >= 0) {
      close(worker.cmd_fd);
      worker.cmd_fd = -1;
    }
    if (worker.out_fd >= 0) {
      close(worker.out_fd);
      worker.out_fd = -1;
    }
  }

  /// A worker stopped being useful (exit, hang-kill, corrupt stream):
  /// salvage its unfinished shard for the survivors and account the death.
  void handle_death(WorkerProc& worker, bool hang) {
    if (!worker.alive) {
      return;
    }
    worker.alive = false;
    close_worker_fds(worker);
    if (stopping_) {
      // Told to exit; an exit during teardown is obedience, not a death.
      Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
      return;
    }
    result_.stats.worker_deaths += 1;
    Obs::deaths().add(1);
    if (hang) {
      result_.stats.worker_hangs += 1;
      Obs::hangs().add(1);
    }
    obs::Tracer::instance().instant(hang ? "shard_worker_hang" : "shard_worker_death",
                                    static_cast<std::int64_t>(worker.pid), "pid");
    if (worker.current.has_value()) {
      Assignment migrated = *worker.current;
      migrated.attempt += 1;
      migrated.split_done = false;
      worker.current.reset();
      if (has_pending_trials(migrated)) {
        pending_.push_front(migrated);  // recover lost work first.
        result_.stats.migrations += 1;
        Obs::migrations().add(1);
      }
    }
    Obs::live_workers().set(static_cast<std::int64_t>(live_count()));
  }

  void reap_exits() {
    for (auto& worker : workers_) {
      if (worker.pid < 0) {
        continue;
      }
      int status = 0;
      const pid_t got = waitpid(worker.pid, &status, WNOHANG);
      if (got == worker.pid) {
        worker.pid = -1;
        handle_death(worker, /*hang=*/worker.kill_sent);
      }
    }
  }

  void detect_hangs() {
    if (config_.hang_timeout.count() <= 0) {
      return;
    }
    const auto now = Clock::now();
    std::int64_t max_age_ms = 0;
    for (auto& worker : workers_) {
      if (!worker.alive || worker.kill_sent) {
        continue;
      }
      const auto age =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - worker.last_seen);
      max_age_ms = std::max<std::int64_t>(max_age_ms, age.count());
      if (age > config_.hang_timeout) {
        // SIGKILL works on stopped processes too — this is the SIGSTOP
        // recovery path. The death is accounted when waitpid reaps it.
        kill(worker.pid, SIGKILL);
        worker.kill_sent = true;
      }
    }
    Obs::heartbeat_age_ms().set(max_age_ms);
  }

  void respawn_dead() {
    if (pending_.empty() && done()) {
      return;
    }
    const auto now = Clock::now();
    for (auto& worker : workers_) {
      if (worker.alive || worker.pid >= 0) {
        continue;  // alive, or dead-but-unreaped.
      }
      if (result_.stats.worker_respawns >= config_.max_respawns) {
        return;
      }
      if (!respawn_after_.has_value()) {
        // Exponential backoff: 2^respawns * base, capped at 64x.
        const auto shift = std::min<std::uint64_t>(result_.stats.worker_respawns, 6);
        respawn_after_ = now + config_.respawn_backoff * (1 << shift);
      }
      if (now < *respawn_after_) {
        return;  // back off before forking a replacement.
      }
      respawn_after_.reset();
      // The attempt spends budget whether or not fork() succeeds, so a
      // host that cannot fork converges to the in-process fallback instead
      // of spinning on retries forever.
      result_.stats.worker_respawns += 1;
      Obs::respawns().add(1);
      spawn(worker);
      return;  // at most one respawn per loop pass keeps backoff honest.
    }
  }

  // ---- scheduling -------------------------------------------------------

  bool has_pending_trials(const Assignment& shard) const {
    for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
      if (result_.records.count(static_cast<std::size_t>(i)) == 0) {
        return true;
      }
    }
    return false;
  }

  void assign_work() {
    if (result_.failfast_tripped || result_.shutdown) {
      return;
    }
    for (auto& worker : workers_) {
      if (pending_.empty()) {
        return;
      }
      if (!worker.idle()) {
        continue;
      }
      Assignment shard = pending_.front();
      pending_.pop_front();
      if (!has_pending_trials(shard)) {
        continue;  // a duplicate/straggler split fully absorbed elsewhere.
      }
      AssignPayload payload;
      payload.shard_id = shard.shard_id;
      payload.begin = shard.begin;
      payload.end = shard.end;
      payload.attempt = shard.attempt;
      payload.done_mask.assign((shard.end - shard.begin + 7) / 8, 0);
      for (std::uint64_t i = shard.begin; i < shard.end; ++i) {
        if (result_.records.count(static_cast<std::size_t>(i)) != 0) {
          payload.done_mask[static_cast<std::size_t>((i - shard.begin) >> 3)] |=
              static_cast<std::uint8_t>(1u << ((i - shard.begin) & 7));
        }
      }
      if (!write_frame(worker.cmd_fd, Frame{FrameType::kAssign, encode_assign(payload)})) {
        pending_.push_front(shard);
        handle_death(worker, /*hang=*/false);  // EPIPE: it died before we noticed.
        continue;
      }
      worker.current = shard;
      result_.stats.assignments += 1;
      Obs::assignments().add(1);
    }
  }

  /// Straggler migration: the queue is dry, someone is idle, and a busy
  /// worker still owes many trials — peel off the tail half of its
  /// unfinished range for the idle one. Both may compute the overlap;
  /// records merge idempotently because trial bytes are index-pure.
  void migrate_stragglers() {
    if (!pending_.empty() || result_.failfast_tripped) {
      return;
    }
    const bool anyone_idle = std::any_of(workers_.begin(), workers_.end(),
                                         [](const WorkerProc& w) { return w.idle(); });
    if (!anyone_idle) {
      return;
    }
    for (auto& worker : workers_) {
      if (!worker.alive || !worker.current.has_value() || worker.current->split_done) {
        continue;
      }
      std::vector<std::uint64_t> unfinished;
      for (std::uint64_t i = worker.current->begin; i < worker.current->end; ++i) {
        if (result_.records.count(static_cast<std::size_t>(i)) == 0) {
          unfinished.push_back(i);
        }
      }
      if (unfinished.size() < 4) {
        continue;  // not worth the duplicate work.
      }
      Assignment tail;
      tail.shard_id = worker.current->shard_id;
      tail.begin = unfinished[unfinished.size() / 2];
      tail.end = worker.current->end;
      tail.attempt = worker.current->attempt + 1;
      worker.current->split_done = true;
      pending_.push_back(tail);
      result_.stats.migrations += 1;
      Obs::migrations().add(1);
      obs::Tracer::instance().instant("shard_straggler_split",
                                      static_cast<std::int64_t>(tail.begin), "begin");
      return;  // one split per pass.
    }
  }

  // ---- event pump -------------------------------------------------------

  void pump_events() {
    std::vector<pollfd> fds;
    std::vector<WorkerProc*> owners;
    for (auto& worker : workers_) {
      if (worker.alive && worker.out_fd >= 0) {
        fds.push_back(pollfd{worker.out_fd, POLLIN, 0});
        owners.push_back(&worker);
      }
    }
    const int timeout_ms = 20;
    if (fds.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
      return;
    }
    const int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready <= 0) {
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      WorkerProc& worker = *owners[i];
      const bool open = drain_fd(worker.out_fd, worker.inbuf);
      Frame frame;
      while (worker.inbuf.next(frame)) {
        handle_frame(worker, frame);
      }
      if (worker.inbuf.corrupt() || !open) {
        if (worker.inbuf.corrupt() && worker.pid >= 0) {
          kill(worker.pid, SIGKILL);  // desynchronized stream: fail hard.
        }
        // EOF before exit is reaped later; only treat a corrupt stream as
        // an immediate death (EOF alone resolves via waitpid).
        if (worker.inbuf.corrupt()) {
          handle_death(worker, /*hang=*/false);
        }
      }
    }
  }

  void handle_frame(WorkerProc& worker, const Frame& frame) {
    worker.last_seen = Clock::now();
    switch (frame.type) {
      case FrameType::kHeartbeat:
        break;
      case FrameType::kTrial: {
        TrialPayload trial;
        if (!decode_trial(frame.payload, trial) || trial.index >= job_.trials ||
            (trial.record.ok && trial.record.payload.size() != job_.result_bytes)) {
          worker.inbuf = FrameBuffer{};  // poison-equivalent: drop the worker.
          if (worker.pid >= 0) {
            kill(worker.pid, SIGKILL);
          }
          handle_death(worker, /*hang=*/false);
          return;
        }
        record_trial(static_cast<std::size_t>(trial.index), std::move(trial.record));
        break;
      }
      case FrameType::kShardDone: {
        std::uint64_t shard_id = 0;
        if (decode_shard_done(frame.payload, shard_id) && worker.current.has_value() &&
            worker.current->shard_id == shard_id) {
          worker.current.reset();
        }
        break;
      }
      default:
        break;  // forward-compatible: ignore unknown frames from this version.
    }
  }

  void record_trial(std::size_t index, CheckpointRecord rec) {
    if (result_.records.count(index) != 0) {
      result_.stats.duplicate_trials += 1;  // straggler overlap: idempotent.
      Obs::duplicates().add(1);
      return;
    }
    if (!rec.ok && res_.policy == FailurePolicy::kFailFast) {
      result_.failfast_tripped = true;
    }
    if (checkpointing_) {
      checkpoint_.record(index, rec);
      if (++completions_since_save_ >= std::max<std::size_t>(1, res_.checkpoint_every)) {
        completions_since_save_ = 0;
        checkpoint_.save(res_.checkpoint_path);
      }
    }
    result_.records[index] = std::move(rec);
    result_.stats.trials_executed += 1;
  }

  // ---- teardown ---------------------------------------------------------

  void shutdown_fleet() {
    stopping_ = true;
    for (auto& worker : workers_) {
      if (worker.alive && worker.cmd_fd >= 0) {
        write_frame(worker.cmd_fd, Frame{FrameType::kShutdown, {}});
        close(worker.cmd_fd);
        worker.cmd_fd = -1;
      }
    }
    // Grace period: workers drain their current shard, see the shutdown
    // frame (or EOF) and exit; anything still alive after it is killed.
    const auto deadline = Clock::now() + std::chrono::milliseconds(2000);
    while (Clock::now() < deadline) {
      pump_events();  // keep merging records workers flush while draining.
      reap_exits();
      if (std::none_of(workers_.begin(), workers_.end(),
                       [](const WorkerProc& w) { return w.pid >= 0; })) {
        break;
      }
    }
    for (auto& worker : workers_) {
      if (worker.pid >= 0) {
        kill(worker.pid, SIGKILL);
        waitpid(worker.pid, nullptr, 0);
        worker.pid = -1;
        handle_death(worker, /*hang=*/false);
      }
      close_worker_fds(worker);
    }
    Obs::live_workers().set(0);
  }

  void run_fallback() {
    const TrialRunner runner = job_.make_runner();
    for (std::size_t i = 0; i < job_.trials; ++i) {
      if (shutdown_requested()) {
        result_.shutdown = true;
        break;
      }
      if (result_.failfast_tripped) {
        break;
      }
      if (result_.records.count(i) != 0) {
        continue;
      }
      record_trial(i, runner(i));
      result_.stats.fallback_trials += 1;
      Obs::fallback().add(1);
    }
  }

  void finish() {
    if (checkpointing_) {
      checkpoint_.save(res_.checkpoint_path);
    }
  }

  const ShardJob& job_;
  const ShardConfig& config_;
  const ResilienceConfig& res_;
  const bool checkpointing_;
  CheckpointFile checkpoint_;
  std::size_t completions_since_save_ = 0;
  std::deque<Assignment> pending_;
  std::vector<WorkerProc> workers_;
  std::optional<Clock::time_point> respawn_after_;
  bool stopping_ = false;
  SupervisorResult result_;
};

}  // namespace

SupervisorResult run_sharded(const ShardJob& job, const ShardConfig& config,
                             const ResilienceConfig& res) {
  if (job.make_runner == nullptr) {
    throw SimError(ErrorKind::kConfigError, "sharded campaign without a trial runner");
  }
  Supervisor supervisor(job, config, res);
  return supervisor.run();
}

}  // namespace hwsec::core::shard::detail_shard
