#include "crypto/rsa.h"

#include "sim/sim_error.h"

namespace hwsec::crypto {

RsaKeyPair rsa_generate(hwsec::sim::Rng& rng, std::uint32_t prime_bits) {
  if (prime_bits < 4 || prime_bits > 31) {
    throw hwsec::SimError(hwsec::ErrorKind::kConfigError, "rsa_generate supports 4..31 prime bits");
  }
  for (int attempts = 0; attempts < 1000; ++attempts) {
    const u64 p = gen_prime(prime_bits, rng);
    const u64 q = gen_prime(prime_bits, rng);
    if (p == q) {
      continue;
    }
    const u64 n = p * q;
    const u64 phi = (p - 1) * (q - 1);
    const u64 e = 65537;
    const auto d = invmod(e, phi);
    if (!d.has_value()) {
      continue;
    }
    RsaKeyPair key;
    key.n = n;
    key.e = e;
    key.d = *d;
    key.p = p;
    key.q = q;
    key.dp = *d % (p - 1);
    key.dq = *d % (q - 1);
    key.q_inv = invmod(q, p).value();
    return key;
  }
  throw hwsec::SimError(hwsec::ErrorKind::kInternalError,
                        "rsa_generate failed to find a valid key pair in 1000 attempts");
}

u64 rsa_public(u64 m, const RsaKeyPair& key) { return powmod(m, key.e, key.n); }

u64 rsa_private_naive(u64 c, const RsaKeyPair& key, const Instrumentation& instr) {
  const Montgomery mont(key.n);
  const u64 c_mont = mont.to_mont(c % key.n);
  u64 acc = mont.one();
  bool extra = false;
  // MSB-first square-and-multiply: square every bit, multiply on 1-bits.
  int top = 63;
  while (top >= 0 && ((key.d >> top) & 1) == 0) {
    --top;
  }
  for (int bit = top; bit >= 0; --bit) {
    acc = mont.mul(acc, acc, &extra);
    instr.do_tick(kSquareCost + (extra ? kExtraReductionCost : 0));
    if ((key.d >> bit) & 1) {
      acc = mont.mul(acc, c_mont, &extra);
      instr.do_tick(kMultiplyCost + (extra ? kExtraReductionCost : 0));
    }
  }
  return mont.from_mont(acc);
}

u64 rsa_private_ladder(u64 c, const RsaKeyPair& key, const Instrumentation& instr) {
  const Montgomery mont(key.n);
  const u64 c_mont = mont.to_mont(c % key.n);
  // Montgomery ladder over all 64 bit positions: one ct-multiply and one
  // ct-square per bit regardless of the exponent, selected by masking.
  u64 r0 = mont.one();
  u64 r1 = c_mont;
  for (int bit = 63; bit >= 0; --bit) {
    const u64 b = (key.d >> bit) & 1;
    const u64 mask = static_cast<u64>(-static_cast<std::int64_t>(b));
    const u64 product = mont.mul_ct(r0, r1);
    const u64 sq0 = mont.mul_ct(r0, r0);
    const u64 sq1 = mont.mul_ct(r1, r1);
    r0 = (product & mask) | (sq0 & ~mask);
    r1 = (sq1 & mask) | (product & ~mask);
    instr.do_tick(kSquareCost + kMultiplyCost);  // uniform cost per bit.
  }
  return mont.from_mont(r0);
}

namespace {

u64 crt_combine(u64 sp, u64 sq, const RsaKeyPair& key) {
  // Garner: s = sq + q * ((sp - sq) * q_inv mod p).
  const u64 sp_mod_p = sp % key.p;
  const u64 sq_mod_p = sq % key.p;
  const u64 diff = (sp_mod_p + key.p - sq_mod_p) % key.p;
  const u64 h = mulmod(diff, key.q_inv, key.p);
  return sq + key.q * h;
}

}  // namespace

u64 rsa_sign_crt(u64 m, const RsaKeyPair& key, const Instrumentation& instr) {
  u64 sp = powmod(m % key.p, key.dp, key.p);
  const u64 sq = powmod(m % key.q, key.dq, key.q);
  // The p-half intermediate passes through the fault hook (as 32-bit
  // halves, since the injector operates on machine words).
  const u64 lo = instr.do_fault(static_cast<std::uint32_t>(sp));
  const u64 hi = instr.do_fault(static_cast<std::uint32_t>(sp >> 32));
  sp = (hi << 32) | lo;
  return crt_combine(sp, sq, key);
}

u64 rsa_sign_crt_checked(u64 m, const RsaKeyPair& key, const Instrumentation& instr) {
  const u64 s = rsa_sign_crt(m, key, instr);
  if (powmod(s, key.e, key.n) != m % key.n) {
    return 0;  // fault detected: refuse to release the signature.
  }
  return s;
}

}  // namespace hwsec::crypto
