// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (random cache replacement, leakage noise,
// glitch fault injection) draws from an explicitly seeded Rng so that
// experiments are reproducible run-to-run. The generator is xoshiro256**,
// seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <cmath>

namespace hwsec::sim {

/// One splitmix64 step: advances `state` and returns the next value of the
/// stream. The standard seed-expansion / seed-derivation primitive.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives the seed of stream element `index` from a base seed. Each index
/// yields a statistically independent seed, and the mapping depends only on
/// (base_seed, index) — the property the parallel campaign engine relies on
/// to make trial results independent of worker count and scheduling.
inline std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  std::uint64_t state = base_seed ^ (0xd1b54a32d192ed03ull * (index + 1));
  std::uint64_t s = splitmix64(state);
  return s ^ splitmix64(state);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal deviate (Box–Muller; one value per call, the twin
  /// is cached).
  double gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-12);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586;
    spare_ = mag * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return mag * std::cos(kTwoPi * u2);
  }

  /// Gaussian with explicit mean / standard deviation.
  double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace hwsec::sim
