// Multi-process sharded campaign supervisor.
//
// run_campaign_sharded splits a campaign's trial range into seed-sharded
// chunks, forks N worker processes (each with its own MachinePool and
// WallClockMonitor), feeds them shard assignments over pipes using the
// versioned wire format in wire.h, and merges the per-shard outcome
// streams deterministically: trial i's record is a pure function of
// (campaign seed, i) — the same detail::execute_trial the in-process
// resilient runner uses — so the merged vector is bit-identical to the
// 1-process run at any shard count and any worker count.
//
// Robustness is the contract (the failure matrix lives in DESIGN.md S21):
//  * worker crash  — waitpid notices the exit; unfinished trials of its
//    in-flight shard are re-enqueued for survivors (a retry-policy event,
//    not an error) and the worker is respawned under an exponential-backoff
//    budget;
//  * worker hang   — a heartbeat thread in each worker beats every
//    heartbeat_interval; a worker whose last beat is older than
//    hang_timeout is SIGKILLed and handled as a crash (this is how a
//    SIGSTOP — or a scheduler wedge — is caught);
//  * straggler     — when the queue drains and a worker still holds many
//    unfinished trials, the tail half of its shard is migrated to an idle
//    survivor; duplicate completions are idempotent because both processes
//    compute identical bytes for the same index;
//  * supervisor crash — completed trials are persisted through the
//    existing atomic checkpoint layer (CheckpointFile keyed by the
//    campaign identity); a restarted supervisor reloads it and re-executes
//    only missing slots, at any new worker/shard count;
//  * total worker loss — when the respawn budget is exhausted the
//    supervisor finishes the remaining trials in-process, so the campaign
//    converges even if every fork dies.
//
// Graceful shutdown: SIGTERM/SIGINT (install_graceful_shutdown) stops
// shard assignment, drains workers, saves a final checkpoint, and returns
// the partial outcome vector with unfinished slots marked `skipped`.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "core/resilience/resilient.h"
#include "core/shard/net.h"
#include "core/shard/worker.h"

namespace hwsec::core::shard {

struct ShardConfig {
  /// Worker processes to fork. 1 still exercises the full fork/pipe path;
  /// 0 runs everything in-process (degenerate, for comparison harnesses)
  /// unless remote hosts are configured below.
  unsigned processes = 2;
  /// Trials per shard. 0 = auto: spread the campaign so each worker sees
  /// several shards (max(1, trials / (processes * 4))) — small enough for
  /// migration to matter, large enough to amortize frame traffic.
  std::size_t shard_size = 0;
  /// Worker heartbeat period (liveness beacons on the result pipe).
  std::chrono::milliseconds heartbeat_interval{25};
  /// A worker silent for longer than this is presumed hung, SIGKILLed
  /// (local) or disconnected (remote), and its shard migrated. 0 disables
  /// hang detection (crash-only recovery).
  std::chrono::milliseconds hang_timeout{2000};
  /// Total worker respawns allowed across the campaign (the retry budget
  /// of the process layer). Exhausting it shifts remaining work in-process.
  unsigned max_respawns = 8;
  /// Base respawn delay; doubles per respawn already spent (capped at
  /// 64x), so a crash-looping fleet backs off instead of fork-bombing.
  std::chrono::milliseconds respawn_backoff{5};

  // ---- multi-host (core/shard/net.h) ------------------------------------
  // Remote workers extend the failure matrix, never the result: an N-host
  // run is bit-identical to the 1-process run because trial i is a pure
  // function of (campaign seed, i) on every host.

  /// Remote worker endpoints the supervisor dials (each a listening
  /// hwsec-shard-worker). One worker slot per host.
  std::vector<HostSpec> hosts;
  /// Canonical campaign spec JSON shipped to remote workers in the
  /// kWelcome frame; its fnv1a64 is the campaign-identity digest. Empty =
  /// this campaign cannot accept remote workers (dialing/listening with an
  /// empty spec is a config error; inbound workers would be rejected).
  std::string remote_spec_json;
  /// Dial attempts per host across the campaign (the initial dial included
  /// — the network analogue of max_respawns). Exhausting every host's
  /// budget with no local workers left shifts remaining work in-process.
  unsigned max_reconnects = 4;
  /// Base re-dial delay; doubles per attempt already spent on that host
  /// (capped at 64x).
  std::chrono::milliseconds reconnect_backoff{25};
  /// TCP connect() wait per dial attempt.
  std::chrono::milliseconds connect_timeout{1000};
  /// Wait for the peer's half of the handshake.
  std::chrono::milliseconds handshake_timeout{2000};

  /// Accept inbound workers (hwsec-shard-worker --connect) on
  /// listen_address:listen_port (port 0 = kernel-assigned; read it from
  /// the on_listening callback).
  bool listen = false;
  std::string listen_address = "127.0.0.1";
  std::uint16_t listen_port = 0;
  std::function<void(std::uint16_t port)> on_listening;
  /// Inbound workers admitted at once (a loopback port is reachable by
  /// anything on the box; the handshake gates identity, this gates count).
  std::size_t max_inbound_workers = 16;
  /// Listen-mode liveness horizon: with no worker alive and none connected
  /// for this long, the supervisor stops waiting for inbound workers and
  /// falls back in-process (a listener alone must not stall a campaign
  /// forever).
  std::chrono::milliseconds listen_grace{2000};

  /// Test seam: replaces tcp_connect for dialed hosts (in-thread workers
  /// over socketpairs — how the fault matrix runs without real processes).
  std::function<std::unique_ptr<Transport>(const HostSpec& host, std::string& error)> dialer;
  /// Test seam: wraps every remote transport right after creation (before
  /// the handshake), e.g. in a FaultyTransport.
  std::function<std::unique_ptr<Transport>(std::unique_ptr<Transport>)> transport_decorator;
};

/// Recovery/scheduling telemetry for one sharded run (also exported as obs
/// counters: shard_assignments, shard_migrations, shard_worker_respawns,
/// shard_worker_deaths, shard_worker_hangs, shard_duplicate_trials,
/// shard_fallback_trials).
struct ShardStats {
  std::uint64_t shards_total = 0;       ///< shards in the initial plan.
  std::uint64_t assignments = 0;        ///< assignment frames sent (incl. re-assignments).
  std::uint64_t migrations = 0;         ///< shards re-enqueued after a death/hang/straggler split.
  std::uint64_t worker_deaths = 0;      ///< workers that exited without being told to.
  std::uint64_t worker_hangs = 0;       ///< workers killed by the heartbeat-age detector.
  std::uint64_t worker_respawns = 0;    ///< replacement workers forked.
  std::uint64_t duplicate_trials = 0;   ///< idempotently-ignored duplicate records.
  std::uint64_t fallback_trials = 0;    ///< trials finished in-process after worker loss.
  std::uint64_t trials_executed = 0;    ///< fresh trial records (not checkpoint-restored).
  std::uint64_t remote_workers = 0;     ///< remote links that completed the handshake.
  std::uint64_t remote_reconnects = 0;  ///< re-dial attempts after a remote death.
  std::uint64_t handshakes_rejected = 0;  ///< inbound/dialed handshakes refused or broken.
};

namespace detail_shard {

/// Type-erased campaign the supervisor core runs (the Result type lives
/// only in the template wrapper below).
struct ShardJob {
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t result_bytes = 0;
  /// Builds a trial runner. Called once inside each forked worker (so every
  /// worker owns a private MachinePool) and once more for the in-process
  /// fallback path.
  std::function<TrialRunner()> make_runner;
};

struct SupervisorResult {
  std::map<std::size_t, CheckpointRecord> records;  ///< merged, keyed by trial index.
  std::set<std::size_t> restored;                   ///< loaded from checkpoint, not re-run.
  ShardStats stats;
  bool shutdown = false;       ///< graceful shutdown left trials unfinished.
  bool failfast_tripped = false;  ///< kFailFast saw a failed record.
};

/// The supervisor core: fork, schedule, supervise, merge. Implemented in
/// supervisor.cpp; deterministic merge is by trial index.
SupervisorResult run_sharded(const ShardJob& job, const ShardConfig& config,
                             const ResilienceConfig& res);

}  // namespace detail_shard

/// Sharded analogue of run_campaign_resilient. Same determinism contract —
/// and additionally bit-identical to the in-process runner itself, which
/// bench_campaign and test_shard assert. Requires a trivially copyable
/// Result (records cross a process boundary). CampaignConfig::workers is
/// ignored: inside a worker process trials run sequentially; parallelism
/// is the process count.
///
/// Under FailurePolicy::kFailFast the supervisor stops scheduling once a
/// failed record arrives and the lowest-index SimError is thrown after the
/// fleet drains (matching the in-process runner's contract).
template <typename Result>
std::vector<TrialOutcome<Result>> run_campaign_sharded(
    const CampaignConfig& config, const ResilienceConfig& res, const ShardConfig& shard,
    const std::function<Result(const TrialContext&)>& body, ShardStats* stats_out = nullptr) {
  static_assert(std::is_default_constructible_v<Result>,
                "sharded campaigns rebuild Result values from wire bytes");
  if constexpr (!std::is_trivially_copyable_v<Result>) {
    throw SimError(ErrorKind::kConfigError,
                   "sharded campaigns require a trivially copyable Result type");
  } else {
    detail_shard::ShardJob job;
    job.seed = config.seed;
    job.trials = config.trials;
    job.result_bytes = sizeof(Result);
    job.make_runner = [&config, &res, &body]() -> TrialRunner {
      // One pool + monitor per worker process (and per fallback episode).
      auto machines = std::make_shared<MachinePool>();
      auto monitor = std::make_shared<WallClockMonitor>(res.wall_clock_timeout);
      return [machines, monitor, &config, &res, &body](std::size_t index) {
        const TrialOutcome<Result> out = detail::execute_trial<Result>(
            index, config.seed, res, machines.get(), *monitor, body);
        CheckpointRecord rec;
        rec.attempts = out.attempts;
        if (out.ok()) {
          rec.ok = true;
          rec.payload.assign(reinterpret_cast<const char*>(&*out.result), sizeof(Result));
        } else {
          rec.ok = false;
          rec.kind = static_cast<std::uint8_t>(out.error->kind());
          rec.detail = out.error->detail();
          rec.machine = out.error->machine();
        }
        return rec;
      };
    };

    const detail_shard::SupervisorResult merged = detail_shard::run_sharded(job, shard, res);
    if (stats_out != nullptr) {
      *stats_out = merged.stats;
    }

    std::vector<TrialOutcome<Result>> outcomes(config.trials);
    for (std::size_t i = 0; i < config.trials; ++i) {
      const auto it = merged.records.find(i);
      if (it == merged.records.end()) {
        outcomes[i].skipped = true;  // graceful shutdown or fail-fast drain.
        continue;
      }
      const CheckpointRecord& rec = it->second;
      TrialOutcome<Result>& out = outcomes[i];
      out.attempts = rec.attempts;
      out.from_checkpoint = merged.restored.count(i) != 0;
      if (rec.ok) {
        Result restored{};
        std::memcpy(&restored, rec.payload.data(), sizeof(Result));
        out.result = restored;
      } else {
        SimError err(static_cast<ErrorKind>(rec.kind), rec.detail);
        if (!rec.machine.empty()) {
          err.with_machine(rec.machine);
        }
        err.with_trial(i, hwsec::sim::derive_seed(config.seed, i));
        out.error = std::move(err);
      }
    }
    if (merged.failfast_tripped) {
      for (const auto& out : outcomes) {
        if (out.error.has_value()) {
          throw *out.error;  // lowest index wins: outcomes iterate in order.
        }
      }
    }
    return outcomes;
  }
}

}  // namespace hwsec::core::shard
