// SCA toolbox: statistics, recorder leakage models, and CPA/DPA engines
// on synthetic and real instrumented traces.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "attacks/physical/power_analysis.h"
#include "sca/cpa.h"
#include "sca/recorder.h"
#include "sca/second_order.h"
#include "sca/stats.h"

namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;
namespace attacks = hwsec::attacks;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(Stats, HammingWeightAndDistance) {
  EXPECT_EQ(sca::hamming_weight(0), 0u);
  EXPECT_EQ(sca::hamming_weight(0xFFFFFFFF), 32u);
  EXPECT_EQ(sca::hamming_weight(0b1011), 3u);
  EXPECT_EQ(sca::hamming_distance(0b1100, 0b1010), 2u);
}

TEST(Stats, MeanVariance) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  const auto mv = sca::mean_variance(xs);
  EXPECT_DOUBLE_EQ(mv.mean, 5.0);
  EXPECT_NEAR(mv.variance, 4.571, 0.01);  // unbiased.
}

TEST(Stats, PearsonPerfectAndNone) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  const std::vector<double> anti = {10, 8, 6, 4, 2};
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_NEAR(sca::pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(sca::pearson(xs, anti), -1.0, 1e-12);
  EXPECT_EQ(sca::pearson(xs, flat), 0.0);
}

TEST(Stats, OffsetVarianceSurvivesLargeDcComponent) {
  // Regression for the naive-accumulation bug: a power trace's samples ride
  // on a huge DC baseline. At offset 1e9 with a 1e-3 signal over 1e5
  // samples, the old `sum += x` / `ss += d*d` code reported variance
  // ~1.25e-6 against a true ~1.0e-6 (25% off); the shifted, compensated
  // accumulators recover it to ~1e-7 relative.
  constexpr std::size_t kN = 100000;
  constexpr double kOffset = 1e9 + 0.7;  // non-dyadic: partial sums must round.
  constexpr double kAmplitude = 1e-3;
  std::vector<double> xs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = kOffset + (i < kN / 2 ? kAmplitude : -kAmplitude);
  }
  // Exact reference from the block structure: deviations are +-amplitude
  // around the (stored-value) mean, up to the rounding of the inputs.
  long double mean = 0.0L;
  for (const double x : xs) {
    mean += static_cast<long double>(x) / kN;
  }
  long double ss = 0.0L;
  for (const double x : xs) {
    const long double d = static_cast<long double>(x) - mean;
    ss += d * d;
  }
  const double expected = static_cast<double>(ss / (kN - 1));

  const auto mv = sca::mean_variance(xs);
  EXPECT_NEAR(mv.mean, static_cast<double>(mean), 1e-6);
  EXPECT_NEAR(mv.variance, expected, expected * 1e-3);  // old code: ~25% off.
}

TEST(Stats, OffsetPearsonStaysExact) {
  // Perfectly correlated series at a 1e9 baseline must still give rho = 1.
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double signal = static_cast<double>(i % 17) * 1e-3;
    xs[i] = 1e9 + 0.7 + signal;
    ys[i] = 2e9 + 0.3 + 2.0 * signal;
  }
  EXPECT_NEAR(sca::pearson(xs, ys), 1.0, 1e-9);
}

TEST(Stats, CorrelateHypothesisRejectsRaggedTraces) {
  // A ragged matrix must fail fast with invalid_argument, not surface as a
  // std::out_of_range from a deep at() inside the point loop (the old
  // behavior this test pins down).
  std::vector<sca::Trace> traces = {{1.0, 2.0, 3.0}, {4.0, 5.0}, {6.0, 7.0, 8.0}};
  const std::vector<double> hypothesis = {1.0, 2.0, 3.0};
  EXPECT_THROW(sca::correlate_hypothesis(traces, hypothesis), std::invalid_argument);
}

TEST(Stats, CorrelateHypothesisMatchesPerPointPearson) {
  // The hoisted one-pass hypothesis statistics must agree with the naive
  // per-point pearson() definition.
  hwsec::sim::Rng rng(11);
  std::vector<sca::Trace> traces;
  std::vector<double> hypothesis;
  for (int t = 0; t < 40; ++t) {
    sca::Trace trace;
    for (int p = 0; p < 8; ++p) {
      trace.push_back(rng.gaussian(5.0, 2.0) + (p == 5 ? 0.8 * t : 0.0));
    }
    traces.push_back(std::move(trace));
    hypothesis.push_back(static_cast<double>(t));
  }
  const auto result = sca::correlate_hypothesis(traces, hypothesis);
  double best_rho = 0.0;
  std::size_t best_point = 0;
  std::vector<double> column(traces.size());
  for (std::size_t p = 0; p < traces.front().size(); ++p) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      column[t] = traces[t][p];
    }
    const double rho = std::abs(sca::pearson(column, hypothesis));
    if (rho > best_rho) {
      best_rho = rho;
      best_point = p;
    }
  }
  EXPECT_NEAR(result.max_abs_rho, best_rho, 1e-12);
  EXPECT_EQ(result.best_point, best_point);
  EXPECT_EQ(result.best_point, 5u);  // the planted leaky point.
}

TEST(Stats, OffsetWelchTDoesNotFalselyDetectLeakage) {
  // Identical distributions riding a 1e9 baseline: the t statistic must
  // stay far below the TVLA threshold even though every centered sum runs
  // against the DC component.
  hwsec::sim::Rng rng(9);
  std::vector<sca::Trace> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back({1e9 + 0.7 + rng.gaussian(0.0, 1e-3)});
    b.push_back({1e9 + 0.7 + rng.gaussian(0.0, 1e-3)});
  }
  EXPECT_LT(sca::max_welch_t(a, b), sca::kTvlaThreshold);
}

TEST(Stats, WelchTSeparatesShiftedPopulations) {
  hwsec::sim::Rng rng(5);
  std::vector<sca::Trace> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)});
    b.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(2.0, 1.0)});
  }
  EXPECT_GT(sca::max_welch_t(a, b), sca::kTvlaThreshold);
  EXPECT_LT(sca::max_welch_t(a, a), sca::kTvlaThreshold);
}

TEST(Recorder, HammingWeightSignalPlusNoise) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingWeight, .amplitude = 1.0,
                               .noise_sigma = 0.0, .hiding_noise_sigma = 0.0, .max_jitter = 0,
                               .seed = 1});
  rec.begin_trace();
  rec.on_value(0xFF);       // HW 8.
  rec.on_value(0x0F0F0F0F); // HW 16.
  const auto trace = rec.end_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0], 8.0);
  EXPECT_DOUBLE_EQ(trace[1], 16.0);
}

TEST(Recorder, HammingDistanceModelUsesPreviousValue) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingDistance, .amplitude = 1.0,
                               .noise_sigma = 0.0, .hiding_noise_sigma = 0.0, .max_jitter = 0,
                               .seed = 1});
  rec.begin_trace();
  rec.on_value(0xFF);  // HD(0xFF, 0) = 8.
  rec.on_value(0xFE);  // HD(0xFE, 0xFF) = 1.
  const auto trace = rec.end_trace();
  EXPECT_DOUBLE_EQ(trace[0], 8.0);
  EXPECT_DOUBLE_EQ(trace[1], 1.0);
}

TEST(Recorder, JitterMisalignsAndPadsToFixedLength) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingWeight, .amplitude = 1.0,
                               .noise_sigma = 0.1, .hiding_noise_sigma = 0.0, .max_jitter = 3,
                               .seed = 2});
  rec.begin_trace();
  for (int i = 0; i < 10; ++i) {
    rec.on_value(0xFF);
  }
  const auto trace = rec.end_trace(40);
  EXPECT_EQ(trace.size(), 40u);
}

TEST(Cpa, RecoversKeyFromCleanTraces) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.1;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 150, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_EQ(result.correct_bytes(kKey), 16u);
  EXPECT_GT(result.bytes[0].margin(), 1.05);
}

TEST(Cpa, NoiseRaisesTraceRequirement) {
  sca::RecorderConfig noisy;
  noisy.noise_sigma = 4.0;
  const auto few = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 60, noisy);
  const auto many = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 1500, noisy);
  EXPECT_LT(sca::cpa_attack_key(few).correct_bytes(kKey),
            sca::cpa_attack_key(many).correct_bytes(kKey));
  EXPECT_GE(sca::cpa_attack_key(many).correct_bytes(kKey), 14u);
}

TEST(Cpa, MaskingDefeatsFirstOrderAttack) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 800, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_LE(result.correct_bytes(kKey), 3u)
      << "first-order CPA against a masked implementation must be ~chance";
}

TEST(Cpa, ConstantTimeStillLeaksPower) {
  // The §4.1/§5 distinction: constant-time protects against cache/timing
  // observation, NOT against power analysis.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  const auto set =
      attacks::collect_aes_traces(kKey, attacks::AesVariant::kConstantTime, 300, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_GE(result.correct_bytes(kKey), 14u);
}

TEST(SecondOrderCpa, BreaksFirstOrderMasking) {
  // The §5 escalation: first-order CPA fails against masking (test
  // above), but combining the mask-load sample with the S-box samples
  // recovers the key — masking ORDER matters.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 3000, rec);
  EXPECT_LE(sca::cpa_attack_key(set).correct_bytes(kKey), 3u) << "1st order stays blind";
  const auto second = sca::second_order_cpa_key(set, /*mask_sample=*/1);
  EXPECT_GE(second.correct_bytes(kKey), 14u) << "2nd order recovers the key";
}

TEST(SecondOrderCpa, NeedsTheRightCombiningPoint) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 1500, rec);
  // Combining with an unrelated sample (a round-9 S-box output) instead
  // of the mask-load sample gives nothing.
  const auto wrong = sca::second_order_cpa_key(set, /*mask_sample=*/150);
  EXPECT_LE(wrong.correct_bytes(kKey), 3u);
}

TEST(SecondOrderCpa, UnmaskedVariantNeedsNoSecondOrder) {
  // Sanity: on the unprotected implementation the combined traces still
  // work (the channel is only weaker), and plain CPA is strictly better.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 400, rec);
  EXPECT_EQ(sca::cpa_attack_key(set).correct_bytes(kKey), 16u);
}

TEST(Dpa, DifferenceOfMeansRecoversBytes) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.3;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 1200, rec);
  const auto result = sca::dpa_attack_key(set, /*bit=*/0);
  EXPECT_GE(result.correct_bytes(kKey), 12u);
}

TEST(Tvla, FixedVsRandomDetectsLeakyImplementation) {
  // Fixed-vs-random t-test: unprotected AES leaks, masked AES does not.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  rec.seed = 77;
  auto make_populations = [&rec](attacks::AesVariant variant, std::uint64_t seed) {
    // "Fixed" population: constant plaintext (collect once per trace).
    sca::PowerTraceRecorder recorder({.model = sca::LeakageModel::kHammingWeight,
                                      .amplitude = 1.0, .noise_sigma = rec.noise_sigma,
                                      .hiding_noise_sigma = 0, .max_jitter = 0, .seed = seed});
    crypto::Instrumentation instr;
    instr.leak = [&recorder](std::uint32_t v) { recorder.on_value(v); };
    crypto::AesTTable ttable(kKey, instr);
    crypto::AesMasked masked(kKey, seed, instr);
    hwsec::sim::Rng rng(seed);
    std::vector<sca::Trace> fixed, random;
    const crypto::AesBlock fixed_pt{};
    for (int i = 0; i < 300; ++i) {
      crypto::AesBlock random_pt;
      for (auto& b : random_pt) {
        b = static_cast<std::uint8_t>(rng.next_u32());
      }
      recorder.begin_trace();
      if (variant == attacks::AesVariant::kTTable) {
        ttable.encrypt(fixed_pt);
      } else {
        masked.encrypt(fixed_pt);
      }
      fixed.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
      recorder.begin_trace();
      if (variant == attacks::AesVariant::kTTable) {
        ttable.encrypt(random_pt);
      } else {
        masked.encrypt(random_pt);
      }
      random.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
    }
    return sca::max_welch_t(fixed, random);
  };
  EXPECT_GT(make_populations(attacks::AesVariant::kTTable, 1), sca::kTvlaThreshold);
  EXPECT_LT(make_populations(attacks::AesVariant::kMasked, 2), sca::kTvlaThreshold + 2.0)
      << "masked implementation should show (near-)no first-order leakage";
}

}  // namespace
