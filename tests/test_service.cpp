// Campaign service (hwsecd) suite: the JSON utilities and their metrics
// regression, the versioned spec codec, the service payload codecs, the
// tenant-scoped checkpoint identity, SIGTERM escalation, and the daemon
// itself — scheduling, bit-identity against direct runs, and the
// disconnect/reattach contract.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/json.h"
#include "core/obs/metrics.h"
#include "core/resilience/checkpoint.h"
#include "core/resilience/resilient.h"
#include "core/service/catalog.h"
#include "core/service/client.h"
#include "core/service/daemon.h"
#include "core/service/protocol.h"
#include "core/service/spec.h"
#include "core/shard/wire.h"
#include "core/shutdown.h"
#include "sim/thread_pool.h"

namespace core = hwsec::core;
namespace service = hwsec::core::service;
namespace shard = hwsec::core::shard;
namespace obs = hwsec::obs;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HWSEC_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HWSEC_SANITIZED 1
#endif
#endif

namespace {

std::string temp_path(const std::string& name, const std::string& suffix) {
  const char* dir = std::getenv("HWSEC_CHECKPOINT_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : ".";
  return base + "/" + name + "." + std::to_string(::getpid()) + suffix;
}

/// Unix socket paths have a ~107-byte limit, so always anchor in /tmp.
std::string socket_path(const std::string& name) {
  return "/tmp/hwsec_" + name + "." + std::to_string(::getpid()) + ".sock";
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---- json_escape + parser ----------------------------------------------

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(core::json_escape("plain"), "plain");
  EXPECT_EQ(core::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(core::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(core::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(core::json_escape(std::string("a\x01z")), "a\\u0001z");
}

// Satellite #1 regression: MetricsRegistry::to_json once interpolated
// metric names verbatim, so a name holding a quote or newline produced an
// invalid JSON document. Hostile names must now come out escaped and the
// whole scrape must parse.
TEST(JsonEscape, HostileMetricNamesProduceParseableScrape) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("evil\"quote").add(3);
  registry.counter("evil\nnewline").add(1);
  registry.gauge("evil\\backslash\tgauge").set(-7);
  const std::string json = registry.to_json();
  core::JsonValue doc;
  std::string error;
  ASSERT_TRUE(core::parse_json(json, doc, &error)) << error << "\n" << json;
  const core::JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const core::JsonValue* quoted = counters->find("evil\"quote");
  ASSERT_NE(quoted, nullptr) << "escaped name must decode back to the original";
  std::uint64_t value = 0;
  ASSERT_TRUE(quoted->as_u64(value));
  EXPECT_EQ(value, 3u);
  ASSERT_NE(counters->find("evil\nnewline"), nullptr);
  const core::JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("evil\\backslash\tgauge"), nullptr);
}

TEST(JsonParser, U64ValuesRoundTripExactly) {
  core::JsonValue doc;
  ASSERT_TRUE(core::parse_json("{\"seed\": 18446744073709551615}", doc));
  std::uint64_t seed = 0;
  ASSERT_TRUE(doc.find("seed")->as_u64(seed));
  EXPECT_EQ(seed, 18446744073709551615ull);  // a double would mangle this.
}

TEST(JsonParser, RejectsMalformedInput) {
  core::JsonValue doc;
  std::string error;
  EXPECT_FALSE(core::parse_json("{\"a\": }", doc, &error));
  EXPECT_FALSE(core::parse_json("{} trailing", doc, &error));
  EXPECT_FALSE(core::parse_json("{\"a\": \"\\x\"}", doc, &error));
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  EXPECT_FALSE(core::parse_json(deep, doc, &error));
  EXPECT_TRUE(contains(error, "deep")) << error;
}

// ---- spec codec --------------------------------------------------------

TEST(SpecCodec, EncodeDecodeRoundTrip) {
  service::CampaignSpec spec;
  spec.tenant = "alice";
  spec.name = "nightly.sweep-1";
  spec.kind = "mix";
  spec.seed = 0xFFFFFFFFFFFFFFF5ull;
  spec.trials = 123;
  spec.workers = 4;
  spec.processes = 2;
  spec.policy = core::FailurePolicy::kRetry;
  spec.max_attempts = 5;
  spec.trial_cycle_budget = 9999;
  spec.trial_delay_us = 7;
  spec.priority = -3;
  service::CampaignSpec decoded;
  std::string error;
  ASSERT_TRUE(service::decode_spec(service::encode_spec(spec), decoded, error)) << error;
  EXPECT_EQ(decoded.tenant, spec.tenant);
  EXPECT_EQ(decoded.name, spec.name);
  EXPECT_EQ(decoded.kind, spec.kind);
  EXPECT_EQ(decoded.seed, spec.seed);  // u64-exact through JSON.
  EXPECT_EQ(decoded.trials, spec.trials);
  EXPECT_EQ(decoded.workers, spec.workers);
  EXPECT_EQ(decoded.processes, spec.processes);
  EXPECT_EQ(decoded.policy, spec.policy);
  EXPECT_EQ(decoded.max_attempts, spec.max_attempts);
  EXPECT_EQ(decoded.trial_cycle_budget, spec.trial_cycle_budget);
  EXPECT_EQ(decoded.trial_delay_us, spec.trial_delay_us);
  EXPECT_EQ(decoded.priority, spec.priority);
}

TEST(SpecCodec, UnknownVersionRejectedNamingBoth) {
  service::CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(service::decode_spec(
      "{\"hwsec_spec_version\": 99, \"tenant\": \"a\", \"kind\": \"mix\", \"trials\": 1}",
      spec, error));
  EXPECT_TRUE(contains(error, "99")) << error;
  EXPECT_TRUE(contains(error, "1")) << error;
}

TEST(SpecCodec, UnknownKeysAreIgnoredForwardCompatibly) {
  service::CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(service::decode_spec(
      "{\"hwsec_spec_version\": 1, \"tenant\": \"a\", \"kind\": \"mix\", \"trials\": 2, "
      "\"future_knob\": {\"nested\": [1, 2]}}",
      spec, error))
      << error;
  EXPECT_EQ(spec.trials, 2u);
}

TEST(SpecCodec, HostileIdentifiersRejected) {
  service::CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(service::decode_spec(
      "{\"hwsec_spec_version\": 1, \"tenant\": \"../../etc\", \"kind\": \"mix\", "
      "\"trials\": 1}",
      spec, error));
  EXPECT_FALSE(service::decode_spec(
      "{\"hwsec_spec_version\": 1, \"tenant\": \"\", \"kind\": \"mix\", \"trials\": 1}",
      spec, error));
  EXPECT_FALSE(service::valid_identifier("a b"));
  EXPECT_FALSE(service::valid_identifier(std::string(65, 'a')));
  EXPECT_TRUE(service::valid_identifier("team-7.nightly_run"));
}

// ---- service payload codecs --------------------------------------------

TEST(ProtocolCodec, PayloadRoundTrips) {
  service::SubmittedPayload ack{true, "alice-7", "ok"};
  service::SubmittedPayload ack2;
  ASSERT_TRUE(service::decode_submitted(service::encode_submitted(ack), ack2));
  EXPECT_EQ(ack2.accepted, true);
  EXPECT_EQ(ack2.job_id, "alice-7");
  EXPECT_EQ(ack2.message, "ok");

  service::JobUpdatePayload up{"alice-7", service::JobState::kRunning, 3, 10};
  service::JobUpdatePayload up2;
  ASSERT_TRUE(service::decode_job_update(service::encode_job_update(up), up2));
  EXPECT_EQ(up2.job_id, "alice-7");
  EXPECT_EQ(up2.state, service::JobState::kRunning);
  EXPECT_EQ(up2.done, 3u);
  EXPECT_EQ(up2.total, 10u);

  service::JobResultPayload res{"alice-7", service::JobState::kDone, 0xDEADBEEF, "blob", ""};
  service::JobResultPayload res2;
  ASSERT_TRUE(service::decode_job_result(service::encode_job_result(res), res2));
  EXPECT_EQ(res2.digest, 0xDEADBEEFu);
  EXPECT_EQ(res2.records, "blob");

  // Truncated payloads must fail cleanly, never over-read.
  const std::string enc = service::encode_job_update(up);
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(service::decode_job_update(enc.substr(0, cut), up2)) << "cut=" << cut;
  }
}

TEST(ProtocolCodec, OutcomeStreamRoundTripsAndResumeKeepsBytes) {
  service::CampaignSpec spec;
  spec.tenant = "alice";
  spec.kind = "mix";
  spec.seed = 77;
  spec.trials = 12;
  spec.workers = 2;
  const std::string path = temp_path("svc_wire", ".ckpt");
  std::remove(path.c_str());
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  res.checkpoint_every = 1;
  const auto first = service::run_spec(spec, res);
  const std::string blob = service::encode_outcomes(first);
  std::vector<service::OutcomeRecord> decoded;
  ASSERT_TRUE(service::decode_outcomes(blob, decoded));
  ASSERT_EQ(decoded.size(), 12u);
  for (const auto& rec : decoded) {
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.payload.size(), sizeof(service::ServiceTrialResult));
  }
  // A fully restored re-run must encode to the same bytes: from_checkpoint
  // is execution history, not part of the result.
  const auto resumed = service::run_spec(spec, res);
  EXPECT_TRUE(resumed[0].from_checkpoint);
  EXPECT_EQ(service::encode_outcomes(resumed), blob);
  EXPECT_EQ(service::fnv1a64(service::encode_outcomes(resumed)), service::fnv1a64(blob));
  std::remove(path.c_str());
}

// A corrupt/hostile result blob claiming 2^32 records in a handful of
// bytes must be rejected up front, not turned into a hundreds-of-GB
// reserve() in the client.
TEST(ProtocolCodec, OutcomeCountBeyondBlobSizeRejected) {
  std::vector<service::OutcomeRecord> out;
  for (const std::uint64_t count :
       {std::uint64_t{1} << 32, std::uint64_t{0xFFFFFFFFFFFFFFFFull}, std::uint64_t{3}}) {
    std::string blob;
    shard::put_u64(blob, count);
    blob.append(16, '\0');  // far too few bytes for even `3` records.
    EXPECT_FALSE(service::decode_outcomes(blob, out)) << "count=" << count;
  }
}

// ---- frame payload caps (untrusted transports) --------------------------

namespace {

std::string frame_header(std::uint32_t payload_length) {
  std::string header;
  shard::put_u32(header, shard::kWireMagic);
  shard::put_u16(header, shard::kWireVersion);
  shard::put_u16(header, static_cast<std::uint16_t>(shard::FrameType::kSubmit));
  shard::put_u32(header, payload_length);
  return header;
}

}  // namespace

// A 12-byte header claiming a 4 GiB payload must be rejected before any
// payload allocation — this is what a hostile client aims at the daemon.
TEST(WireGuards, OversizedFrameHeaderRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string header = frame_header(0xFFFFFFFFu);
  ASSERT_EQ(::write(fds[1], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  shard::Frame frame;
  // Returns immediately (no payload bytes were ever written): the length
  // check precedes the payload read, both at the daemon's request cap and
  // at the codec-level default.
  EXPECT_FALSE(shard::read_frame(fds[0], frame, service::kMaxRequestPayload));
  ::close(fds[0]);
  ::close(fds[1]);

  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  EXPECT_FALSE(shard::read_frame(fds[0], frame));
  ::close(fds[0]);
  ::close(fds[1]);

  // Control: a payload at the cap still round-trips.
  ASSERT_EQ(::pipe(fds), 0);
  shard::Frame small;
  small.type = shard::FrameType::kSubmit;
  small.payload = "spec";
  ASSERT_TRUE(shard::write_frame(fds[1], small));
  EXPECT_TRUE(shard::read_frame(fds[0], frame, 4));
  EXPECT_EQ(frame.payload, "spec");
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireGuards, FrameBufferPoisonsOnOversizedLength) {
  shard::FrameBuffer buf(16);
  const std::string header = frame_header(17);
  buf.append(header.data(), header.size());
  shard::Frame out;
  EXPECT_FALSE(buf.next(out));
  EXPECT_TRUE(buf.corrupt());

  shard::FrameBuffer ok(16);
  shard::Frame inbound;
  inbound.type = shard::FrameType::kSubmit;
  inbound.payload = "0123456789abcdef";  // exactly the cap.
  const std::string at_cap = frame_header(16) + inbound.payload;
  ok.append(at_cap.data(), at_cap.size());
  EXPECT_TRUE(ok.next(out));
  EXPECT_EQ(out.payload, inbound.payload);
  EXPECT_FALSE(ok.corrupt());
}

// ---- ThreadPool constructor exception safety ----------------------------

// A spec-driven worker count that exhausts the host must surface as an
// exception, not a std::terminate from destroying joinable threads
// mid-construction (the daemon shares one process across every tenant).
TEST(ThreadPoolGuard, ConstructorFailureThrowsInsteadOfTerminating) {
#ifdef HWSEC_SANITIZED
  GTEST_SKIP() << "rlimit-based thread exhaustion is unreliable under sanitizers";
#else
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // ~8 MiB of reserved stack per thread: 100k threads cannot fit in a
    // 1 GiB address space, so pthread_create fails partway through.
    struct rlimit lim{};
    lim.rlim_cur = lim.rlim_max = 1ull << 30;
    ::setrlimit(RLIMIT_AS, &lim);
    try {
      hwsec::sim::ThreadPool pool(100000);
    } catch (const std::exception&) {
      _exit(0);  // clean throw; spawned threads were joined.
    }
    _exit(1);  // construction unexpectedly succeeded.
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "ThreadPool constructor crashed (std::terminate?)";
  EXPECT_EQ(WEXITSTATUS(status), 0);
#endif
}

// ---- checkpoint scope (satellite #2) -----------------------------------

TEST(CheckpointScope, DifferentScopeRejectsSameConfigFile) {
  const std::string path = temp_path("scope_reject", ".ckpt");
  std::remove(path.c_str());
  core::CheckpointFile alice(42, 8, 16, "alice/j1");
  core::CheckpointRecord rec;
  rec.ok = true;
  rec.payload.assign(16, '\x5a');
  alice.record(0, rec);
  ASSERT_TRUE(alice.save(path));

  core::CheckpointFile bob(42, 8, 16, "bob/j2");  // identical config, other owner.
  EXPECT_FALSE(bob.load(path)) << "cross-tenant checkpoint must be rejected";
  EXPECT_EQ(bob.size(), 0u);

  core::CheckpointFile alice2(42, 8, 16, "alice/j1");
  EXPECT_TRUE(alice2.load(path));
  EXPECT_EQ(alice2.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckpointScope, EmptyScopeKeepsLegacyHeader) {
  const std::string path = temp_path("scope_legacy", ".ckpt");
  core::CheckpointFile file(7, 3, 8);
  ASSERT_TRUE(file.save(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "hwsec-checkpoint v2 seed=7 trials=3 result_bytes=8");
  std::remove(path.c_str());
}

// The full-stack collision regression: two tenants running byte-identical
// specs against the same checkpoint path must never cross-resume — tenant
// B re-executes every trial instead of inheriting tenant A's slots.
TEST(CheckpointScope, IdenticalSpecsFromTwoTenantsNeverCrossResume) {
  const std::string path = temp_path("scope_tenants", ".ckpt");
  std::remove(path.c_str());
  const core::CampaignConfig cfg{.seed = 99, .trials = 10, .workers = 2};
  std::atomic<int> executed{0};
  const std::function<std::uint64_t(const core::TrialContext&)> body =
      [&executed](const core::TrialContext& ctx) {
        executed.fetch_add(1);
        return ctx.seed ^ 0xABCD;
      };
  core::ResilienceConfig res;
  res.checkpoint_path = path;
  res.checkpoint_scope = "alice/job-1";
  const auto first = core::run_campaign_resilient<std::uint64_t>(cfg, res, body);
  EXPECT_EQ(executed.load(), 10);

  executed.store(0);
  res.checkpoint_scope = "bob/job-2";
  const auto second = core::run_campaign_resilient<std::uint64_t>(cfg, res, body);
  EXPECT_EQ(executed.load(), 10) << "tenant B resumed tenant A's checkpoint";
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_FALSE(second[i].from_checkpoint) << "slot " << i;
    EXPECT_EQ(second[i].value(), first[i].value()) << "slot " << i;
  }
  std::remove(path.c_str());
}

// ---- shutdown escalation (satellite #3) --------------------------------

TEST(ShutdownEscalation, FirstSignalOnlySetsTheFlag) {
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    core::install_graceful_shutdown();
    raise(SIGTERM);
    // Still alive: the first signal must only set the flag.
    _exit(core::shutdown_requested() && core::shutdown_signal() == SIGTERM &&
                  core::shutdown_exit_code() == 128 + SIGTERM
              ? 0
              : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status)) << "child must survive the first SIGTERM";
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ShutdownEscalation, SecondSignalAbortsImmediatelyWith128PlusSig) {
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    core::install_graceful_shutdown();
    raise(SIGTERM);  // drain request: flag only.
    raise(SIGTERM);  // escalation: _exit(143) straight from the handler.
    _exit(7);        // must be unreachable.
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM) << "second signal must abort immediately";
}

TEST(ShutdownEscalation, SecondSignalMayDifferFromTheFirst) {
  const pid_t child = fork();
  ASSERT_NE(child, -1);
  if (child == 0) {
    core::install_graceful_shutdown();
    raise(SIGTERM);
    raise(SIGINT);  // operator mashing Ctrl-C after a SIGTERM drain.
    _exit(7);
  }
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);
}

// ---- the daemon itself -------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  void StartDaemon(service::ServiceConfig config = {}) {
    socket_ = socket_path(::testing::UnitTest::GetInstance()->current_test_info()->name());
    config.unix_socket = socket_;
    if (config.progress_interval.count() == 50) {
      config.progress_interval = std::chrono::milliseconds(10);
    }
    daemon_ = std::make_unique<service::Daemon>(config);
    daemon_->start();
  }

  void TearDown() override {
    if (daemon_ != nullptr) {
      daemon_->stop();
    }
    if (!socket_.empty()) {
      std::remove(socket_.c_str());
    }
  }

  service::ServiceClient MakeClient() {
    service::ClientConfig config;
    config.unix_socket = socket_;
    return service::ServiceClient(config);
  }

  static std::string SpecJson(const std::string& tenant, const std::string& kind,
                              std::uint64_t seed, std::uint64_t trials,
                              std::uint64_t delay_us = 0, std::uint32_t processes = 0) {
    service::CampaignSpec spec;
    spec.tenant = tenant;
    spec.kind = kind;
    spec.seed = seed;
    spec.trials = trials;
    spec.workers = 2;
    spec.trial_delay_us = delay_us;
    spec.processes = processes;
    return service::encode_spec(spec);
  }

  static std::string DirectRecords(const std::string& spec_json) {
    service::CampaignSpec spec;
    std::string error;
    EXPECT_TRUE(service::decode_spec(spec_json, spec, error)) << error;
    // Daemon-side sharded execution is asserted against the plain
    // in-process engine: the shard layer's own contract is that both are
    // bit-identical.
    spec.processes = 0;
    return service::encode_outcomes(service::run_spec(spec, core::ResilienceConfig{}));
  }

  std::string socket_;
  std::unique_ptr<service::Daemon> daemon_;
};

// Acceptance criterion: two concurrent tenant campaigns, each bit-identical
// to a direct run_campaign_resilient invocation at the same seed.
TEST_F(DaemonTest, TwoConcurrentTenantsMatchDirectRunsBitForBit) {
  StartDaemon();
  const std::string spec_a = SpecJson("alice", "mix", 42, 30);
  const std::string spec_b = SpecJson("bob", "mix", 43, 30);

  auto client_a = MakeClient();
  auto client_b = MakeClient();
  service::SubmittedPayload ack_a, ack_b;
  std::string error;
  ASSERT_TRUE(client_a.submit(spec_a, ack_a, error)) << error;
  ASSERT_TRUE(ack_a.accepted) << ack_a.message;
  ASSERT_TRUE(client_b.submit(spec_b, ack_b, error)) << error;
  ASSERT_TRUE(ack_b.accepted) << ack_b.message;
  EXPECT_NE(ack_a.job_id, ack_b.job_id);

  service::JobResultPayload result_a, result_b;
  ASSERT_TRUE(client_a.wait_result(result_a, error)) << error;
  ASSERT_TRUE(client_b.wait_result(result_b, error)) << error;
  EXPECT_EQ(result_a.state, service::JobState::kDone);
  EXPECT_EQ(result_b.state, service::JobState::kDone);

  const std::string direct_a = DirectRecords(spec_a);
  const std::string direct_b = DirectRecords(spec_b);
  EXPECT_EQ(result_a.records, direct_a) << "daemon result diverged from direct run";
  EXPECT_EQ(result_b.records, direct_b);
  EXPECT_EQ(result_a.digest, service::fnv1a64(direct_a));
  EXPECT_EQ(result_b.digest, service::fnv1a64(direct_b));
}

// Acceptance criterion (satellite #4): a client disconnect mid-run must
// not kill the job; a later attach by job id receives the terminal result,
// bit-identical to an uninterrupted direct run.
TEST_F(DaemonTest, DisconnectMidRunThenReattachByJobId) {
  StartDaemon();
  // ~2 ms per trial on 2 workers => ~60 ms of runtime to disconnect into.
  const std::string spec = SpecJson("alice", "mix", 777, 60, 2000);

  std::string job_id;
  {
    auto client = MakeClient();
    service::SubmittedPayload ack;
    std::string error;
    ASSERT_TRUE(client.submit(spec, ack, error)) << error;
    ASSERT_TRUE(ack.accepted) << ack.message;
    job_id = ack.job_id;
    client.disconnect();  // the client "crashes" while the job runs.
  }

  auto client = MakeClient();
  service::SubmittedPayload ack;
  service::JobResultPayload result;
  std::string error;
  ASSERT_TRUE(client.attach(job_id, ack, error)) << error;
  ASSERT_TRUE(ack.accepted) << ack.message;
  EXPECT_EQ(ack.job_id, job_id);
  ASSERT_TRUE(client.wait_result(result, error)) << error;
  EXPECT_EQ(result.state, service::JobState::kDone);
  EXPECT_EQ(result.records, DirectRecords(spec))
      << "post-disconnect result diverged from a direct uninterrupted run";

  // Attaching again after completion replays the same terminal result.
  auto late = MakeClient();
  service::JobResultPayload replay;
  ASSERT_TRUE(late.attach(job_id, ack, error)) << error;
  ASSERT_TRUE(late.wait_result(replay, error)) << error;
  EXPECT_EQ(replay.records, result.records);
  EXPECT_EQ(replay.digest, result.digest);
}

TEST_F(DaemonTest, ShardedSpecThroughDaemonMatchesInProcessRun) {
  StartDaemon();
  const std::string spec = SpecJson("carol", "mix", 4242, 16, 0, 2);
  auto client = MakeClient();
  service::SubmittedPayload ack;
  service::JobResultPayload result;
  std::string error;
  ASSERT_TRUE(client.submit(spec, ack, error)) << error;
  ASSERT_TRUE(ack.accepted) << ack.message;
  ASSERT_TRUE(client.wait_result(result, error)) << error;
  EXPECT_EQ(result.state, service::JobState::kDone);
  EXPECT_EQ(result.records, DirectRecords(spec));
}

TEST_F(DaemonTest, RejectsBadSpecsAndUnknownJobs) {
  StartDaemon();
  auto client = MakeClient();
  service::SubmittedPayload ack;
  std::string error;

  ASSERT_TRUE(client.submit("{not json", ack, error)) << error;
  EXPECT_FALSE(ack.accepted);

  ASSERT_TRUE(client.submit(SpecJson("alice", "no_such_kind", 1, 5), ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "no_such_kind")) << ack.message;

  service::CampaignSpec huge;
  huge.tenant = "alice";
  huge.kind = "mix";
  huge.trials = 1;
  service::ServiceConfig defaults;
  huge.trials = defaults.max_trials + 1;
  ASSERT_TRUE(client.submit(service::encode_spec(huge), ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "cap")) << ack.message;

  ASSERT_TRUE(client.attach("ghost-99", ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "ghost-99")) << ack.message;
}

TEST_F(DaemonTest, TenantAdmissionQuotaIsEnforced) {
  service::ServiceConfig config;
  config.max_queued_per_tenant = 1;
  StartDaemon(config);
  // Job 1 occupies alice's whole admission quota while it runs...
  const std::string slow = SpecJson("alice", "mix", 5, 50, 3000);
  auto client1 = MakeClient();
  service::SubmittedPayload ack;
  std::string error;
  ASSERT_TRUE(client1.submit(slow, ack, error)) << error;
  ASSERT_TRUE(ack.accepted) << ack.message;

  // ...so a second alice submit bounces, while bob still gets in.
  auto client2 = MakeClient();
  ASSERT_TRUE(client2.submit(SpecJson("alice", "mix", 6, 5), ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "quota")) << ack.message;

  auto client3 = MakeClient();
  ASSERT_TRUE(client3.submit(SpecJson("bob", "mix", 7, 5), ack, error)) << error;
  EXPECT_TRUE(ack.accepted) << ack.message;

  service::JobResultPayload result;
  ASSERT_TRUE(client3.wait_result(result, error)) << error;
  ASSERT_TRUE(client1.wait_result(result, error)) << error;
}

// A hostile or fat-fingered {"workers": 1000000} / {"processes": 1000000}
// spec must bounce at admission, never reach ThreadPool/fork.
TEST_F(DaemonTest, RejectsOverCapWorkersAndProcesses) {
  StartDaemon();
  auto client = MakeClient();
  service::SubmittedPayload ack;
  std::string error;
  service::ServiceConfig defaults;

  service::CampaignSpec fat;
  fat.tenant = "alice";
  fat.kind = "mix";
  fat.trials = 1;
  fat.workers = defaults.max_workers + 1;
  ASSERT_TRUE(client.submit(service::encode_spec(fat), ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "workers")) << ack.message;

  fat.workers = 1;
  fat.processes = defaults.max_processes + 1;
  ASSERT_TRUE(client.submit(service::encode_spec(fat), ack, error)) << error;
  EXPECT_FALSE(ack.accepted);
  EXPECT_TRUE(contains(ack.message, "processes")) << ack.message;

  // Control: at-cap values are admitted (workers is only a thread count
  // request; the 1-trial job finishes instantly).
  fat.processes = 0;
  fat.workers = defaults.max_workers;
  ASSERT_TRUE(client.submit(service::encode_spec(fat), ack, error)) << error;
  EXPECT_TRUE(ack.accepted) << ack.message;
  service::JobResultPayload result;
  ASSERT_TRUE(client.wait_result(result, error)) << error;
}

// Retention: terminal jobs beyond max_finished_per_tenant are evicted
// (oldest first), so daemon memory does not grow without bound while the
// newest results stay attachable.
TEST_F(DaemonTest, FinishedJobsBeyondRetentionCapAreEvicted) {
  service::ServiceConfig config;
  config.max_finished_per_tenant = 2;
  StartDaemon(config);
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    auto client = MakeClient();
    service::SubmittedPayload ack;
    service::JobResultPayload result;
    std::string error;
    ASSERT_TRUE(client.submit(SpecJson("alice", "mix", 100 + i, 4), ack, error)) << error;
    ASSERT_TRUE(ack.accepted) << ack.message;
    ids.push_back(ack.job_id);
    ASSERT_TRUE(client.wait_result(result, error)) << error;
    EXPECT_EQ(result.state, service::JobState::kDone);
  }
  // Eviction runs on the executor thread just after the terminal result is
  // streamed; give it a bounded moment to settle.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (daemon_->jobs().size() > 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(daemon_->jobs().size(), 2u);

  auto client = MakeClient();
  service::SubmittedPayload ack;
  std::string error;
  ASSERT_TRUE(client.attach(ids[0], ack, error)) << error;
  EXPECT_FALSE(ack.accepted) << "oldest job should have been evicted";
  ASSERT_TRUE(client.attach(ids[3], ack, error)) << error;
  EXPECT_TRUE(ack.accepted) << ack.message;
  service::JobResultPayload replay;
  ASSERT_TRUE(client.wait_result(replay, error)) << error;
  EXPECT_EQ(replay.state, service::JobState::kDone);
}

TEST_F(DaemonTest, StatusScrapeIsValidJsonWithJobsAndMetrics) {
  StartDaemon();
  auto client = MakeClient();
  service::SubmittedPayload ack;
  service::JobResultPayload result;
  std::string error;
  ASSERT_TRUE(client.submit(SpecJson("alice", "mix", 11, 8), ack, error)) << error;
  ASSERT_TRUE(ack.accepted);
  ASSERT_TRUE(client.wait_result(result, error)) << error;

  auto scraper = MakeClient();
  std::string json;
  ASSERT_TRUE(scraper.status(json, error)) << error;
  core::JsonValue doc;
  ASSERT_TRUE(core::parse_json(json, doc, &error)) << error << "\n" << json;
  const core::JsonValue* svc = doc.find("service");
  ASSERT_NE(svc, nullptr);
  std::uint64_t total = 0;
  ASSERT_TRUE(svc->find("jobs_total")->as_u64(total));
  EXPECT_GE(total, 1u);
  const core::JsonValue* jobs = doc.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_TRUE(jobs->is_array());
  ASSERT_FALSE(jobs->array.empty());
  EXPECT_NE(jobs->array[0].find("tenant"), nullptr);
  // The embedded metrics scrape must survive the hostile names registered
  // earlier in this binary — the end-to-end form of the escaping fix.
  const core::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);
}

TEST_F(DaemonTest, ClientStopDrainsAndServeReturnsZero) {
  socket_ = socket_path("client_stop");
  service::ServiceConfig config;
  config.unix_socket = socket_;
  config.progress_interval = std::chrono::milliseconds(10);
  daemon_ = std::make_unique<service::Daemon>(config);
  std::thread server([&] { EXPECT_EQ(daemon_->serve(), 0); });

  for (int i = 0; i < 100 && !std::ifstream(socket_).good(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto client = MakeClient();
  service::SubmittedPayload ack;
  service::JobResultPayload result;
  std::string error;
  ASSERT_TRUE(client.submit(SpecJson("alice", "mix", 3, 10), ack, error)) << error;
  ASSERT_TRUE(ack.accepted);
  ASSERT_TRUE(client.wait_result(result, error)) << error;

  auto stopper = MakeClient();
  ASSERT_TRUE(stopper.stop_daemon(error)) << error;
  server.join();

  // Post-drain: the daemon is gone, new submits fail at the transport.
  auto late = MakeClient();
  EXPECT_FALSE(late.submit(SpecJson("alice", "mix", 4, 5), ack, error));
}

TEST_F(DaemonTest, SpectreWorkloadLeaksDeterministically) {
  StartDaemon();
  const std::string spec = SpecJson("lab", "spectre_leak", 2026, 4);
  auto client = MakeClient();
  service::SubmittedPayload ack;
  service::JobResultPayload result;
  std::string error;
  ASSERT_TRUE(client.submit(spec, ack, error)) << error;
  ASSERT_TRUE(ack.accepted) << ack.message;
  ASSERT_TRUE(client.wait_result(result, error)) << error;
  ASSERT_EQ(result.state, service::JobState::kDone);
  std::vector<service::OutcomeRecord> records;
  ASSERT_TRUE(service::decode_outcomes(result.records, records));
  ASSERT_EQ(records.size(), 4u);
  for (const auto& rec : records) {
    ASSERT_TRUE(rec.ok);
    service::ServiceTrialResult r;
    std::memcpy(&r, rec.payload.data(), sizeof(r));
    EXPECT_EQ(r.lo, 1u) << "spectre_leak trial failed to leak";
    EXPECT_EQ(r.hi, static_cast<std::uint64_t>('K'));
  }
  EXPECT_EQ(result.records, DirectRecords(spec));
}

}  // namespace
