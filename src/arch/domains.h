// Security-domain id conventions used by the architecture models.
//
// The simulator compares domain ids but assigns them no meaning; these
// constants are the meaning.
#pragma once

#include "sim/types.h"

namespace hwsec::arch {

/// The untrusted OS / normal world / host application.
inline constexpr hwsec::sim::DomainId kOsDomain = hwsec::sim::kDomainNormal;

/// TrustZone's secure world (one domain for the whole world — the paper's
/// "single enclave" observation).
inline constexpr hwsec::sim::DomainId kSecureWorldDomain = 1;

/// Bus attribute for DMA devices the OS controls (the malicious
/// peripheral in DMA-attack experiments).
inline constexpr hwsec::sim::DomainId kUntrustedDeviceDomain = 2;

/// Bus attribute for peripherals assigned to the secure world
/// (TrustZone's secure channels).
inline constexpr hwsec::sim::DomainId kSecureDeviceDomain = 3;

/// First id handed out to dynamically created enclaves (SGX enclaves,
/// Sanctum enclaves, Sanctuary apps, Sancus modules, Trustlets).
inline constexpr hwsec::sim::DomainId kFirstEnclaveDomain = 16;

}  // namespace hwsec::arch
