#include "conformance/shrink.h"

#include <algorithm>

namespace hwsec::conformance {

namespace sim = hwsec::sim;

namespace {

bool is_nop(const sim::Instruction& inst) { return inst.op == sim::Opcode::kNop; }

struct Shrinker {
  const ArchContext& arch;
  BugInjection inject;
  std::size_t runs = 0;

  bool still_fails(const GeneratedCase& candidate) {
    ++runs;
    // Fresh machine, fixed seed: the verdict of a candidate must depend
    // only on its instructions, never on pooling or the original seed.
    return run_case(arch, candidate, /*seed=*/0, /*pool=*/nullptr, MachineVariant::kFresh,
                    inject)
        .failed();
  }

  /// Nops out [begin, begin+len) of one program if the case still fails.
  bool try_nop_chunk(GeneratedCase& test, sim::Program GeneratedCase::*prog, std::size_t begin,
                     std::size_t len) {
    GeneratedCase candidate = test;
    std::vector<sim::Instruction>& code = (candidate.*prog).code;
    bool changed = false;
    for (std::size_t i = begin; i < begin + len && i < code.size(); ++i) {
      if (!is_nop(code[i])) {
        code[i] = sim::Instruction{};  // kNop.
        changed = true;
      }
    }
    if (!changed || !still_fails(candidate)) {
      return false;
    }
    test = std::move(candidate);
    return true;
  }

  void nop_pass(GeneratedCase& test, sim::Program GeneratedCase::*prog) {
    const std::size_t n = (test.*prog).code.size();
    if (n == 0) {
      return;
    }
    for (std::size_t chunk = std::max<std::size_t>(n / 2, 1);; chunk /= 2) {
      for (std::size_t begin = 0; begin < n; begin += chunk) {
        try_nop_chunk(test, prog, begin, chunk);
      }
      if (chunk == 1) {
        break;
      }
    }
  }

  /// Drops trailing nops (keeping the final instruction, normally kHalt).
  bool try_truncate_tail(GeneratedCase& test, sim::Program GeneratedCase::*prog) {
    GeneratedCase candidate = test;
    std::vector<sim::Instruction>& code = (candidate.*prog).code;
    if (code.size() < 2) {
      return false;
    }
    const sim::Instruction last = code.back();
    std::size_t keep = code.size() - 1;
    while (keep > 0 && is_nop(code[keep - 1])) {
      --keep;
    }
    if (keep == code.size() - 1) {
      return false;
    }
    code.resize(keep);
    code.push_back(last);
    if (!still_fails(candidate)) {
      return false;
    }
    test = std::move(candidate);
    return true;
  }
};

}  // namespace

std::size_t case_instruction_count(const GeneratedCase& test) {
  const auto count = [](const sim::Program& p) {
    return static_cast<std::size_t>(
        std::count_if(p.code.begin(), p.code.end(),
                      [](const sim::Instruction& i) { return !is_nop(i); }));
  };
  return count(test.normal) + count(test.enclave);
}

ShrinkResult shrink_case(const ArchContext& arch, GeneratedCase test, BugInjection inject) {
  Shrinker s{arch, inject};
  if (!s.still_fails(test)) {
    const std::size_t instructions = case_instruction_count(test);
    return {std::move(test), instructions, s.runs};
  }
  for (;;) {
    const std::size_t before = case_instruction_count(test) + test.normal.code.size() +
                               test.enclave.code.size();
    s.nop_pass(test, &GeneratedCase::normal);
    s.nop_pass(test, &GeneratedCase::enclave);
    s.try_truncate_tail(test, &GeneratedCase::normal);
    s.try_truncate_tail(test, &GeneratedCase::enclave);
    const std::size_t after = case_instruction_count(test) + test.normal.code.size() +
                              test.enclave.code.size();
    if (after == before) {
      break;
    }
  }
  const std::size_t instructions = case_instruction_count(test);
  return {std::move(test), instructions, s.runs};
}

}  // namespace hwsec::conformance
