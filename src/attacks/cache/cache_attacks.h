// Software cache side-channel attacks on T-table AES (§4.1): Flush+Reload
// (Yarom/Falkner [42]), Prime+Probe and Evict+Time (Osvik/Shamir/Tromer
// [34]).
//
// All three are first-round attacks recovering the HIGH NIBBLE of every
// key byte: a 64-byte line holds 16 four-byte T-table entries, so
// observing that the victim touched line l of table (i mod 4) reveals
// (pt[i] ⊕ k[i]) >> 4 == l, i.e. k[i] >> 4 == l ⊕ (pt[i] >> 4). With the
// high nibbles of all 16 bytes the remaining key space is 2^64 → the
// standard follow-up is a second-round attack or brute force; recovering
// the 64 high-nibble bits is the accepted success criterion and what the
// E3 bench scores.
//
// The attacker is an ordinary process: it times its own memory accesses
// (latency from the simulated hierarchy), may CLFLUSH lines it can map
// (Flush+Reload's shared-memory precondition), and may allocate memory to
// build eviction sets (Prime+Probe / Evict+Time need no shared memory —
// which is why they, unlike Flush+Reload, still apply to enclave victims).
#pragma once

#include <array>
#include <functional>

#include "attacks/cache/eviction.h"
#include "attacks/cache/victim.h"
#include "sim/rng.h"

namespace hwsec::attacks {

/// One victim invocation with a chosen plaintext.
using VictimFn = std::function<AesCacheVictim::Run(const hwsec::crypto::AesBlock&)>;

struct CacheAttackResult {
  std::array<std::uint8_t, 16> high_nibbles{};  ///< recovered k[i] >> 4.
  std::array<std::uint32_t, 16> best_votes{};
  std::array<std::uint32_t, 16> second_votes{};
  std::uint64_t trials = 0;

  /// Number of key bytes whose high nibble was recovered correctly.
  std::uint32_t correct_nibbles(const hwsec::crypto::AesKey& key) const {
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      n += high_nibbles[i] == (key[i] >> 4) ? 1u : 0u;
    }
    return n;
  }
  /// Mean best/second vote ratio — the attack's confidence.
  double mean_margin() const;
};

struct CacheAttackConfig {
  std::uint64_t trials = 2000;
  hwsec::sim::CoreId attacker_core = 0;
  hwsec::sim::DomainId attacker_domain = hwsec::sim::kDomainNormal;
  /// Latency separating a shared-cache hit from DRAM on the reload side.
  hwsec::sim::Cycle hit_threshold = 100;
  /// Prime passes per observation. One suffices under LRU (the victim's
  /// stale line is always the eviction victim); approximate policies
  /// (tree-PLRU) may displace the attacker's own lines instead, so real
  /// attackers prime repeatedly until the set converges.
  std::uint32_t prime_rounds = 2;
  std::uint64_t rng_seed = 2024;
};

/// Flush+Reload. Requires the table lines to be flushable by the attacker
/// (shared memory). `layout` is the victim table placement.
CacheAttackResult flush_reload_attack(hwsec::sim::Machine& machine, const TableLayout& layout,
                                      const VictimFn& victim, const CacheAttackConfig& config);

/// Prime+Probe through the shared LLC. `allocator` supplies attacker
/// frames for eviction sets (pass the architecture's OS allocator to
/// model page-coloring regimes).
CacheAttackResult prime_probe_attack(hwsec::sim::Machine& machine, const TableLayout& layout,
                                     const VictimFn& victim, const CacheAttackConfig& config,
                                     EvictionSetBuilder::FrameAllocator allocator = nullptr);

/// Evict+Time: evict one table line, time the whole victim run.
CacheAttackResult evict_time_attack(hwsec::sim::Machine& machine, const TableLayout& layout,
                                    const VictimFn& victim, const CacheAttackConfig& config,
                                    EvictionSetBuilder::FrameAllocator allocator = nullptr);

}  // namespace hwsec::attacks
