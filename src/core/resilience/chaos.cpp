#include "core/resilience/chaos.h"

#include <chrono>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "sim/rng.h"

namespace hwsec::core {

namespace {

void note_injection(const char* kind) {
  static const obs::Counter kInjections = obs::counter("chaos_injections");
  kInjections.add(1);
  obs::Tracer::instance().instant(kind);
}

}  // namespace

ChaosInjector::ChaosInjector(const ChaosConfig& config, std::size_t trial_index,
                             unsigned attempt)
    : config_(config),
      stream_seed_(hwsec::sim::derive_seed(hwsec::sim::derive_seed(config.seed, trial_index),
                                           attempt)) {}

WorkerFault ChaosInjector::roll_worker_fault() const {
  if (!config_.worker_faults_enabled()) {
    return WorkerFault::kNone;
  }
  // A separate stream (salted off the per-(trial, attempt) seed) keeps the
  // in-trial dice in inject() byte-for-byte unchanged.
  hwsec::sim::Rng rng(hwsec::sim::derive_seed(stream_seed_, 0x51CC177));
  const bool kill = rng.chance(config_.worker_kill_probability);
  const bool stop = rng.chance(config_.worker_stop_probability);
  if (kill) {
    return WorkerFault::kKill;
  }
  return stop ? WorkerFault::kStop : WorkerFault::kNone;
}

void ChaosInjector::inject() {
  if (!config_.enabled()) {
    return;
  }
  hwsec::sim::Rng rng(stream_seed_);
  // Every die is rolled regardless of the previous outcomes, so each
  // decision depends only on (seed, trial, attempt) — never on which other
  // injections were configured.
  const bool delay = rng.chance(config_.delay_probability);
  const std::uint32_t delay_us =
      config_.max_delay_us == 0 ? 0 : static_cast<std::uint32_t>(rng.below(config_.max_delay_us + 1));
  const bool fail_alloc = rng.chance(config_.bad_alloc_probability);
  const bool fail_throw = rng.chance(config_.throw_probability);

  if (delay && delay_us > 0) {
    note_injection("chaos_delay");
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  if (fail_alloc) {
    note_injection("chaos_bad_alloc");
    throw std::bad_alloc();
  }
  if (fail_throw) {
    note_injection("chaos_throw");
    throw std::runtime_error("chaos: injected trial exception");
  }
}

}  // namespace hwsec::core
