// Golden-file regression test for the Figure-1 evaluation matrix.
//
// Serializes the discrete, deterministic outputs of
// core::evaluate_all_platforms(seed=42) — importance levels, probe
// applicability/success booleans, success-rate ratios, modeled exposure —
// to JSON and compares byte-for-byte against tests/golden/figure1.json.
// Floating-point *measurements* (MIPS, nJ/instruction) are deliberately
// excluded: they move with legitimate timing-model tuning, while the
// matrix itself must not drift silently.
//
// To regenerate after an intentional change:
//   HWSEC_UPDATE_GOLDEN=1 ./build/tests/test_golden_figure1
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/evaluation.h"

namespace core = hwsec::core;

namespace {

std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

void append_probes(std::ostringstream& out, const char* key,
                   const std::vector<core::AttackProbe>& probes) {
  out << "      \"" << key << "\": [\n";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    out << "        {\"name\": \"" << probes[i].name << "\", \"applicable\": "
        << (probes[i].applicable ? "true" : "false") << ", \"succeeded\": "
        << (probes[i].succeeded ? "true" : "false") << "}" << (i + 1 < probes.size() ? "," : "")
        << "\n";
  }
  out << "      ]";
}

std::string serialize(const std::vector<core::PlatformEvaluation>& columns) {
  std::ostringstream out;
  out << "{\n  \"figure1\": [\n";
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const core::PlatformEvaluation& e = columns[c];
    out << "    {\n"
        << "      \"platform\": \"" << e.platform << "\",\n"
        << "      \"levels\": {\"remote\": " << e.remote << ", \"local\": " << e.local
        << ", \"classical_physical\": " << e.classical_physical
        << ", \"microarchitectural\": " << e.microarchitectural
        << ", \"performance\": " << e.performance << ", \"energy_budget\": " << e.energy_budget
        << "},\n"
        << "      \"uarch_success_rate\": " << ratio(e.uarch_success_rate) << ",\n"
        << "      \"physical_success_rate\": " << ratio(e.physical_success_rate) << ",\n"
        << "      \"physical_exposure\": " << ratio(e.physical_exposure) << ",\n";
    append_probes(out, "uarch_probes", e.uarch_probes);
    out << ",\n";
    append_probes(out, "physical_probes", e.physical_probes);
    out << "\n    }" << (c + 1 < columns.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string golden_path() { return std::string(HWSEC_GOLDEN_DIR) + "/figure1.json"; }

}  // namespace

TEST(GoldenFigure1, MatrixMatchesGoldenFile) {
  const std::vector<core::PlatformEvaluation> columns = core::evaluate_all_platforms(42);
  ASSERT_EQ(columns.size(), 3u);
  for (const core::PlatformEvaluation& e : columns) {
    EXPECT_TRUE(e.errors.empty()) << e.platform << ": " << e.errors.front();
  }
  const std::string current = serialize(columns);

  if (std::getenv("HWSEC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    out << current;
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " (regenerate with HWSEC_UPDATE_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(current, expected.str())
      << "Figure-1 matrix drifted from tests/golden/figure1.json. If the change is\n"
         "intentional, regenerate with: HWSEC_UPDATE_GOLDEN=1 ./test_golden_figure1";
}

TEST(GoldenFigure1, SerializationIsDeterministic) {
  const std::string a = serialize(core::evaluate_all_platforms(42));
  const std::string b = serialize(core::evaluate_all_platforms(42));
  EXPECT_EQ(a, b);
}
