// Sancus model (paper §3.3, [33]) — SMART's ideas with a ZERO-software
// TCB: isolation and attestation are pure hardware, and multiple
// "software modules" (SMs) are supported.
//
// Modeled mechanisms:
//  * per-module hardware isolation: an SM's data section is accessible
//    only while the PC is inside the SM's code section (EA-MPU code
//    gate); code is enterable only at its declared entry point.
//  * hardware key hierarchy: K_sm = KDF(K_master, vendor ‖ name ‖
//    measurement). No software ever handles K_master; verification is
//    done by the vendor who can derive the same K_sm.
//  * attestation: MAC over nonce with K_sm — possible only from inside
//    the module (hardware instruction), giving remote attestation with
//    no trusted software at all.
//  * like SMART: no DMA protection, no side-channel consideration.
#pragma once

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class Sancus final : public hwsec::tee::Architecture {
 public:
  struct Config {
    std::string vendor_id = "vendor-0001";
  };

  explicit Sancus(hwsec::sim::Machine& machine) : Sancus(machine, Config{}) {}
  Sancus(hwsec::sim::Machine& machine, Config config);
  ~Sancus() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;

  /// Attestation round trip with the vendor-side key derivation (there
  /// is no single platform verification key: every module has its own).
  bool attestation_round_trip(const hwsec::tee::Nonce& nonce) override;

  /// Vendor-side key derivation (the remote verifier's half of the
  /// protocol): K_sm for a module with `name` and `measurement`.
  std::vector<std::uint8_t> derive_module_key(
      const std::string& name, const hwsec::crypto::Sha256Digest& measurement) const;

  /// MPU verdict for an access to `id`'s data section from code at `pc`.
  hwsec::sim::Fault try_data_access(hwsec::tee::EnclaveId id, hwsec::sim::PhysAddr pc) const;

 private:
  Config config_;
  std::vector<std::uint8_t> master_key_;
  hwsec::sim::DomainId next_domain_ = kFirstEnclaveDomain;
};

}  // namespace hwsec::arch
