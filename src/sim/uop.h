// Predecoded micro-op representation of a Program.
//
// The legacy interpreter resolves every committed instruction through
// `instruction_at` and a 30-way opcode switch over the full Instruction
// struct (64-bit immediate, branch cond, three register fields). Campaign
// profiles showed that after PR 3 killed per-trial setup cost, this
// decode-dispatch loop *was* the campaign. A DecodedProgram lowers each
// Instruction once, at load time, into a dense 12-byte micro-op with the
// immediate pre-cast to the 32-bit machine word and shift amounts
// pre-masked, so the dispatch core (sim/dispatch.cpp) touches exactly one
// cache line per op and never re-derives operand fields.
//
// Decoded programs are immutable and shared: the UopCache keys them by
// program content, so the machine pool decodes each distinct attack
// program once per process instead of once per trial. Cpu::load_program
// consults the cache when one is installed (Machine::set_uop_cache) and
// decodes privately otherwise.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/isa.h"
#include "sim/program.h"
#include "sim/types.h"

namespace hwsec::sim {

/// Micro-op handler id. Mirrors Opcode one-to-one today; kept a separate
/// enum so the dispatch core may grow fused/specialized handlers without
/// touching the ISA.
enum class UopKind : std::uint8_t {
  kNop,
  kHalt,
  kLoadImm,
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kMul,
  kAddImm,
  kAndImm,
  kXorImm,
  kShlImm,
  kShrImm,
  kLoad,
  kLoadByte,
  kStore,
  kStoreByte,
  kBranch,
  kJump,
  kJumpInd,
  kCall,
  kCallInd,
  kRet,
  kFence,
  kClflush,
  kRdCycle,
  kEcall,
};

inline constexpr std::uint32_t kNumUopKinds = 30;

/// One predecoded micro-op. 12 bytes, trivially copyable. `imm` carries
/// the immediate already narrowed to the machine word — every consumer in
/// the commit path uses `static_cast<Word>(inst.imm)` semantics, so the
/// narrowing is exact — and for kShlImm/kShrImm the shift amount is
/// additionally pre-masked to 5 bits.
struct Uop {
  UopKind kind = UopKind::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  BranchCond cond = BranchCond::kEq;
  Word imm = 0;
};

/// A Program lowered to micro-ops. Keeps the original instruction vector
/// (the transient-window executor and instruction_at still serve from it)
/// but drops the label map, which trials never consult after load.
struct DecodedProgram {
  VirtAddr base = 0;
  VirtAddr end = 0;  ///< base + 4 * code.size().
  std::vector<Instruction> code;
  std::vector<Uop> uops;  ///< uops[i] decodes code[i].
  std::uint64_t identity = 0;  ///< content hash (base + instruction fields).

  const Instruction* at(VirtAddr pc) const {
    if (pc < base || pc >= end || (pc - base) % 4 != 0) {
      return nullptr;
    }
    return &code[(pc - base) / 4];
  }
};

/// Content hash of a program (FNV-1a over base and instruction fields).
std::uint64_t program_identity(const Program& program);

/// Lowers `program` to micro-ops. Stand-alone entry point for cache-less
/// use; UopCache::get_or_decode is the pooled path.
std::shared_ptr<const DecodedProgram> decode_program(const Program& program);

/// Process-wide (or pool-wide) cache of decoded programs, keyed by content
/// identity with full structural equality on hash collision. Thread-safe:
/// pool workers on different machines load the same attack programs
/// concurrently. Bounded: decoding is cheap, so on overflow the cache is
/// simply cleared (outstanding shared_ptrs keep their programs alive).
class UopCache {
 public:
  std::shared_ptr<const DecodedProgram> get_or_decode(const Program& program);

  std::size_t size() const;

  static constexpr std::size_t kMaxEntries = 1024;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<const DecodedProgram>>> by_hash_;
  std::size_t entries_ = 0;
};

}  // namespace hwsec::sim
