// Extension features: TLB side channel + partitioning, branch shadowing
// + predictor-flush mitigation, TimeWarp-style timer coarsening, the
// performance-counter attack detector, and C-FLAT control-flow
// attestation.
#include <gtest/gtest.h>

#include "attacks/cache/cache_attacks.h"
#include "attacks/cache/tlb_attack.h"
#include "attacks/transient/branch_shadow.h"
#include "core/detector.h"
#include "tee/cflat.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace attacks = hwsec::attacks;
namespace core = hwsec::core;
namespace crypto = hwsec::crypto;

namespace {

// ---- TLB attack ----------------------------------------------------------

TEST(TlbAttack, RecoversSecretNibblesThroughSharedTlb) {
  sim::Machine machine(sim::MachineProfile::server(), 901);
  attacks::TlbAttack attack(machine, 0);
  EXPECT_GE(attack.accuracy(64), 0.95)
      << "ASID tagging does not stop the occupancy channel (Gras et al.)";
}

TEST(TlbAttack, WayPartitioningClosesTheChannel) {
  sim::Machine machine(sim::MachineProfile::server(), 902);
  attacks::TlbAttack attack(machine, 0);
  // Give attacker and victim disjoint TLB ways.
  attack.mmu().tlb().set_way_partition(attacks::TlbAttack::kAttackerAsid, 0, 2);
  attack.mmu().tlb().set_way_partition(attacks::TlbAttack::kVictimAsid, 2, 2);
  EXPECT_LE(attack.accuracy(64), 0.15)
      << "with disjoint ways the victim cannot displace attacker entries";
}

TEST(Tlb, PartitionScrubsOutOfRangeEntries) {
  sim::Tlb tlb({.entries = 16, .ways = 4, .asid_tagged = true});
  tlb.insert(0x1000 * sim::kPageSize, 0x2000, 0, 5);
  tlb.set_way_partition(5, 0, 1);
  // The entry may have landed in any way; after partitioning to way 0,
  // either it survived (was in way 0) or was scrubbed — but a fresh
  // insert must stay inside the partition and be findable.
  tlb.insert(0x2000 * sim::kPageSize, 0x3000, 0, 5);
  EXPECT_TRUE(tlb.present(0x2000 * sim::kPageSize, 5));
}

// ---- branch shadowing -------------------------------------------------------

TEST(BranchShadow, InfersEnclaveBranchDirections) {
  sim::Machine machine(sim::MachineProfile::server(), 903);
  attacks::BranchShadowAttack attack(machine, 0);
  EXPECT_GE(attack.accuracy(64), 0.95)
      << "the shared PHT leaks the victim's branch direction (Lee et al.)";
}

TEST(BranchShadow, PredictorFlushBlindsTheShadow) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.predictor.flush_on_domain_switch = true;
  sim::Machine machine(profile, 904);
  attacks::BranchShadowAttack attack(machine, 0);
  const double acc = attack.accuracy(64);
  EXPECT_LE(acc, 0.75) << "flushed counters carry no victim training";
}

// ---- TimeWarp timer defense ---------------------------------------------------

TEST(TimerDefense, PerfectTimerPassesThrough) {
  sim::Machine machine(sim::MachineProfile::server(), 905);
  EXPECT_EQ(machine.observe_latency(123), 123u);
}

TEST(TimerDefense, GranularitySnapsReadings) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.timer.granularity = 100;
  sim::Machine machine(profile, 906);
  EXPECT_EQ(machine.observe_latency(34), 0u);
  EXPECT_EQ(machine.observe_latency(184), 100u);
  EXPECT_EQ(machine.observe_latency(250), 200u);
}

TEST(TimerDefense, CoarseJitteryTimerDegradesFlushReload) {
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  auto run = [&key](sim::Cycle granularity, sim::Cycle jitter) {
    sim::MachineProfile profile = sim::MachineProfile::server();
    profile.timer.granularity = granularity;
    profile.timer.jitter = jitter;
    sim::Machine machine(profile, 907);
    const sim::PhysAddr tables = machine.alloc_frames(2);
    attacks::AesCacheVictim victim(machine, 1, 7, tables, key);
    attacks::CacheAttackConfig config;
    config.trials = 300;
    return attacks::flush_reload_attack(
               machine, victim.layout(),
               [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config)
        .correct_nibbles(key);
  };
  EXPECT_EQ(run(1, 0), 16u);
  // TimeWarp's own claim is degradation, not elimination: the attacker
  // needs quadratically more samples. Under a fixed 300-trial budget the
  // fuzzed timer must cost a substantial fraction of the key.
  EXPECT_LE(run(512, 512), 12u)
      << "readings coarser than the hit/miss gap must degrade the signal (TimeWarp)";
}

// ---- randomized address-to-set mapping ([40] / CEASER-family) -------------

TEST(RandomizedMapping, ScrambleSpreadsCongruentLinesAndRekeyFlushes) {
  sim::Cache cache({.name = "r", .size_bytes = 64 * 1024, .ways = 4, .line_size = 64,
                    .policy = sim::ReplacementPolicy::kLru, .hit_latency = 4},
                   1);
  // Identity mapping: stride = line * sets lands every line in set 0.
  const sim::PhysAddr stride = 64 * cache.config().num_sets();
  cache.set_index_scramble(0xFEED);
  std::uint32_t distinct = 0;
  std::vector<bool> seen(cache.config().num_sets(), false);
  for (sim::PhysAddr i = 0; i < 64; ++i) {
    const std::uint32_t set = cache.set_index(i * stride);
    if (!seen[set]) {
      seen[set] = true;
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 32u) << "keyed mapping must break identity congruence classes";
  cache.access(0, 0, sim::AccessType::kRead);
  ASSERT_TRUE(cache.probe(0));
  cache.rekey(0xBEEF);
  EXPECT_FALSE(cache.probe(0)) << "a remap epoch invalidates placements";
}

TEST(RandomizedMapping, StaticScrambleAloneDoesNotStopAnAdaptedAttacker) {
  // The CEASER-static lesson: once the attacker has learned the mapping
  // (modeled by the eviction-set builder consulting the scrambled
  // set_index), a fixed randomization changes nothing.
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  sim::Machine machine(sim::MachineProfile::server(), 921);
  machine.caches().llc().set_index_scramble(0xD00D);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, key);
  attacks::CacheAttackConfig config;
  config.trials = 400;
  const auto result = attacks::prime_probe_attack(
      machine, victim.layout(),
      [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config);
  EXPECT_GE(result.correct_nibbles(key), 15u);
}

TEST(RandomizedMapping, PeriodicRekeyingStarvesTheAttack) {
  // Dynamic re-keying (the [40]-family's actual strength): learned
  // eviction sets go stale every epoch, faster than the attack gathers
  // observations.
  const crypto::AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                              0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  sim::Machine machine(sim::MachineProfile::server(), 922);
  machine.caches().llc().set_index_scramble(0xD00D);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, key);
  attacks::CacheAttackConfig config;
  config.trials = 400;
  std::uint64_t calls = 0;
  std::uint64_t epoch = 1;
  const auto result = attacks::prime_probe_attack(
      machine, victim.layout(),
      [&victim, &machine, &calls, &epoch](const crypto::AesBlock& pt) {
        if (++calls % 8 == 0) {
          machine.caches().llc().rekey(0xD00D + (++epoch));
        }
        return victim.encrypt(pt);
      },
      config);
  EXPECT_LE(result.correct_nibbles(key), 6u)
      << "stale eviction sets carry no signal across remap epochs";
}

// ---- performance-counter detector -----------------------------------------------

TEST(Detector, FlagsPrimeProbeAndNotBenignActivity) {
  const crypto::AesKey key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 2, 3, 4, 5, 6, 7};
  sim::Machine machine(sim::MachineProfile::server(), 908);
  const sim::PhysAddr tables = machine.alloc_frames(2);
  attacks::AesCacheVictim victim(machine, 1, 7, tables, key);
  core::CacheAttackDetector detector(machine, /*victim_domain=*/7);

  hwsec::sim::Rng rng(909);
  auto random_block = [&rng]() {
    crypto::AesBlock b;
    for (auto& byte : b) {
      byte = static_cast<std::uint8_t>(rng.next_u32());
    }
    return b;
  };

  // Calibrate over benign windows: the victim encrypts, a co-tenant does
  // ordinary memory work.
  const sim::PhysAddr cotenant = machine.alloc_frames(8);
  for (int w = 0; w < 10; ++w) {
    detector.begin_window();
    for (int i = 0; i < 20; ++i) {
      victim.encrypt(random_block());
      for (sim::PhysAddr a = 0; a < 8 * sim::kPageSize; a += 256) {
        machine.touch(0, sim::kDomainNormal, cotenant + a);
      }
    }
    detector.end_window();
  }
  detector.finish_calibration();

  // More benign windows: no alerts.
  for (int w = 0; w < 5; ++w) {
    detector.begin_window();
    for (int i = 0; i < 20; ++i) {
      victim.encrypt(random_block());
    }
    detector.end_window();
  }
  EXPECT_EQ(detector.alerts(), 0u);

  // Attack window: Prime+Probe hammers the victim's sets.
  detector.begin_window();
  attacks::CacheAttackConfig config;
  config.trials = 60;
  attacks::prime_probe_attack(
      machine, victim.layout(),
      [&victim](const crypto::AesBlock& pt) { return victim.encrypt(pt); }, config);
  const auto reading = detector.end_window();
  EXPECT_TRUE(reading.flagged) << "victim evictions in window: " << reading.victim_evictions
                               << " vs baseline " << detector.baseline_mean();
  EXPECT_GE(detector.alerts(), 1u);
}

// ---- C-FLAT control-flow attestation ------------------------------------------------

class CflatTest : public ::testing::Test {
 protected:
  CflatTest() : machine_(sim::MachineProfile::embedded(), 910) {
    // A tiny firmware routine with input-dependent control flow: takes r1,
    // branches, loops r1 times, returns a value in r2.
    sim::ProgramBuilder b(0x4000);
    b.label("entry")
        .li(sim::R2, 0)
        .label("loop")
        .br(sim::BranchCond::kGeu, sim::R2, sim::R1, "done")
        .addi(sim::R2, sim::R2, 1)
        .jump("loop")
        .label("done")
        .halt();
    program_ = b.build();
    machine_.cpu(0).load_program(program_);
  }

  crypto::Sha256Digest run_measured(sim::Word input) {
    tee::CflatMonitor monitor(machine_.cpu(0));
    monitor.begin();
    machine_.cpu(0).set_reg(sim::R1, input);
    machine_.cpu(0).run_from(program_.address_of("entry"), 1000);
    return monitor.end();
  }

  sim::Machine machine_;
  sim::Program program_;
};

TEST_F(CflatTest, SameInputSamePathDigest) {
  EXPECT_EQ(run_measured(3), run_measured(3));
}

TEST_F(CflatTest, DifferentPathsDifferentDigests) {
  EXPECT_NE(run_measured(1), run_measured(2));
  EXPECT_NE(run_measured(0), run_measured(1));
}

TEST_F(CflatTest, VerifierAcceptsLegalPathsRejectsHijack) {
  const std::vector<std::uint8_t> key(32, 0x5F);
  // Verifier precomputes digests of the legal inputs 0..4.
  std::vector<crypto::Sha256Digest> legal;
  for (sim::Word input = 0; input < 5; ++input) {
    legal.push_back(run_measured(input));
  }
  tee::Nonce nonce{};
  nonce[0] = 0xCF;

  // Honest prover, input 2: accepted.
  const auto honest = tee::attest_path(key, run_measured(2), nonce);
  EXPECT_TRUE(tee::verify_path(key, honest, nonce, legal));

  // "Hijacked" execution: the adversary diverts control flow — modeled by
  // running with an out-of-policy input (a path the verifier never
  // approved). Same code, different path: rejected.
  const auto hijacked = tee::attest_path(key, run_measured(9), nonce);
  EXPECT_FALSE(tee::verify_path(key, hijacked, nonce, legal));

  // Forged report without the platform key: rejected regardless of path.
  const std::vector<std::uint8_t> wrong_key(32, 0x60);
  const auto forged = tee::attest_path(wrong_key, run_measured(2), nonce);
  EXPECT_FALSE(tee::verify_path(key, forged, nonce, legal));
}

TEST_F(CflatTest, TransferCountTracksLoopIterations) {
  tee::CflatMonitor monitor(machine_.cpu(0));
  monitor.begin();
  machine_.cpu(0).set_reg(sim::R1, 4);
  machine_.cpu(0).run_from(program_.address_of("entry"), 1000);
  monitor.end();
  // Each iteration: branch + jump = 2 transfers; final branch = 1.
  EXPECT_EQ(monitor.transfers_recorded(), 4u * 2 + 1);
}

}  // namespace
