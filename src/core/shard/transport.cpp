#include "core/shard/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace hwsec::core::shard {

bool Transport::recv_blocking(Frame& out, std::chrono::milliseconds timeout) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout.count() >= 0;
  const Clock::time_point deadline = Clock::now() + timeout;
  while (true) {
    if (next(out)) {
      return true;
    }
    if (corrupt()) {
      return false;
    }
    const int fd = poll_fd();
    if (fd < 0) {
      return false;
    }
    int wait_ms = 100;
    if (bounded) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      if (left.count() <= 0) {
        return false;
      }
      wait_ms = static_cast<int>(std::min<std::int64_t>(left.count(), 100));
    }
    pollfd pfd{fd, POLLIN, 0};
    poll(&pfd, 1, wait_ms);
    if (!pump()) {
      // EOF may still have completed a buffered frame; surface it before
      // reporting the stream dead.
      return next(out);
    }
  }
}

FdTransport::FdTransport(int read_fd, int write_fd, std::uint32_t max_payload)
    : read_fd_(read_fd), write_fd_(write_fd), inbuf_(max_payload) {
  if (read_fd_ >= 0) {
    fcntl(read_fd_, F_SETFL, O_NONBLOCK);
  }
}

FdTransport::~FdTransport() { FdTransport::close(); }

bool FdTransport::send(const Frame& frame) {
  if (write_fd_ < 0) {
    return false;
  }
  const std::string wire = encode_frame(frame);
  return write_bytes(wire.data(), wire.size());
}

bool FdTransport::write_bytes(const char* data, std::size_t n) {
  return write_all_fd(write_fd_, data, n);
}

ssize_t FdTransport::read_some(char* data, std::size_t n, bool& would_block) {
  would_block = false;
  while (true) {
    const ssize_t got = ::read(read_fd_, data, n);
    if (got >= 0) {
      return got;  // 0 = EOF.
    }
    if (errno == EINTR) {
      continue;
    }
    would_block = errno == EAGAIN || errno == EWOULDBLOCK;
    return -1;
  }
}

bool FdTransport::pump() {
  if (read_fd_ < 0) {
    return false;
  }
  char chunk[4096];
  while (true) {
    bool would_block = false;
    const ssize_t got = read_some(chunk, sizeof(chunk), would_block);
    if (got > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) {
      return false;  // peer closed.
    }
    return would_block;
  }
}

void FdTransport::shutdown_writes() {
  if (write_fd_ < 0) {
    return;
  }
  if (write_fd_ == read_fd_) {
    ::shutdown(write_fd_, SHUT_WR);  // socket: half-close, reads continue.
  } else {
    ::close(write_fd_);  // pipe pair: closing the command end is the EOF.
  }
  write_fd_ = -1;
}

void FdTransport::close() {
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
}

// ---- FaultyTransport ----------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FaultyTransport::FaultyTransport(int read_fd, int write_fd, const FaultPlan& plan,
                                 std::uint32_t max_payload)
    : FdTransport(read_fd, write_fd, max_payload), plan_(plan) {
  set_label("faulty");
}

double FaultyTransport::roll(std::uint64_t lane, std::uint64_t index) const {
  const std::uint64_t bits =
      splitmix64(splitmix64(plan_.seed ^ (lane * 0x9E3779B97F4A7C15ull)) ^ index);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool FaultyTransport::stalled() const {
  return plan_.stall_duration.count() > 0 &&
         std::chrono::steady_clock::now() < stall_until_;
}

bool FaultyTransport::send(const Frame& frame) {
  if (write_fd_ < 0) {
    return false;
  }
  const std::uint64_t index = frames_out_++;
  if (stalled()) {
    return true;  // a wedged link swallows writes without erroring.
  }
  const std::string wire = encode_frame(frame);
  if (roll(/*lane=*/1, index) < plan_.disconnect_probability) {
    fired_.disconnects += 1;
    if (plan_.counts) {
      plan_.counts->disconnects += 1;
    }
    write_bytes(wire.data(), wire.size() / 2);  // truncated mid-frame...
    close();                                    // ...then the link drops.
    return false;
  }
  if (roll(/*lane=*/2, index) < plan_.short_write_probability) {
    fired_.short_writes += 1;
    if (plan_.counts) {
      plan_.counts->short_writes += 1;
    }
    // Scatter the frame across many tiny writes; the peer's FrameBuffer
    // must reassemble across arbitrary fragmentation.
    for (std::size_t off = 0; off < wire.size(); off += 3) {
      const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
      if (!write_bytes(wire.data() + off, n)) {
        return false;
      }
    }
    return true;
  }
  return write_bytes(wire.data(), wire.size());
}

ssize_t FaultyTransport::read_some(char* data, std::size_t n, bool& would_block) {
  if (stalled()) {
    would_block = true;  // bytes exist, but the wedged link yields none.
    return -1;
  }
  if (plan_.byte_trickle) {
    n = 1;
  }
  return FdTransport::read_some(data, n, would_block);
}

bool FaultyTransport::pump() {
  if (stalled()) {
    return true;
  }
  if (!plan_.byte_trickle) {
    return FdTransport::pump();
  }
  // One byte per pump: the slowest wire that still makes progress.
  char byte = 0;
  bool would_block = false;
  const ssize_t got = read_some(&byte, 1, would_block);
  if (got > 0) {
    inbuf_.append(&byte, 1);
    return true;
  }
  if (got == 0) {
    return false;
  }
  return would_block;
}

bool FaultyTransport::next(Frame& out) {
  if (has_pending_dup_) {
    out = pending_dup_;
    has_pending_dup_ = false;
    return true;
  }
  if (!FdTransport::next(out)) {
    return false;
  }
  const std::uint64_t index = frames_in_++;
  if ((out.type == FrameType::kTrial || out.type == FrameType::kShardDone) &&
      roll(/*lane=*/3, index) < plan_.duplicate_probability) {
    fired_.duplicates += 1;
    if (plan_.counts) {
      plan_.counts->duplicates += 1;
    }
    pending_dup_ = out;
    has_pending_dup_ = true;
  }
  if (roll(/*lane=*/4, index) < plan_.stall_probability) {
    fired_.stalls += 1;
    if (plan_.counts) {
      plan_.counts->stalls += 1;
    }
    stall_until_ = std::chrono::steady_clock::now() + plan_.stall_duration;
  }
  return true;
}

}  // namespace hwsec::core::shard
