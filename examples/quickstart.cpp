// Quickstart: the framework in one file.
//
//   1. build a simulated server machine;
//   2. deploy an SGX-style enclave holding a secret key;
//   3. call into it (the service sees plaintext, DRAM holds ciphertext);
//   4. attest it remotely;
//   5. watch a Meltdown attacker read kernel memory on the same machine —
//      and fail against a mitigated core.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "arch/sgx.h"
#include "attacks/transient/meltdown.h"
#include "sim/machine.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace attacks = hwsec::attacks;

int main() {
  // 1. A 4-core speculative machine with caches, MMU and DVFS.
  sim::Machine machine(sim::MachineProfile::server(), /*seed=*/2019);
  std::cout << "machine: " << machine.profile().name << ", " << machine.num_cores()
            << " cores, " << machine.memory().size() / (1024 * 1024) << " MiB DRAM\n";

  // 2. SGX on top of it, and an enclave with a provisioned secret.
  arch::Sgx sgx(machine);
  tee::EnclaveImage image;
  image.name = "payments-service";
  image.code = {0xC0, 0xDE};             // measured identity.
  image.secret = {'h', 'u', 'n', 't', 'e', 'r', '2', '!'};  // provisioned key.
  const auto created = sgx.create_enclave(image);
  std::cout << "enclave created: id=" << created.value
            << " measurement=" << hwsec::crypto::to_hex(tee::measure_image(image)).substr(0, 16)
            << "...\n";

  // 3. Call the enclave: it reads its own secret through the decrypting
  //    CPU path. Meanwhile DRAM only ever sees ciphertext.
  std::string seen_by_enclave;
  sgx.call_enclave(created.value, /*core=*/0, [&](tee::EnclaveContext& ctx) {
    for (std::uint32_t i = 0; i < 8; ++i) {
      seen_by_enclave.push_back(static_cast<char>(ctx.read8(2 + i)));
    }
  });
  const tee::EnclaveInfo* info = sgx.enclave(created.value);
  std::string in_dram;
  for (std::uint32_t i = 0; i < 8; ++i) {
    in_dram.push_back(static_cast<char>(machine.memory().read8(info->base + 2 + i)));
  }
  std::cout << "enclave reads its secret: \"" << seen_by_enclave << "\"\n";
  std::cout << "raw DRAM at the same address: \"";
  for (char c : in_dram) {
    std::cout << (c >= 32 && c < 127 ? c : '.');
  }
  std::cout << "\" (MEE ciphertext)\n";

  // 4. Remote attestation: report + quote, verified like a relying party.
  tee::Nonce nonce{};
  nonce[0] = 0x42;
  const auto quote = sgx.quote(created.value, nonce);
  const bool ok = tee::verify_quote(quote.value, sgx.attestation_n(), sgx.attestation_e(),
                                    sgx.report_verification_key(), nonce);
  std::cout << "remote attestation quote verifies: " << (ok ? "yes" : "NO") << "\n";

  // 5. The §4.2 pain: a user-space Meltdown attacker on the same machine.
  attacks::MeltdownAttack meltdown(machine, /*core=*/1);
  const sim::VirtAddr kernel_va = meltdown.plant_kernel_secret("root:x:0:0");
  std::cout << "meltdown leaks kernel memory: \"" << meltdown.leak_string(kernel_va, 10)
            << "\"\n";

  sim::MachineProfile fixed = sim::MachineProfile::server();
  fixed.cpu.meltdown_fault_forwarding = false;
  sim::Machine patched(fixed, 2020);
  attacks::MeltdownAttack meltdown2(patched, 0);
  const sim::VirtAddr va2 = meltdown2.plant_kernel_secret("root:x:0:0");
  std::cout << "same attack on mitigated silicon: \"" << meltdown2.leak_string(va2, 10)
            << "\" (nothing forwards)\n";
  return 0;
}
