// Wall-clock watchdog for trials that stop making simulated progress.
//
// The cycle budget in sim::TrialWatchdog is the deterministic first line of
// defence, but it only fires if the guest keeps committing instructions. A
// trial wedged on the host side (chaos delay, pathological host code) needs
// a real-time backstop: WallClockMonitor runs one background thread that
// flips the `cancel` flag of every registered watchdog whose deadline has
// passed. The cancelled Cpu then raises ErrorKind::kTimedOut at its next
// poll point. Cancellation timing is inherently nondeterministic, which is
// why resilient campaigns treat it as a last resort and lean on cycle
// budgets for reproducible timeouts.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

#include "sim/watchdog.h"

namespace hwsec::core {

class WallClockMonitor {
 public:
  /// `timeout` applies to every registered trial; zero disables the
  /// monitor entirely (watch() returns an inert registration and no
  /// thread is ever started).
  explicit WallClockMonitor(std::chrono::milliseconds timeout);
  ~WallClockMonitor();

  WallClockMonitor(const WallClockMonitor&) = delete;
  WallClockMonitor& operator=(const WallClockMonitor&) = delete;

  /// RAII handle: the watchdog is monitored while the registration is
  /// alive and forgotten when it is destroyed (normal trial completion).
  class Registration {
   public:
    Registration() = default;
    Registration(WallClockMonitor* monitor, std::uint64_t id)
        : monitor_(monitor), id_(id) {}
    Registration(Registration&& other) noexcept { *this = std::move(other); }
    Registration& operator=(Registration&& other) noexcept {
      release();
      monitor_ = other.monitor_;
      id_ = other.id_;
      other.monitor_ = nullptr;
      return *this;
    }
    Registration(const Registration&) = delete;
    Registration& operator=(const Registration&) = delete;
    ~Registration() { release(); }

   private:
    void release();

    WallClockMonitor* monitor_ = nullptr;
    std::uint64_t id_ = 0;
  };

  /// Starts the deadline clock for `watchdog`. The watchdog must outlive
  /// the returned registration.
  Registration watch(sim::TrialWatchdog& watchdog);

 private:
  struct Entry {
    sim::TrialWatchdog* watchdog = nullptr;
    std::chrono::steady_clock::time_point deadline;
  };

  void unwatch(std::uint64_t id);
  void loop();

  const std::chrono::milliseconds timeout_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t next_id_ = 1;
  bool stopping_ = false;
  std::thread thread_;  ///< started lazily by the first watch().
};

}  // namespace hwsec::core
