#include "arch/sancus.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

Sancus::Sancus(sim::Machine& machine, Config config)
    : Architecture(machine), config_(std::move(config)) {
  // K_master is fused silicon state; it never appears in any memory map
  // (unlike SMART's ROM key), so even DMA cannot lift it.
  master_key_.resize(32);
  for (auto& b : master_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }
}

Sancus::~Sancus() {
  if (!machine_->mpu().locked()) {
    for (const auto& [id, info] : enclaves_) {
      machine_->mpu().remove_region("sancus-" + std::to_string(id) + "-code");
      machine_->mpu().remove_region("sancus-" + std::to_string(id) + "-data");
    }
  }
}

const tee::ArchitectureTraits& Sancus::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "Sancus",
      .reference = "[33]",
      .target = sim::DeviceClass::kEmbedded,
      .tcb = tee::TcbType::kHardwareOnly,  // "zero-software TCB".
      .enclave_capacity = -1,
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kNone,
      .cache_defense = tee::CacheDefense::kNoSharedCaches,
      .secure_peripheral_channels = false,
      .attestation = tee::AttestationSupport::kRemote,
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = false,
      .secure_storage = false,
      .vendor_trust_required = false,
      .new_hardware_required = true,
      .considers_cache_sca = false,
      .considers_dma = false,
  };
  return kTraits;
}

std::vector<std::uint8_t> Sancus::derive_module_key(
    const std::string& name, const crypto::Sha256Digest& measurement) const {
  std::vector<std::uint8_t> info(config_.vendor_id.begin(), config_.vendor_id.end());
  info.insert(info.end(), name.begin(), name.end());
  info.insert(info.end(), measurement.begin(), measurement.end());
  const auto key = crypto::hmac_sha256(master_key_, info);
  return {key.begin(), key.end()};
}

tee::Expected<tee::EnclaveId> Sancus::create_enclave(const tee::EnclaveImage& image) {
  // Layout: one code page followed by the data pages. The data section is
  // reachable only while executing the code section.
  const std::uint32_t data_pages = std::max(1u, image_pages(image) - 1);
  const std::uint32_t pages = 1 + data_pages;

  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = tee::measure_image(image);
  info.domain = next_domain_++;
  info.base = machine_->alloc_frames(pages);
  info.pages = pages;
  info.initialized = true;
  tee::EnclaveInfo& registered = register_enclave(std::move(info));

  const sim::PhysAddr code_start = registered.base;
  const sim::PhysAddr code_end = code_start + sim::kPageSize;
  const sim::PhysAddr data_end = code_end + data_pages * sim::kPageSize;
  machine_->mpu().add_region({
      .name = "sancus-" + std::to_string(registered.id) + "-code",
      .start = code_start,
      .end = code_end,
      .readable = true,
      .writable = false,
      .executable = true,
      .code_gate_start = std::nullopt,
      .code_gate_end = std::nullopt,
      .entry_points = {code_start},
  });
  machine_->mpu().add_region({
      .name = "sancus-" + std::to_string(registered.id) + "-data",
      .start = code_end,
      .end = data_end,
      .readable = true,
      .writable = true,
      .executable = false,
      .code_gate_start = code_start,
      .code_gate_end = code_end,
      .entry_points = {},
  });

  // Code into the code page; secret into the data section.
  machine_->memory().write_block(code_start, image.code);
  machine_->memory().write_block(code_end, image.secret);
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::EnclaveError Sancus::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  machine_->memory().fill(info->base, info->pages * sim::kPageSize, 0);
  machine_->mpu().remove_region("sancus-" + std::to_string(id) + "-code");
  machine_->mpu().remove_region("sancus-" + std::to_string(id) + "-data");
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError Sancus::call_enclave(tee::EnclaveId id, sim::CoreId core,
                                       const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved = cpu.domain();
  cpu.switch_context(info->domain, cpu.privilege(), cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(20);  // hardware entry-point dispatch.
  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);
  cpu.switch_context(saved, cpu.privilege(), cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(20);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> Sancus::attest(tee::EnclaveId id,
                                                     const tee::Nonce& nonce) {
  const tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return {.value = {}, .error = tee::EnclaveError::kNoSuchEnclave};
  }
  const auto module_key = derive_module_key(info->name, info->measurement);
  return {.value = tee::make_report(module_key, info->measurement, nonce),
          .error = tee::EnclaveError::kOk};
}

bool Sancus::attestation_round_trip(const tee::Nonce& nonce) {
  tee::EnclaveImage probe;
  probe.name = "attestation-probe";
  probe.code = {0x5A};
  const auto created = create_enclave(probe);
  if (!created.ok()) {
    return false;
  }
  const auto report = attest(created.value, nonce);
  bool ok = false;
  if (report.ok()) {
    const auto key = derive_module_key(probe.name, tee::measure_image(probe));
    ok = tee::verify_report(key, report.value, nonce);
  }
  destroy_enclave(created.value);
  return ok;
}

sim::Fault Sancus::try_data_access(tee::EnclaveId id, sim::PhysAddr pc) const {
  const tee::EnclaveInfo* info = enclave(id);
  if (info == nullptr) {
    return sim::Fault::kBusError;
  }
  return machine_->mpu().check(info->base + sim::kPageSize, sim::AccessType::kRead, pc);
}

}  // namespace hwsec::arch
