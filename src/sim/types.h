// Common value types shared by every simulator component.
//
// The simulated machine is a 32-bit RISC multiprocessor with physically
// indexed caches. All quantities that cross module boundaries (addresses,
// cycle counts, security domains) are defined here so that the rest of the
// simulator never has to guess widths.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace hwsec::sim {

/// Virtual address in a 32-bit address space.
using VirtAddr = std::uint32_t;

/// Physical address. The simulated machines use at most 1 GiB of DRAM, so
/// 32 bits suffice; kept distinct from VirtAddr for documentation value.
using PhysAddr = std::uint32_t;

/// Machine word (register width).
using Word = std::uint32_t;

/// Double-width word for multiplication results and cycle arithmetic.
using DWord = std::uint64_t;

/// Monotonic cycle counter. 64-bit: experiments run for billions of cycles.
using Cycle = std::uint64_t;

/// Identifier of a hardware security domain. Security domains tag bus
/// transactions and cache lines: 0 is the conventional "untrusted OS /
/// normal world" domain; enclaves, the secure world, and devices get
/// their own ids. The interpretation of a domain id is up to the
/// architecture layer (src/arch); the simulator only compares them.
using DomainId = std::uint16_t;

inline constexpr DomainId kDomainNormal = 0;

/// Identifier of a CPU core.
using CoreId = std::uint8_t;

/// Page size used throughout (4 KiB, two-level page tables).
inline constexpr std::uint32_t kPageShift = 12;
inline constexpr std::uint32_t kPageSize = 1u << kPageShift;
inline constexpr std::uint32_t kPageOffsetMask = kPageSize - 1;

/// Returns the page number of an address (virtual or physical).
constexpr std::uint32_t page_number(std::uint32_t addr) { return addr >> kPageShift; }

/// Returns the page-aligned base of an address.
constexpr std::uint32_t page_base(std::uint32_t addr) { return addr & ~kPageOffsetMask; }

/// Kind of memory access, used for permission checks and leakage hooks.
enum class AccessType : std::uint8_t {
  kRead,
  kWrite,
  kExecute,
};

/// Human-readable name, for diagnostics.
std::string to_string(AccessType t);

/// Result of a permission / translation check.
enum class Fault : std::uint8_t {
  kNone,
  kPageNotPresent,   ///< PTE present bit clear (or reserved bit abuse).
  kProtection,       ///< permission bits deny the access.
  kSecurityViolation,///< access crosses a hardware security boundary.
  kBusError,         ///< physical address outside DRAM / device windows.
  kAlignment,        ///< misaligned word access.
};

std::string to_string(Fault f);

/// Privilege level of the executing context. The simulator keeps this
/// deliberately small: U (user), S (supervisor / OS), M (machine /
/// monitor, i.e. the most privileged firmware level used by Sanctum's
/// security monitor and TrustZone's secure monitor).
enum class Privilege : std::uint8_t {
  kUser = 0,
  kSupervisor = 1,
  kMachine = 2,
};

std::string to_string(Privilege p);

}  // namespace hwsec::sim
