#include "attacks/physical/fault_attacks.h"

#include <bitset>

#include "crypto/modmath.h"

namespace hwsec::attacks {

namespace crypto = hwsec::crypto;

crypto::u64 rsa_crt_fault_attack(crypto::u64 n, crypto::u64 e, crypto::u64 message,
                                 crypto::u64 faulty_signature) {
  // gcd(s'^e - m, n): the intact CRT half divides the difference, the
  // faulted one does not.
  const crypto::u64 reencrypted = crypto::powmod(faulty_signature, e, n);
  const crypto::u64 diff = (reencrypted + n - message % n) % n;
  if (diff == 0) {
    return 0;  // signature wasn't faulty after all.
  }
  const crypto::u64 factor = crypto::gcd(diff, n);
  if (factor == 1 || factor == n) {
    return 0;
  }
  return factor;
}

namespace {

std::uint32_t popcount8(std::uint8_t v) {
  return static_cast<std::uint32_t>(std::bitset<8>(v).count());
}

}  // namespace

DfaResult aes_dfa_attack(const std::vector<DfaPair>& pairs) {
  const auto& inv_sbox = crypto::aes_inv_sbox();

  std::array<std::bitset<256>, 16> candidates;
  for (auto& c : candidates) {
    c.set();  // all 256 possible.
  }

  DfaResult result;
  for (const DfaPair& pair : pairs) {
    // A usable observation differs in exactly one ciphertext byte
    // (single-bit fault entering the final round: SubBytes + ShiftRows
    // keep it within one byte; there is no MixColumns in round 10).
    int diff_pos = -1;
    bool single = true;
    for (int p = 0; p < 16; ++p) {
      if (pair.correct[static_cast<std::size_t>(p)] != pair.faulty[static_cast<std::size_t>(p)]) {
        if (diff_pos >= 0) {
          single = false;
          break;
        }
        diff_pos = p;
      }
    }
    if (!single || diff_pos < 0) {
      continue;
    }
    ++result.pairs_consumed;
    const std::uint8_t c = pair.correct[static_cast<std::size_t>(diff_pos)];
    const std::uint8_t f = pair.faulty[static_cast<std::size_t>(diff_pos)];
    std::bitset<256> keep;
    for (std::uint32_t k = 0; k < 256; ++k) {
      const std::uint8_t x = inv_sbox[static_cast<std::uint8_t>(c ^ k)];
      const std::uint8_t y = inv_sbox[static_cast<std::uint8_t>(f ^ k)];
      if (popcount8(static_cast<std::uint8_t>(x ^ y)) == 1) {
        keep.set(k);
      }
    }
    candidates[static_cast<std::size_t>(diff_pos)] &= keep;
  }

  std::array<std::uint8_t, 16> k10{};
  bool all_unique = true;
  for (std::size_t p = 0; p < 16; ++p) {
    result.candidates_left[p] = static_cast<std::uint32_t>(candidates[p].count());
    if (result.candidates_left[p] != 1) {
      all_unique = false;
    } else {
      for (std::uint32_t k = 0; k < 256; ++k) {
        if (candidates[p].test(k)) {
          k10[p] = static_cast<std::uint8_t>(k);
          break;
        }
      }
    }
  }
  if (!all_unique) {
    return result;
  }

  std::array<std::uint32_t, 4> round10_words{};
  for (std::size_t j = 0; j < 4; ++j) {
    round10_words[j] = (static_cast<std::uint32_t>(k10[4 * j]) << 24) |
                       (static_cast<std::uint32_t>(k10[4 * j + 1]) << 16) |
                       (static_cast<std::uint32_t>(k10[4 * j + 2]) << 8) | k10[4 * j + 3];
  }
  result.key = invert_key_schedule(round10_words);
  result.key_recovered = true;
  return result;
}

crypto::AesKey invert_key_schedule(const std::array<std::uint32_t, 4>& round10_words) {
  const auto& sbox = crypto::aes_sbox();
  auto sub_word = [&sbox](std::uint32_t w) {
    return (static_cast<std::uint32_t>(sbox[(w >> 24) & 0xFF]) << 24) |
           (static_cast<std::uint32_t>(sbox[(w >> 16) & 0xFF]) << 16) |
           (static_cast<std::uint32_t>(sbox[(w >> 8) & 0xFF]) << 8) | sbox[w & 0xFF];
  };
  auto rot_word = [](std::uint32_t w) { return (w << 8) | (w >> 24); };
  static constexpr std::array<std::uint32_t, 11> kRcon = {
      0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36};

  std::array<std::uint32_t, 44> words{};
  for (std::size_t j = 0; j < 4; ++j) {
    words[40 + j] = round10_words[j];
  }
  for (int i = 43; i >= 4; --i) {
    const std::size_t idx = static_cast<std::size_t>(i);
    std::uint32_t temp = words[idx - 1];
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp)) ^ (kRcon[static_cast<std::size_t>(i / 4)] << 24);
    }
    words[idx - 4] = words[idx] ^ temp;
  }

  crypto::AesKey key;
  for (std::size_t j = 0; j < 4; ++j) {
    key[4 * j] = static_cast<std::uint8_t>(words[j] >> 24);
    key[4 * j + 1] = static_cast<std::uint8_t>(words[j] >> 16);
    key[4 * j + 2] = static_cast<std::uint8_t>(words[j] >> 8);
    key[4 * j + 3] = static_cast<std::uint8_t>(words[j]);
  }
  return key;
}

}  // namespace hwsec::attacks
