#include "attacks/transient/sgxpectre.h"

#include <stdexcept>

namespace hwsec::attacks {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

namespace {
constexpr sim::VirtAddr kEnclaveBase = 0x00010000;  // enclave linear base.
}

SgxPectreAttack::SgxPectreAttack(sim::Machine& machine, hwsec::arch::Sgx& sgx,
                                 const std::string& secret, sim::CoreId core, Config config)
    : config_(config),
      sgx_(&sgx),
      host_(machine, core),
      enclave_aspace_(machine.create_address_space()) {
  host_.setup_probe_array();

  // The victim enclave: a bounded-lookup service with a provisioned
  // secret. Page 0 carries the (measured) code stub and the secret;
  // page 1 is the service's zeroed lookup array.
  tee::EnclaveImage image;
  image.name = "bounded-lookup-service";
  image.code = {0x5E, 0xC2};
  image.secret.assign(secret.begin(), secret.end());
  image.heap_pages = 1;
  const auto created = sgx.create_enclave(image);
  if (!created.ok()) {
    throw std::runtime_error("SgxPectre: enclave creation failed");
  }
  victim_ = created.value;
  const tee::EnclaveInfo* info = sgx.enclave(victim_);

  // OS view of the enclave's linear address space (in SGX the untrusted
  // OS really does manage enclave page tables; the EPCM validates them).
  for (std::uint32_t p = 0; p < info->pages; ++p) {
    enclave_aspace_.map(kEnclaveBase + p * sim::kPageSize, info->phys_of(p * sim::kPageSize),
                        sim::pte::kUser | sim::pte::kWritable | sim::pte::kExecutable);
  }
  // The shared probe array (untrusted host memory the enclave may touch,
  // as any OCALL buffer would be).
  for (std::uint32_t p = 0; p < 4; ++p) {
    enclave_aspace_.map(kProbeBase + p * sim::kPageSize,
                        host_.probe_phys() + p * sim::kPageSize,
                        sim::pte::kUser | sim::pte::kWritable);
  }

  // The enclave's service code. The secret sits at linear offset 2 (after
  // the 2-byte code stub) in page 0; the bounded array is page 1.
  const sim::VirtAddr array_va = kEnclaveBase + sim::kPageSize;
  const sim::VirtAddr secret_va = kEnclaveBase + 2;
  secret_index_ = secret_va - array_va;  // wraps: the OOB distance.

  sim::ProgramBuilder b(kEnclaveBase + 0x100);  // entry inside page 0.
  b.label("entry").br(sim::BranchCond::kGeu, sim::R1, sim::R5, "out");
  if (config_.enclave_has_fence) {
    b.fence();  // the SDK's post-Spectre hardening.
  }
  b.add(sim::R7, sim::R6, sim::R1)
      .lb(sim::R3, sim::R7)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .label("out")
      .halt();  // EEXIT.
  const sim::Program program = b.build();
  entry_ = program.address_of("entry");
  host_.cpu().load_program(program, enclave_asid_);
}

void SgxPectreAttack::call_enclave_service(sim::Word index) {
  // EENTER: the core switches into the enclave's domain and linear space;
  // the hosting app chose the call arguments.
  sim::Cpu& cpu = host_.cpu();
  const tee::EnclaveInfo* info = sgx_->enclave(victim_);
  cpu.switch_context(info->domain, sim::Privilege::kUser, enclave_aspace_.root(),
                     enclave_asid_);
  cpu.set_reg(sim::R1, index);
  cpu.set_reg(sim::R2, kProbeBase);
  cpu.set_reg(sim::R5, bound_);
  cpu.set_reg(sim::R6, kEnclaveBase + sim::kPageSize);  // array base.
  cpu.run_from(entry_, 64);
}

std::optional<std::uint8_t> SgxPectreAttack::leak_secret_byte(std::uint32_t offset) {
  for (std::uint32_t i = 0; i < config_.training_rounds; ++i) {
    call_enclave_service(i % bound_);
  }
  host_.flush_probe();
  call_enclave_service(secret_index_ + offset);
  return host_.hottest_probe_line();
}

std::string SgxPectreAttack::leak_secret(std::size_t len, std::uint32_t retries) {
  std::string out;
  for (std::size_t i = 0; i < len; ++i) {
    std::optional<std::uint8_t> byte;
    for (std::uint32_t r = 0; r < retries && !byte.has_value(); ++r) {
      byte = leak_secret_byte(static_cast<std::uint32_t>(i));
    }
    out.push_back(byte.has_value() ? static_cast<char>(*byte) : '?');
  }
  return out;
}

}  // namespace hwsec::attacks
