// SMART model (paper §3.3, [12]) — dynamic root of trust for low-end MCUs.
//
// Modeled mechanisms:
//  * ROM attestation routine + attestation key; the key is readable ONLY
//    while the program counter is inside the ROM routine (an MPU code
//    gate), and the routine is enterable only at its first instruction
//    (so the key-handling prologue/cleanup cannot be skipped).
//  * attestation: HMAC(key, region ‖ nonce ‖ destination) computed with
//    interrupts disabled, traces scrubbed, then a jump to the attested
//    code. Interrupt blocking makes SMART unfit for real-time work — the
//    attestation cost is exposed so the E2 probe can measure it.
//  * deliberately absent, per the paper: code isolation (no enclaves at
//    all), side-channel consideration, and DMA protection — the MPU gate
//    filters only CPU accesses, so a DMA master reads the key (the
//    Thunderclap-style probe in the E2/DMA experiments shows this).
#pragma once

#include <span>

#include "arch/domains.h"
#include "tee/architecture.h"

namespace hwsec::arch {

class Smart final : public hwsec::tee::Architecture {
 public:
  struct Config {
    std::uint32_t rom_code_pages = 1;
    /// Cycles modeled per attested byte (HMAC over the region).
    hwsec::sim::Cycle cycles_per_byte = 25;
  };

  explicit Smart(hwsec::sim::Machine& machine) : Smart(machine, Config{}) {}
  Smart(hwsec::sim::Machine& machine, Config config);
  ~Smart() override;

  const hwsec::tee::ArchitectureTraits& traits() const override;

  // SMART provides attestation only — no isolation primitives.
  hwsec::tee::Expected<hwsec::tee::EnclaveId> create_enclave(
      const hwsec::tee::EnclaveImage& image) override;
  hwsec::tee::EnclaveError destroy_enclave(hwsec::tee::EnclaveId id) override;
  hwsec::tee::EnclaveError call_enclave(hwsec::tee::EnclaveId id, hwsec::sim::CoreId core,
                                        const Service& service) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> attest(
      hwsec::tee::EnclaveId id, const hwsec::tee::Nonce& nonce) override;
  hwsec::tee::Expected<hwsec::tee::AttestationReport> probe_attestation(
      const hwsec::tee::Nonce& nonce) override;
  std::vector<std::uint8_t> report_verification_key() const override;

  /// The SMART primitive: attest [start, start+len) of physical memory.
  /// Runs the ROM routine: interrupts off, HMAC, cleanup. Interrupt
  /// blockage duration is visible via last_attestation_cycles().
  hwsec::tee::AttestationReport attest_region(hwsec::sim::PhysAddr start, std::uint32_t len,
                                              const hwsec::tee::Nonce& nonce);

  /// CPU attempt to read the key from code at `pc` — the MPU's verdict.
  /// Attack code uses this to demonstrate the gate (and tests that the
  /// ROM itself passes).
  hwsec::sim::Fault try_key_access(hwsec::sim::PhysAddr pc) const;

  hwsec::sim::PhysAddr rom_base() const { return rom_base_; }
  hwsec::sim::PhysAddr key_phys() const { return key_base_; }
  std::uint32_t key_bytes() const { return 32; }
  hwsec::sim::Cycle last_attestation_cycles() const { return last_attestation_cycles_; }
  bool interrupts_enabled() const { return interrupts_enabled_; }

 private:
  Config config_;
  hwsec::sim::PhysAddr rom_base_ = 0;
  hwsec::sim::PhysAddr key_base_ = 0;
  std::vector<std::uint8_t> key_;
  hwsec::sim::Cycle last_attestation_cycles_ = 0;
  bool interrupts_enabled_ = true;
};

}  // namespace hwsec::arch
