// hwsec-shard-worker — remote shard worker for multi-host campaigns.
//
// Lends this machine's CPU to a sharded campaign supervisor. The campaign
// itself arrives over the wire (the handshake's kWelcome carries the
// canonical spec JSON), so the worker needs zero local configuration and
// a stale binary can never join the wrong run: the spec digest is checked
// on both ends of the handshake.
//
// Two dial directions, one protocol:
//   hwsec-shard-worker --listen [PORT]        wait for supervisors to dial
//                                             (ShardConfig::hosts / a spec's
//                                             "hosts" array points here);
//   hwsec-shard-worker --connect HOST:PORT    dial a listening supervisor
//                                             (ShardConfig::listen).
//
//   --name NAME       display name sent in the hello (default "worker")
//   --expect-digest H pin a campaign digest (hex); anything else is
//                     rejected by name instead of silently computing for
//                     the wrong campaign
//   --once            listen mode: exit after one supervisor session
//                     (default keeps serving)
//   --address ADDR    listen mode: bind address (default 127.0.0.1)
//   --retries N       connect mode: dial attempts before giving up
//
// Exit: 0 after a normally-ended session (shutdown frame or supervisor
// EOF), nonzero with a named reason on stderr otherwise. SIGTERM/SIGINT
// stop a listening worker between sessions.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/service/remote_worker.h"
#include "core/shard/net.h"
#include "core/shutdown.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen [PORT] [--address ADDR] [--once]\n"
               "       %s --connect HOST:PORT [--retries N]\n"
               "   common: [--name NAME] [--expect-digest HEX]\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  hwsec::core::service::RemoteWorkerOptions options;
  bool listen = false;
  options.serve_forever = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--listen") {
      listen = true;
      if (has_value && argv[i + 1][0] != '-') {
        char* end = nullptr;
        const unsigned long port = std::strtoul(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0' || port > 65535) {
          std::fprintf(stderr, "%s: bad --listen port \"%s\"\n", argv[0], argv[i]);
          return 2;
        }
        options.listen_port = static_cast<std::uint16_t>(port);
      }
    } else if (arg == "--connect" && has_value) {
      hwsec::core::shard::HostSpec host;
      std::string error;
      if (!hwsec::core::shard::parse_host(argv[++i], host, error)) {
        std::fprintf(stderr, "%s: --connect: %s\n", argv[0], error.c_str());
        return 2;
      }
      options.connect_host = host.host;
      options.connect_port = host.port;
    } else if (arg == "--address" && has_value) {
      options.listen_address = argv[++i];
    } else if (arg == "--name" && has_value) {
      options.worker_name = argv[++i];
    } else if (arg == "--expect-digest" && has_value) {
      char* end = nullptr;
      options.expect_digest = std::strtoull(argv[++i], &end, 16);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "%s: bad --expect-digest \"%s\" (hex)\n", argv[0], argv[i]);
        return 2;
      }
    } else if (arg == "--retries" && has_value) {
      options.connect_retries = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--once") {
      options.serve_forever = false;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (listen == !options.connect_host.empty()) {
    usage(argv[0]);  // exactly one of --listen / --connect.
    return 2;
  }

  hwsec::core::install_graceful_shutdown();
  if (listen) {
    options.on_listening = [](std::uint16_t port) {
      std::fprintf(stderr, "hwsec-shard-worker: listening on port %u\n",
                   static_cast<unsigned>(port));
      std::fflush(stderr);
    };
  }
  return hwsec::core::service::run_remote_worker(options);
}
