// Statistics for side-channel analysis: Pearson correlation (CPA),
// difference of means (classic DPA), Welch's t-test (TVLA leakage
// assessment) and signal-to-noise ratio.
//
// All accumulation is DC-shifted and Kahan-compensated: power traces ride
// on a large constant baseline (supply power + noise floor), and naive
// running sums lose the signal bits against it — at a 1e9 baseline the
// naive unbiased variance of a 1e5-sample series is off by ~25%. See the
// Stats.*Offset* regression tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sca/trace.h"

namespace hwsec::sca {

struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) estimator.
  std::size_t n = 0;
};

MeanVar mean_variance(std::span<const double> xs);

/// Pearson correlation coefficient of two equal-length series; 0 when
/// either series is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Per-sample-point correlation between a hypothesis vector (one value per
/// trace) and the trace matrix; returns |rho| maximized over sample points
/// and the argmax point. Requires >= 2 traces, one hypothesis value per
/// trace, and a rectangular matrix — a ragged one throws
/// std::invalid_argument naming the offending trace (never a deep
/// out_of_range from inside the point loop). Hypothesis statistics are
/// computed once, not per point: this is the inner loop of every CPA
/// campaign.
struct PointCorrelation {
  double max_abs_rho = 0.0;
  std::size_t best_point = 0;
};
PointCorrelation correlate_hypothesis(const std::vector<Trace>& traces,
                                      std::span<const double> hypothesis);

/// Welch's t statistic between two trace populations at each sample point;
/// returns the maximum |t| over points. |t| > 4.5 is the conventional
/// TVLA threshold for "leaks".
double max_welch_t(const std::vector<Trace>& population_a,
                   const std::vector<Trace>& population_b);

inline constexpr double kTvlaThreshold = 4.5;

/// SNR at each point for traces partitioned into classes:
/// Var_classes(mean) / mean_classes(Var). Returns the max over points.
double max_snr(const std::vector<std::vector<Trace>>& classes);

/// Difference-of-means (single-bit DPA): |mean(a) - mean(b)| maximized
/// over sample points.
double max_dom(const std::vector<Trace>& population_a, const std::vector<Trace>& population_b);

}  // namespace hwsec::sca
