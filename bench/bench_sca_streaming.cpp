// E13 — million-trace streaming SCA: single-pass accumulators, chunked
// trace store, batched capture.
//
// Three gates, every one enforced as a nonzero exit so CI fails loudly:
//   * equivalence — streaming CPA/DPA/second-order CPA must reproduce the
//     materialized engines on the same capture stream: identical key-byte
//     ranking and best/second scores within 1e-9 relative;
//   * memory — a full 10^6-trace CPA key recovery must finish with peak
//     RSS under HWSEC_STREAM_RSS_MIB (default 256 MiB), which is the
//     point of the streaming pipeline: analysis memory is O(points), not
//     O(traces), and capture memory is one window of batches;
//   * trace store — a chunked on-disk store round-trip (write during
//     capture, sequential replay into a fresh accumulator) must recover
//     the exact same key as the accumulator fed directly.
// Machine-readable results land in BENCH_sca_streaming.json (override:
// HWSEC_STREAM_JSON) with trials/sec, traces/sec and peak RSS per phase.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "attacks/physical/power_analysis.h"
#include "core/capture.h"
#include "core/resilience/checkpoint.h"
#include "sca/cpa.h"
#include "sca/second_order.h"
#include "sca/streaming.h"
#include "sca/trace_store.h"
#include "table.h"

namespace attacks = hwsec::attacks;
namespace core = hwsec::core;
namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;

namespace {

const crypto::AesKey kKey = {0x10, 0xa5, 0x88, 0x69, 0xd7, 0x4b, 0xe5, 0xa3,
                             0x74, 0xcf, 0x86, 0x7c, 0xfb, 0x47, 0x38, 0x59};

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtod(v, nullptr);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Ranking + well-conditioned score comparison between two key attacks.
/// Near-zero correlations of wrong guesses are cancellation-dominated, so
/// the relative bound is asserted on the best/second scores (O(max rho),
/// well-conditioned); the ranking must match guess for guess.
struct KeyMatch {
  bool ranking_ok = true;
  double max_rel_err = 0.0;
};

KeyMatch compare_keys(const sca::KeyAttackResult& a, const sca::KeyAttackResult& b) {
  KeyMatch m;
  for (std::size_t i = 0; i < 16; ++i) {
    m.ranking_ok = m.ranking_ok && a.bytes[i].best_guess == b.bytes[i].best_guess;
    for (const auto [x, y] : {std::pair{a.bytes[i].best_score, b.bytes[i].best_score},
                              std::pair{a.bytes[i].second_score, b.bytes[i].second_score}}) {
      const double denom = std::max({std::abs(x), std::abs(y), 1e-12});
      m.max_rel_err = std::max(m.max_rel_err, std::abs(x - y) / denom);
    }
  }
  return m;
}

void print_match(hwsec::bench::Table& t, const char* what, const KeyMatch& m, bool& all_ok) {
  const bool ok = m.ranking_ok && m.max_rel_err <= 1e-9;
  all_ok = all_ok && ok;
  std::ostringstream err;
  err << std::scientific << m.max_rel_err;
  t.print_row(what, m.ranking_ok ? "yes" : "DIVERGED", err.str(), ok ? "OK" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;
  bool all_ok = true;

  // ---- E13a: streaming vs. materialized equivalence ---------------------
  const std::size_t eq_traces = env_size_t("HWSEC_STREAM_EQ_TRACES", 2000);
  KeyMatch cpa_match, dpa_match, so_match;
  {
    hwsec::bench::section("E13a — streaming vs. materialized equivalence");
    std::cout << "(" << eq_traces << " traces; same batched capture stream feeds both "
              << "pipelines)\n";
    Table t({"engine", "ranking identical", "max score rel err", "gate (1e-9)"},
            {24, 19, 20, 12});
    t.print_header();

    sca::RecorderConfig rec;
    rec.noise_sigma = 1.0;
    rec.seed = 71;
    const auto set = attacks::collect_aes_traces_parallel(kKey, attacks::AesVariant::kTTable,
                                                          eq_traces, rec, /*seed=*/71);
    core::BatchedCaptureConfig capture;
    capture.seed = 71;
    capture.total_traces = eq_traces;
    const auto acc =
        core::run_streaming_cpa_campaign(capture, kKey, attacks::AesVariant::kTTable, rec);

    cpa_match = compare_keys(sca::cpa_attack_key(set), acc.finalize_key());
    print_match(t, "first-order CPA", cpa_match, all_ok);
    dpa_match = compare_keys(sca::dpa_attack_key(set), acc.finalize_dpa_key());
    print_match(t, "single-bit DPA", dpa_match, all_ok);

    sca::RecorderConfig masked_rec;
    masked_rec.noise_sigma = 0.25;
    masked_rec.seed = 72;
    const auto masked = attacks::collect_aes_traces_parallel(
        kKey, attacks::AesVariant::kMasked, eq_traces, masked_rec, /*seed=*/72);
    core::BatchedCaptureConfig so_capture;
    so_capture.seed = 72;
    so_capture.total_traces = eq_traces;
    const auto so_acc = core::run_streaming_second_order_campaign(so_capture, kKey, masked_rec,
                                                                  /*mask_sample=*/1);
    so_match = compare_keys(sca::second_order_cpa_key(masked, 1), so_acc.finalize_key());
    print_match(t, "second-order CPA", so_match, all_ok);
  }

  // ---- E13b: million-trace streaming CPA under the RSS gate -------------
  const std::size_t stream_traces = env_size_t("HWSEC_STREAM_TRACES", 1'000'000);
  const double rss_limit_mib = env_double("HWSEC_STREAM_RSS_MIB", 256.0);
  double stream_seconds = 0.0;
  double stream_rss_mib = 0.0;
  std::uint32_t stream_correct = 0;
  bool rss_ok = false;
  {
    hwsec::bench::section("E13b — streaming CPA key recovery at campaign scale");
    sca::RecorderConfig rec;
    rec.noise_sigma = 1.0;
    rec.seed = 101;
    core::BatchedCaptureConfig capture;
    capture.seed = 101;
    capture.total_traces = stream_traces;
    const auto t0 = std::chrono::steady_clock::now();
    const auto acc =
        core::run_streaming_cpa_campaign(capture, kKey, attacks::AesVariant::kTTable, rec);
    const auto result = acc.finalize_key();
    stream_seconds = seconds_since(t0);
    stream_rss_mib = hwsec::bench::peak_rss_mib();
    stream_correct = result.correct_bytes(kKey);
    rss_ok = stream_rss_mib < rss_limit_mib;
    const bool recovered = stream_correct == 16;
    all_ok = all_ok && rss_ok && recovered;

    Table t({"traces", "seconds", "traces/sec", "key bytes", "peak RSS MiB", "RSS gate"},
            {12, 10, 14, 11, 14, 16});
    t.print_header();
    std::ostringstream gate;
    gate << (rss_ok ? "OK" : "FAIL") << " (< " << rss_limit_mib << ")";
    t.print_row(stream_traces, stream_seconds,
                static_cast<double>(stream_traces) / stream_seconds,
                std::to_string(stream_correct) + "/16", stream_rss_mib, gate.str());
    std::cout << "(materializing this campaign would need ~"
              << static_cast<double>(stream_traces) * attacks::kAesSamplesPerTrace * 8.0 /
                     (1024.0 * 1024.0)
              << " MiB of traces alone; the accumulator holds ~5.4 MiB)\n";
  }

  // ---- E13c: chunked trace store write/replay ---------------------------
  const std::size_t store_traces = env_size_t("HWSEC_STREAM_STORE_TRACES", 20'000);
  double store_mb = 0.0;
  double write_seconds = 0.0;
  double replay_seconds = 0.0;
  bool roundtrip_ok = false;
  {
    hwsec::bench::section("E13c — chunked trace store: append during capture, replay");
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("hwsec-stream-bench-" + std::to_string(::getpid()));
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    sca::RecorderConfig rec;
    rec.noise_sigma = 1.0;
    rec.seed = 131;
    core::BatchedCaptureConfig capture;
    capture.seed = 131;
    capture.total_traces = store_traces;

    sca::StreamingCpa direct(attacks::kAesSamplesPerTrace);
    {
      sca::TraceStoreWriter writer(dir.string(), attacks::kAesSamplesPerTrace);
      const auto t0 = std::chrono::steady_clock::now();
      core::capture_aes_power_batches(
          capture, kKey, attacks::AesVariant::kTTable, rec,
          [&](std::size_t, const sca::TraceSet& batch) {
            writer.append_batch(batch);
            direct.add_batch(batch);
          });
      writer.finalize();
      write_seconds = seconds_since(t0);
    }
    store_mb = static_cast<double>(store_traces) * (32.0 + attacks::kAesSamplesPerTrace * 8.0) /
               (1024.0 * 1024.0);

    sca::StreamingCpa replayed(attacks::kAesSamplesPerTrace);
    {
      const auto t0 = std::chrono::steady_clock::now();
      sca::TraceStoreReader reader(dir.string());
      reader.replay([&](const sca::TraceStoreReader::Record& r) {
        replayed.add(r.samples, r.plaintext);
      });
      replay_seconds = seconds_since(t0);
    }
    std::filesystem::remove_all(dir, ec);

    // Replay delivers the exact bytes capture appended, so the replayed
    // accumulator's recovered key must equal the direct one's.
    const auto direct_key = direct.finalize_key();
    const auto replayed_key = replayed.finalize_key();
    roundtrip_ok = replayed.traces() == direct.traces() &&
                   replayed_key.recovered == direct_key.recovered;
    all_ok = all_ok && roundtrip_ok;

    Table t({"traces", "store MiB", "write MiB/s", "replay MiB/s", "round-trip"},
            {12, 11, 13, 14, 12});
    t.print_header();
    t.print_row(store_traces, store_mb, store_mb / write_seconds, store_mb / replay_seconds,
                roundtrip_ok ? "EXACT" : "DIVERGED");
  }

  // ---- machine-readable record for CI -----------------------------------
  const char* json_env = std::getenv("HWSEC_STREAM_JSON");
  const std::string json_path =
      json_env != nullptr && *json_env != '\0' ? json_env : "BENCH_sca_streaming.json";
  std::ostringstream json;
  json << "{\n"
       << "  \"experiment\": \"sca_streaming\",\n"
       << "  \"equivalence\": {\"traces\": " << eq_traces
       << ", \"cpa_ranking_ok\": " << (cpa_match.ranking_ok ? "true" : "false")
       << ", \"cpa_max_rel_err\": " << cpa_match.max_rel_err
       << ", \"dpa_ranking_ok\": " << (dpa_match.ranking_ok ? "true" : "false")
       << ", \"dpa_max_rel_err\": " << dpa_match.max_rel_err
       << ", \"second_order_ranking_ok\": " << (so_match.ranking_ok ? "true" : "false")
       << ", \"second_order_max_rel_err\": " << so_match.max_rel_err << "},\n"
       << "  \"stream\": {\"traces\": " << stream_traces
       << ", \"seconds\": " << stream_seconds
       << ", \"traces_per_sec\": " << static_cast<double>(stream_traces) / stream_seconds
       << ", \"correct_bytes\": " << stream_correct
       << ", \"peak_rss_mib\": " << stream_rss_mib
       << ", \"rss_limit_mib\": " << rss_limit_mib
       << ", \"rss_ok\": " << (rss_ok ? "true" : "false") << "},\n"
       << "  \"store\": {\"traces\": " << store_traces << ", \"mib\": " << store_mb
       << ", \"write_mib_per_sec\": " << store_mb / write_seconds
       << ", \"replay_mib_per_sec\": " << store_mb / replay_seconds
       << ", \"roundtrip_ok\": " << (roundtrip_ok ? "true" : "false") << "},\n"
       << "  \"peak_rss_mib\": " << hwsec::bench::peak_rss_mib() << ",\n"
       << "  \"all_ok\": " << (all_ok ? "true" : "false") << "\n"
       << "}\n";
  if (core::write_file_atomic(json_path, json.str())) {
    std::cout << "\nwrote " << json_path << "\n";
  } else {
    std::cerr << "\nfailed to write " << json_path << "\n";
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!all_ok) {
    std::cerr << "E13 GATE FAILED — see the tables above\n";
  }
  return all_ok ? 0 : 1;
}
