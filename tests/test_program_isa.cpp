// Program builder, label resolution, disassembler, and detailed ISA
// semantics (every ALU op and branch condition, executed on a machine).
#include <gtest/gtest.h>

#include "sim/isa.h"
#include "sim/machine.h"
#include "sim/program.h"

namespace sim = hwsec::sim;

namespace {

TEST(ProgramBuilder, LabelsResolveToAddresses) {
  sim::ProgramBuilder b(0x1000);
  b.label("a").nop().nop().label("b").halt();
  const sim::Program p = b.build();
  EXPECT_EQ(p.address_of("a"), 0x1000u);
  EXPECT_EQ(p.address_of("b"), 0x1008u);
  EXPECT_EQ(p.end(), 0x100Cu);
}

TEST(ProgramBuilder, DuplicateLabelThrows) {
  sim::ProgramBuilder b;
  b.label("x");
  EXPECT_THROW(b.label("x"), std::invalid_argument);
}

TEST(ProgramBuilder, UnresolvedTargetThrowsAtBuild) {
  sim::ProgramBuilder b;
  b.jump("nowhere");
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ProgramBuilder, UnknownLabelLookupThrows) {
  sim::ProgramBuilder b;
  b.nop();
  const sim::Program p = b.build();
  EXPECT_THROW(p.address_of("missing"), std::out_of_range);
}

TEST(Program, AtRespectsBoundsAndAlignment) {
  sim::ProgramBuilder b(0x2000);
  b.nop().halt();
  const sim::Program p = b.build();
  EXPECT_NE(p.at(0x2000), nullptr);
  EXPECT_NE(p.at(0x2004), nullptr);
  EXPECT_EQ(p.at(0x2008), nullptr) << "past the end";
  EXPECT_EQ(p.at(0x1FFC), nullptr) << "before the base";
  EXPECT_EQ(p.at(0x2002), nullptr) << "misaligned";
}

TEST(Disassembler, EveryOpcodeHasAMnemonic) {
  for (int op = 0; op <= static_cast<int>(sim::Opcode::kEcall); ++op) {
    sim::Instruction inst;
    inst.op = static_cast<sim::Opcode>(op);
    EXPECT_NE(sim::to_string(inst.op), "?");
    EXPECT_FALSE(sim::disassemble(inst).empty());
  }
}

TEST(Disassembler, RendersOperands) {
  sim::Instruction inst{.op = sim::Opcode::kLoad, .rd = sim::R3, .rs1 = sim::R1, .imm = 8};
  EXPECT_EQ(sim::disassemble(inst), "lw r3, [r1+8]");
}

TEST(Isa, ControlFlowClassification) {
  EXPECT_TRUE(sim::is_control_flow(sim::Opcode::kBranch));
  EXPECT_TRUE(sim::is_control_flow(sim::Opcode::kRet));
  EXPECT_TRUE(sim::is_control_flow(sim::Opcode::kHalt));
  EXPECT_FALSE(sim::is_control_flow(sim::Opcode::kAdd));
  EXPECT_FALSE(sim::is_control_flow(sim::Opcode::kLoad));
  EXPECT_FALSE(sim::is_control_flow(sim::Opcode::kFence));
}

// ---- executed semantics -----------------------------------------------------

class IsaExecTest : public ::testing::Test {
 protected:
  IsaExecTest() : machine_(sim::MachineProfile::server(), 77) {
    machine_.cpu(0).mmu().set_bare_mode(true);
  }

  /// Runs a fragment and returns the final register file snapshot.
  sim::Word run(const std::function<void(sim::ProgramBuilder&)>& body, sim::Reg result_reg) {
    sim::ProgramBuilder b(0x3000);
    body(b);
    b.halt();
    const sim::Program p = b.build();
    machine_.cpu(0).clear_programs();
    machine_.cpu(0).load_program(p);
    machine_.cpu(0).run_from(p.base);
    return machine_.cpu(0).reg(result_reg);
  }

  sim::Machine machine_;
};

TEST_F(IsaExecTest, ArithmeticAndLogic) {
  using R = sim::Reg;
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 7).li(R::R2, 5).sub(R::R3, R::R1, R::R2); }, R::R3),
            2u);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 0xF0).li(R::R2, 0x3C).and_(R::R3, R::R1, R::R2); },
                R::R3),
            0x30u);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 0xF0).li(R::R2, 0x0F).or_(R::R3, R::R1, R::R2); },
                R::R3),
            0xFFu);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 0xFF).li(R::R2, 0x0F).xor_(R::R3, R::R1, R::R2); },
                R::R3),
            0xF0u);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 3).li(R::R2, 4).shl(R::R3, R::R1, R::R2); }, R::R3),
            48u);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 48).li(R::R2, 4).shr(R::R3, R::R1, R::R2); }, R::R3),
            3u);
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 1000).li(R::R2, 1000).mul(R::R3, R::R1, R::R2); },
                R::R3),
            1'000'000u);
  // mul wraps modulo 2^32.
  EXPECT_EQ(run([](auto& b) { b.li(R::R1, 0x10000).li(R::R2, 0x10000).mul(R::R3, R::R1, R::R2); },
                R::R3),
            0u);
}

TEST_F(IsaExecTest, RegisterZeroIsHardwired) {
  using R = sim::Reg;
  EXPECT_EQ(run([](auto& b) { b.li(R::R0, 99).addi(R::R1, R::R0, 0); }, R::R1), 0u);
}

struct BranchCase {
  sim::BranchCond cond;
  sim::Word a;
  sim::Word b;
  bool expect_taken;
};

class BranchCondTest : public ::testing::TestWithParam<BranchCase> {};

TEST_P(BranchCondTest, EvaluatesCorrectly) {
  const BranchCase& c = GetParam();
  sim::Machine machine(sim::MachineProfile::server(), 78);
  machine.cpu(0).mmu().set_bare_mode(true);
  sim::ProgramBuilder b(0x3000);
  b.li(sim::R1, c.a)
      .li(sim::R2, c.b)
      .li(sim::R3, 0)
      .br(c.cond, sim::R1, sim::R2, "taken")
      .li(sim::R3, 1)  // fall-through marker.
      .halt()
      .label("taken")
      .li(sim::R3, 2)
      .halt();
  const sim::Program p = b.build();
  machine.cpu(0).load_program(p);
  machine.cpu(0).run_from(p.base);
  EXPECT_EQ(machine.cpu(0).reg(sim::R3), c.expect_taken ? 2u : 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchCondTest,
    ::testing::Values(
        BranchCase{sim::BranchCond::kEq, 5, 5, true},
        BranchCase{sim::BranchCond::kEq, 5, 6, false},
        BranchCase{sim::BranchCond::kNe, 5, 6, true},
        BranchCase{sim::BranchCond::kNe, 5, 5, false},
        // Signed comparisons: 0xFFFFFFFF is -1.
        BranchCase{sim::BranchCond::kLt, 0xFFFFFFFF, 0, true},
        BranchCase{sim::BranchCond::kLt, 0, 0xFFFFFFFF, false},
        BranchCase{sim::BranchCond::kGe, 0, 0xFFFFFFFF, true},
        BranchCase{sim::BranchCond::kGe, 0xFFFFFFFF, 0, false},
        // Unsigned: 0xFFFFFFFF is huge.
        BranchCase{sim::BranchCond::kLtu, 0xFFFFFFFF, 0, false},
        BranchCase{sim::BranchCond::kLtu, 0, 0xFFFFFFFF, true},
        BranchCase{sim::BranchCond::kGeu, 0xFFFFFFFF, 0, true},
        BranchCase{sim::BranchCond::kGeu, 0, 1, false}));

TEST_F(IsaExecTest, IndirectJumpAndCall) {
  using R = sim::Reg;
  sim::ProgramBuilder b(0x3000);
  b.label("start")
      .li(R::R1, 0)          // patched below with "target".
      .jr(R::R1)
      .li(R::R2, 1)          // skipped.
      .halt()
      .label("target")
      .li(R::R2, 7)
      .halt();
  sim::Program p = b.build();
  for (auto& inst : p.code) {
    if (inst.op == sim::Opcode::kLoadImm && inst.rd == sim::R1) {
      inst.imm = p.address_of("target");
    }
  }
  machine_.cpu(0).clear_programs();
  machine_.cpu(0).load_program(p);
  machine_.cpu(0).run_from(p.base);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R2), 7u);
}

TEST_F(IsaExecTest, NestedCallsNeedLinkSpill) {
  using R = sim::Reg;
  // Inner call overwrites the link register: classic RISC behaviour the
  // builder exposes honestly.
  sim::ProgramBuilder b(0x3000);
  b.call("outer").li(R::R9, 1).halt()
      .label("outer").addi(R::R8, R::R15, 0)  // spill link to r8.
      .call("inner")
      .addi(R::R15, R::R8, 0)                 // restore.
      .ret()
      .label("inner").li(R::R7, 5).ret();
  const sim::Program p = b.build();
  machine_.cpu(0).clear_programs();
  machine_.cpu(0).load_program(p);
  const auto result = machine_.cpu(0).run_from(p.base, 64);
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R7), 5u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R9), 1u);
}

TEST_F(IsaExecTest, CpuStatsCountInstructionClasses) {
  using R = sim::Reg;
  machine_.cpu(0).reset_stats();
  const sim::PhysAddr buf = machine_.alloc_frame();
  run([buf](auto& b) {
    b.li(R::R1, buf).li(R::R2, 42).sw(R::R1, 0, R::R2).lw(R::R3, R::R1).lw(R::R4, R::R1);
  }, R::R3);
  const auto& stats = machine_.cpu(0).stats();
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_GE(stats.retired, 6u);
}

}  // namespace
