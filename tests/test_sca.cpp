// SCA toolbox: statistics, recorder leakage models, and CPA/DPA engines
// on synthetic and real instrumented traces.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "attacks/physical/power_analysis.h"
#include "core/capture.h"
#include "sca/cpa.h"
#include "sca/recorder.h"
#include "sca/second_order.h"
#include "sca/stats.h"
#include "sca/streaming.h"
#include "sca/trace_store.h"

namespace sca = hwsec::sca;
namespace crypto = hwsec::crypto;
namespace attacks = hwsec::attacks;

namespace {

const crypto::AesKey kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                             0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

TEST(Stats, HammingWeightAndDistance) {
  EXPECT_EQ(sca::hamming_weight(0), 0u);
  EXPECT_EQ(sca::hamming_weight(0xFFFFFFFF), 32u);
  EXPECT_EQ(sca::hamming_weight(0b1011), 3u);
  EXPECT_EQ(sca::hamming_distance(0b1100, 0b1010), 2u);
}

TEST(Stats, MeanVariance) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  const auto mv = sca::mean_variance(xs);
  EXPECT_DOUBLE_EQ(mv.mean, 5.0);
  EXPECT_NEAR(mv.variance, 4.571, 0.01);  // unbiased.
}

TEST(Stats, PearsonPerfectAndNone) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  const std::vector<double> anti = {10, 8, 6, 4, 2};
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_NEAR(sca::pearson(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(sca::pearson(xs, anti), -1.0, 1e-12);
  EXPECT_EQ(sca::pearson(xs, flat), 0.0);
}

TEST(Stats, OffsetVarianceSurvivesLargeDcComponent) {
  // Regression for the naive-accumulation bug: a power trace's samples ride
  // on a huge DC baseline. At offset 1e9 with a 1e-3 signal over 1e5
  // samples, the old `sum += x` / `ss += d*d` code reported variance
  // ~1.25e-6 against a true ~1.0e-6 (25% off); the shifted, compensated
  // accumulators recover it to ~1e-7 relative.
  constexpr std::size_t kN = 100000;
  constexpr double kOffset = 1e9 + 0.7;  // non-dyadic: partial sums must round.
  constexpr double kAmplitude = 1e-3;
  std::vector<double> xs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = kOffset + (i < kN / 2 ? kAmplitude : -kAmplitude);
  }
  // Exact reference from the block structure: deviations are +-amplitude
  // around the (stored-value) mean, up to the rounding of the inputs.
  long double mean = 0.0L;
  for (const double x : xs) {
    mean += static_cast<long double>(x) / kN;
  }
  long double ss = 0.0L;
  for (const double x : xs) {
    const long double d = static_cast<long double>(x) - mean;
    ss += d * d;
  }
  const double expected = static_cast<double>(ss / (kN - 1));

  const auto mv = sca::mean_variance(xs);
  EXPECT_NEAR(mv.mean, static_cast<double>(mean), 1e-6);
  EXPECT_NEAR(mv.variance, expected, expected * 1e-3);  // old code: ~25% off.
}

TEST(Stats, OffsetPearsonStaysExact) {
  // Perfectly correlated series at a 1e9 baseline must still give rho = 1.
  std::vector<double> xs(5000), ys(5000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double signal = static_cast<double>(i % 17) * 1e-3;
    xs[i] = 1e9 + 0.7 + signal;
    ys[i] = 2e9 + 0.3 + 2.0 * signal;
  }
  EXPECT_NEAR(sca::pearson(xs, ys), 1.0, 1e-9);
}

TEST(Stats, CorrelateHypothesisRejectsRaggedTraces) {
  // A ragged matrix must fail fast with invalid_argument, not surface as a
  // std::out_of_range from a deep at() inside the point loop (the old
  // behavior this test pins down).
  std::vector<sca::Trace> traces = {{1.0, 2.0, 3.0}, {4.0, 5.0}, {6.0, 7.0, 8.0}};
  const std::vector<double> hypothesis = {1.0, 2.0, 3.0};
  EXPECT_THROW(sca::correlate_hypothesis(traces, hypothesis), std::invalid_argument);
}

TEST(Stats, CorrelateHypothesisMatchesPerPointPearson) {
  // The hoisted one-pass hypothesis statistics must agree with the naive
  // per-point pearson() definition.
  hwsec::sim::Rng rng(11);
  std::vector<sca::Trace> traces;
  std::vector<double> hypothesis;
  for (int t = 0; t < 40; ++t) {
    sca::Trace trace;
    for (int p = 0; p < 8; ++p) {
      trace.push_back(rng.gaussian(5.0, 2.0) + (p == 5 ? 0.8 * t : 0.0));
    }
    traces.push_back(std::move(trace));
    hypothesis.push_back(static_cast<double>(t));
  }
  const auto result = sca::correlate_hypothesis(traces, hypothesis);
  double best_rho = 0.0;
  std::size_t best_point = 0;
  std::vector<double> column(traces.size());
  for (std::size_t p = 0; p < traces.front().size(); ++p) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      column[t] = traces[t][p];
    }
    const double rho = std::abs(sca::pearson(column, hypothesis));
    if (rho > best_rho) {
      best_rho = rho;
      best_point = p;
    }
  }
  EXPECT_NEAR(result.max_abs_rho, best_rho, 1e-12);
  EXPECT_EQ(result.best_point, best_point);
  EXPECT_EQ(result.best_point, 5u);  // the planted leaky point.
}

TEST(Stats, OffsetWelchTDoesNotFalselyDetectLeakage) {
  // Identical distributions riding a 1e9 baseline: the t statistic must
  // stay far below the TVLA threshold even though every centered sum runs
  // against the DC component.
  hwsec::sim::Rng rng(9);
  std::vector<sca::Trace> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back({1e9 + 0.7 + rng.gaussian(0.0, 1e-3)});
    b.push_back({1e9 + 0.7 + rng.gaussian(0.0, 1e-3)});
  }
  EXPECT_LT(sca::max_welch_t(a, b), sca::kTvlaThreshold);
}

TEST(Stats, WelchTSeparatesShiftedPopulations) {
  hwsec::sim::Rng rng(5);
  std::vector<sca::Trace> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)});
    b.push_back({rng.gaussian(0.0, 1.0), rng.gaussian(2.0, 1.0)});
  }
  EXPECT_GT(sca::max_welch_t(a, b), sca::kTvlaThreshold);
  EXPECT_LT(sca::max_welch_t(a, a), sca::kTvlaThreshold);
}

TEST(Recorder, HammingWeightSignalPlusNoise) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingWeight, .amplitude = 1.0,
                               .noise_sigma = 0.0, .hiding_noise_sigma = 0.0, .max_jitter = 0,
                               .seed = 1});
  rec.begin_trace();
  rec.on_value(0xFF);       // HW 8.
  rec.on_value(0x0F0F0F0F); // HW 16.
  const auto trace = rec.end_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace[0], 8.0);
  EXPECT_DOUBLE_EQ(trace[1], 16.0);
}

TEST(Recorder, HammingDistanceModelUsesPreviousValue) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingDistance, .amplitude = 1.0,
                               .noise_sigma = 0.0, .hiding_noise_sigma = 0.0, .max_jitter = 0,
                               .seed = 1});
  rec.begin_trace();
  rec.on_value(0xFF);  // HD(0xFF, 0) = 8.
  rec.on_value(0xFE);  // HD(0xFE, 0xFF) = 1.
  const auto trace = rec.end_trace();
  EXPECT_DOUBLE_EQ(trace[0], 8.0);
  EXPECT_DOUBLE_EQ(trace[1], 1.0);
}

TEST(Recorder, JitterMisalignsAndPadsToFixedLength) {
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingWeight, .amplitude = 1.0,
                               .noise_sigma = 0.1, .hiding_noise_sigma = 0.0, .max_jitter = 3,
                               .seed = 2});
  rec.begin_trace();
  for (int i = 0; i < 10; ++i) {
    rec.on_value(0xFF);
  }
  const auto trace = rec.end_trace(40);
  EXPECT_EQ(trace.size(), 40u);
}

TEST(Cpa, RecoversKeyFromCleanTraces) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.1;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 150, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_EQ(result.correct_bytes(kKey), 16u);
  EXPECT_GT(result.bytes[0].margin(), 1.05);
}

TEST(Cpa, NoiseRaisesTraceRequirement) {
  sca::RecorderConfig noisy;
  noisy.noise_sigma = 4.0;
  const auto few = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 60, noisy);
  const auto many = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 1500, noisy);
  EXPECT_LT(sca::cpa_attack_key(few).correct_bytes(kKey),
            sca::cpa_attack_key(many).correct_bytes(kKey));
  EXPECT_GE(sca::cpa_attack_key(many).correct_bytes(kKey), 14u);
}

TEST(Cpa, MaskingDefeatsFirstOrderAttack) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 800, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_LE(result.correct_bytes(kKey), 3u)
      << "first-order CPA against a masked implementation must be ~chance";
}

TEST(Cpa, ConstantTimeStillLeaksPower) {
  // The §4.1/§5 distinction: constant-time protects against cache/timing
  // observation, NOT against power analysis.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  const auto set =
      attacks::collect_aes_traces(kKey, attacks::AesVariant::kConstantTime, 300, rec);
  const auto result = sca::cpa_attack_key(set);
  EXPECT_GE(result.correct_bytes(kKey), 14u);
}

TEST(SecondOrderCpa, BreaksFirstOrderMasking) {
  // The §5 escalation: first-order CPA fails against masking (test
  // above), but combining the mask-load sample with the S-box samples
  // recovers the key — masking ORDER matters.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 3000, rec);
  EXPECT_LE(sca::cpa_attack_key(set).correct_bytes(kKey), 3u) << "1st order stays blind";
  const auto second = sca::second_order_cpa_key(set, /*mask_sample=*/1);
  EXPECT_GE(second.correct_bytes(kKey), 14u) << "2nd order recovers the key";
}

TEST(SecondOrderCpa, NeedsTheRightCombiningPoint) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 1500, rec);
  // Combining with an unrelated sample (a round-9 S-box output) instead
  // of the mask-load sample gives nothing.
  const auto wrong = sca::second_order_cpa_key(set, /*mask_sample=*/150);
  EXPECT_LE(wrong.correct_bytes(kKey), 3u);
}

TEST(SecondOrderCpa, UnmaskedVariantNeedsNoSecondOrder) {
  // Sanity: on the unprotected implementation the combined traces still
  // work (the channel is only weaker), and plain CPA is strictly better.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 400, rec);
  EXPECT_EQ(sca::cpa_attack_key(set).correct_bytes(kKey), 16u);
}

TEST(Dpa, DifferenceOfMeansRecoversBytes) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.3;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 1200, rec);
  const auto result = sca::dpa_attack_key(set, /*bit=*/0);
  EXPECT_GE(result.correct_bytes(kKey), 12u);
}

TEST(Tvla, FixedVsRandomDetectsLeakyImplementation) {
  // Fixed-vs-random t-test: unprotected AES leaks, masked AES does not.
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  rec.seed = 77;
  auto make_populations = [&rec](attacks::AesVariant variant, std::uint64_t seed) {
    // "Fixed" population: constant plaintext (collect once per trace).
    sca::PowerTraceRecorder recorder({.model = sca::LeakageModel::kHammingWeight,
                                      .amplitude = 1.0, .noise_sigma = rec.noise_sigma,
                                      .hiding_noise_sigma = 0, .max_jitter = 0, .seed = seed});
    crypto::Instrumentation instr;
    instr.leak = [&recorder](std::uint32_t v) { recorder.on_value(v); };
    crypto::AesTTable ttable(kKey, instr);
    crypto::AesMasked masked(kKey, seed, instr);
    hwsec::sim::Rng rng(seed);
    std::vector<sca::Trace> fixed, random;
    const crypto::AesBlock fixed_pt{};
    for (int i = 0; i < 300; ++i) {
      crypto::AesBlock random_pt;
      for (auto& b : random_pt) {
        b = static_cast<std::uint8_t>(rng.next_u32());
      }
      recorder.begin_trace();
      if (variant == attacks::AesVariant::kTTable) {
        ttable.encrypt(fixed_pt);
      } else {
        masked.encrypt(fixed_pt);
      }
      fixed.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
      recorder.begin_trace();
      if (variant == attacks::AesVariant::kTTable) {
        ttable.encrypt(random_pt);
      } else {
        masked.encrypt(random_pt);
      }
      random.push_back(recorder.end_trace(attacks::kAesSamplesPerTrace));
    }
    return sca::max_welch_t(fixed, random);
  };
  EXPECT_GT(make_populations(attacks::AesVariant::kTTable, 1), sca::kTvlaThreshold);
  EXPECT_LT(make_populations(attacks::AesVariant::kMasked, 2), sca::kTvlaThreshold + 2.0)
      << "masked implementation should show (near-)no first-order leakage";
}

TEST(Stats, CorrelateHypothesisRejectsEmptyTraceSet) {
  // Empty input must be a clear invalid_argument, not a division by zero
  // or an out_of_range from the first matrix access.
  const std::vector<sca::Trace> traces;
  const std::vector<double> hypothesis;
  try {
    sca::correlate_hypothesis(traces, hypothesis);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("empty trace set"), std::string::npos) << e.what();
  }
}

TEST(Recorder, ReserveHintPersistsAcrossTraces) {
  // The batched capture loop sets the hint once (to the fixed trace
  // length) and every subsequent begin_trace must reuse it instead of
  // re-growing the sample buffer from scratch.
  sca::PowerTraceRecorder rec({.model = sca::LeakageModel::kHammingWeight, .amplitude = 1.0,
                               .noise_sigma = 0.0, .hiding_noise_sigma = 0.0, .max_jitter = 0,
                               .seed = 3});
  rec.set_reserve_hint(64);
  EXPECT_EQ(rec.reserve_hint(), 64u);
  for (int t = 0; t < 3; ++t) {
    rec.begin_trace();
    rec.on_value(0xFF);
    (void)rec.end_trace();
    EXPECT_EQ(rec.reserve_hint(), 64u);
  }
}

// ---------------------------------------------------------------------------
// Streaming accumulators (sca/streaming.h): single-pass equivalents of the
// materialized engines. The contract under test: identical key-byte
// ranking, best/second scores within 1e-9 relative, at any batch split.
// ---------------------------------------------------------------------------

constexpr double kRelTol = 1e-9;
constexpr double kDcOffset = 1e9 + 0.7;  // non-dyadic: partial sums must round.

/// Shifts every sample of a capture by a large DC baseline — the
/// adversarial numeric fixture every Offset* regression test uses.
sca::TraceSet with_offset(sca::TraceSet set, double offset) {
  for (auto& trace : set.traces) {
    for (double& x : trace) {
      x += offset;
    }
  }
  return set;
}

void expect_key_results_close(const sca::KeyAttackResult& materialized,
                              const sca::KeyAttackResult& streaming) {
  EXPECT_EQ(materialized.recovered, streaming.recovered);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(materialized.bytes[i].best_guess, streaming.bytes[i].best_guess) << "byte " << i;
    // Near-zero wrong-guess correlations are cancellation-dominated, so
    // the relative bound is asserted where it is well-conditioned: on the
    // ranking-relevant best/second scores.
    EXPECT_NEAR(materialized.bytes[i].best_score, streaming.bytes[i].best_score,
                kRelTol * std::max(1.0, std::abs(materialized.bytes[i].best_score)))
        << "byte " << i;
    EXPECT_NEAR(materialized.bytes[i].second_score, streaming.bytes[i].second_score,
                kRelTol * std::max(1.0, std::abs(materialized.bytes[i].second_score)))
        << "byte " << i;
  }
}

TEST(StreamingEquivalence, CpaMatchesMaterialized) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 21;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 600, rec, 21);
  for (const double offset : {0.0, kDcOffset}) {
    const auto fixture = offset == 0.0 ? set : with_offset(set, offset);
    sca::StreamingCpa acc(fixture.samples_per_trace());
    acc.add_batch(fixture);
    EXPECT_EQ(acc.traces(), fixture.size());
    expect_key_results_close(sca::cpa_attack_key(fixture), acc.finalize_key());
  }
}

TEST(StreamingEquivalence, DpaMatchesMaterialized) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.3;
  rec.seed = 22;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 800, rec, 22);
  for (const double offset : {0.0, kDcOffset}) {
    const auto fixture = offset == 0.0 ? set : with_offset(set, offset);
    sca::StreamingCpa acc(fixture.samples_per_trace());
    acc.add_batch(fixture);
    expect_key_results_close(sca::dpa_attack_key(fixture, 0), acc.finalize_dpa_key(0));
  }
}

TEST(StreamingEquivalence, SecondOrderMatchesMaterialized) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  rec.seed = 23;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 1200, rec, 23);
  for (const double offset : {0.0, kDcOffset}) {
    const auto fixture = offset == 0.0 ? set : with_offset(set, offset);
    sca::StreamingSecondOrderCpa acc(fixture.samples_per_trace(), /*mask_sample=*/1);
    acc.add_batch(fixture);
    expect_key_results_close(sca::second_order_cpa_key(fixture, 1), acc.finalize_key());
  }
}

TEST(StreamingEquivalence, WelchTAndDomMatchMaterialized) {
  // Two populations with a planted shift on point 1, riding the 1e9
  // baseline: streamed t and DoM must match the materialized statistics.
  hwsec::sim::Rng rng(31);
  std::vector<sca::Trace> a, b;
  sca::StreamingWelchT wt(2);
  for (int i = 0; i < 200; ++i) {
    a.push_back({kDcOffset + rng.gaussian(0.0, 1.0), kDcOffset + rng.gaussian(0.0, 1.0)});
    b.push_back({kDcOffset + rng.gaussian(0.0, 1.0), kDcOffset + rng.gaussian(2.0, 1.0)});
    wt.add(0, a.back());
    wt.add(1, b.back());
  }
  const double t_ref = sca::max_welch_t(a, b);
  const double dom_ref = sca::max_dom(a, b);
  EXPECT_NEAR(wt.max_t(), t_ref, kRelTol * std::max(1.0, std::abs(t_ref)));
  EXPECT_NEAR(wt.max_dom(), dom_ref, kRelTol * std::max(1.0, std::abs(dom_ref)));
  EXPECT_GT(wt.max_t(), sca::kTvlaThreshold);
}

TEST(StreamingEquivalence, SnrMatchesMaterialized) {
  hwsec::sim::Rng rng(32);
  constexpr std::size_t kClasses = 8;
  std::vector<std::vector<sca::Trace>> classes(kClasses);
  sca::StreamingSnr snr(kClasses, 2);
  for (std::size_t c = 0; c < kClasses; ++c) {
    for (int i = 0; i < 60; ++i) {
      sca::Trace t = {kDcOffset + static_cast<double>(c) + rng.gaussian(0.0, 0.5),
                      kDcOffset + rng.gaussian(0.0, 0.5)};
      classes[c].push_back(t);
      snr.add(c, t);
    }
  }
  const double ref = sca::max_snr(classes);
  EXPECT_NEAR(snr.max_snr(), ref, kRelTol * std::max(1.0, std::abs(ref)));
  EXPECT_GT(snr.max_snr(), 1.0);  // the planted class signal dominates noise.
}

// ---------------------------------------------------------------------------
// merge(): worker-count independence and determinism.
// ---------------------------------------------------------------------------

TEST(StreamingMerge, CpaWorkerSplitsAgree) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 41;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, 512, rec, 41);
  const auto offset_set = with_offset(set, kDcOffset);
  const std::size_t points = set.samples_per_trace();
  constexpr std::size_t kBatch = 64;  // 8 batches.

  auto batch_partial = [&](const sca::TraceSet& fixture, std::size_t b) {
    sca::StreamingCpa acc(points);
    for (std::size_t i = b * kBatch; i < (b + 1) * kBatch; ++i) {
      acc.add(fixture.traces[i], fixture.plaintexts[i]);
    }
    return acc;
  };
  for (const auto* fixture : {&set, &offset_set}) {
    // workers=1: in-order single accumulator — the reference, and
    // bit-deterministic across repeats.
    sca::StreamingCpa one(points);
    one.add_batch(*fixture);
    sca::StreamingCpa one_again(points);
    one_again.add_batch(*fixture);
    const auto ref = one.finalize_key();
    {
      const auto again = one_again.finalize_key();
      for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(ref.bytes[i].best_score, again.bytes[i].best_score) << "not bit-deterministic";
      }
    }
    // workers=2 and workers=8: merge partials in batch-index order.
    for (const std::size_t workers : {2u, 8u}) {
      sca::StreamingCpa merged(points);
      const std::size_t per_worker = 8 / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        sca::StreamingCpa partial(points);
        for (std::size_t b = w * per_worker; b < (w + 1) * per_worker; ++b) {
          partial.merge(batch_partial(*fixture, b));
        }
        merged.merge(partial);
      }
      EXPECT_EQ(merged.traces(), fixture->size());
      expect_key_results_close(ref, merged.finalize_key());
    }
  }
}

TEST(StreamingMerge, SecondOrderWorkerSplitsAgree) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.25;
  rec.seed = 42;
  const auto set = attacks::collect_aes_traces(kKey, attacks::AesVariant::kMasked, 512, rec, 42);
  const auto offset_set = with_offset(set, kDcOffset);
  const std::size_t points = set.samples_per_trace();
  constexpr std::size_t kBatch = 64;

  for (const auto* fixture : {&set, &offset_set}) {
    sca::StreamingSecondOrderCpa ref_acc(points, 1);
    ref_acc.add_batch(*fixture);
    const auto ref = ref_acc.finalize_key();
    for (const std::size_t workers : {2u, 8u}) {
      sca::StreamingSecondOrderCpa merged(points, 1);
      const std::size_t per_worker = 8 / workers;
      for (std::size_t w = 0; w < workers; ++w) {
        sca::StreamingSecondOrderCpa partial(points, 1);
        for (std::size_t b = w * per_worker; b < (w + 1) * per_worker; ++b) {
          for (std::size_t i = b * kBatch; i < (b + 1) * kBatch; ++i) {
            partial.add(fixture->traces[i], fixture->plaintexts[i]);
          }
        }
        merged.merge(partial);
      }
      expect_key_results_close(ref, merged.finalize_key());
    }
  }
}

TEST(StreamingMerge, PopulationMergeIsAssociative) {
  // (a ⊕ b) ⊕ c vs. a ⊕ (b ⊕ c), different shift bases on every partial
  // (offset fixture), must agree to 1e-9 relative on mean and variance.
  hwsec::sim::Rng rng(43);
  std::vector<sca::Trace> chunks[3];
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      chunks[c].push_back({kDcOffset + rng.gaussian(static_cast<double>(c), 1.0)});
    }
  }
  auto accumulate = [](const std::vector<sca::Trace>& traces) {
    sca::PopulationAccumulator acc(1);
    for (const auto& t : traces) {
      acc.add(t);
    }
    return acc;
  };
  sca::PopulationAccumulator left = accumulate(chunks[0]);
  left.merge(accumulate(chunks[1]));
  left.merge(accumulate(chunks[2]));
  sca::PopulationAccumulator bc = accumulate(chunks[1]);
  bc.merge(accumulate(chunks[2]));
  sca::PopulationAccumulator right = accumulate(chunks[0]);
  right.merge(bc);
  ASSERT_EQ(left.traces(), 150u);
  ASSERT_EQ(right.traces(), 150u);
  EXPECT_NEAR(left.mean(0), right.mean(0), kRelTol * std::abs(left.mean(0)));
  EXPECT_NEAR(left.variance(0), right.variance(0), kRelTol * std::max(1.0, left.variance(0)));
}

TEST(StreamingMerge, MismatchedGeometryThrows) {
  sca::StreamingCpa a(4), b(8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  sca::StreamingCpa acc(4);
  const std::array<std::uint8_t, 16> pt{};
  const std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(acc.add(wrong, pt), std::invalid_argument);
  EXPECT_THROW(acc.finalize_byte(0), std::invalid_argument);  // < 4 traces.
  sca::StreamingSecondOrderCpa so_a(4, 1), so_b(4, 2);
  EXPECT_THROW(so_a.merge(so_b), std::invalid_argument);  // mask sample differs.
}

// ---------------------------------------------------------------------------
// Batched capture (core/capture.h): the delivered stream must be the
// materialized parallel collector's, batch for batch.
// ---------------------------------------------------------------------------

TEST(BatchedCapture, StreamMatchesParallelCollector) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 51;
  constexpr std::size_t kTotal = 300;  // ragged tail: 4 full batches + 44.
  const auto reference = attacks::collect_aes_traces_parallel(
      kKey, attacks::AesVariant::kTTable, kTotal, rec, /*seed=*/51, /*batch=*/64);
  for (const unsigned workers : {1u, 2u}) {
    hwsec::core::BatchedCaptureConfig config;
    config.seed = 51;
    config.total_traces = kTotal;
    config.workers = workers;
    sca::TraceSet assembled;
    std::size_t last_batch = 0;
    bool in_order = true;
    const std::size_t captured = hwsec::core::capture_aes_power_batches(
        config, kKey, attacks::AesVariant::kTTable, rec,
        [&](std::size_t batch_index, const sca::TraceSet& batch) {
          in_order = in_order && (assembled.traces.empty() || batch_index == last_batch + 1);
          last_batch = batch_index;
          for (std::size_t i = 0; i < batch.size(); ++i) {
            assembled.traces.push_back(batch.traces[i]);
            assembled.plaintexts.push_back(batch.plaintexts[i]);
            assembled.ciphertexts.push_back(batch.ciphertexts[i]);
          }
        });
    EXPECT_EQ(captured, kTotal);
    EXPECT_TRUE(in_order);
    EXPECT_EQ(assembled.traces, reference.traces) << "workers=" << workers;
    EXPECT_EQ(assembled.plaintexts, reference.plaintexts);
    EXPECT_EQ(assembled.ciphertexts, reference.ciphertexts);
  }
}

TEST(BatchedCapture, StreamingCampaignMatchesMaterializedCpa) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 1.0;
  rec.seed = 52;
  constexpr std::size_t kTotal = 400;
  const auto set = attacks::collect_aes_traces_parallel(kKey, attacks::AesVariant::kTTable,
                                                        kTotal, rec, /*seed=*/52);
  hwsec::core::BatchedCaptureConfig config;
  config.seed = 52;
  config.total_traces = kTotal;
  const auto acc =
      hwsec::core::run_streaming_cpa_campaign(config, kKey, attacks::AesVariant::kTTable, rec);
  EXPECT_EQ(acc.traces(), kTotal);
  expect_key_results_close(sca::cpa_attack_key(set), acc.finalize_key());
}

// ---------------------------------------------------------------------------
// Chunked trace store (sca/trace_store.h): exact round-trip, corruption
// rejected with a clear error instead of a crash or a silent short read.
// ---------------------------------------------------------------------------

/// Scratch store directory, removed on scope exit.
struct TempStoreDir {
  std::filesystem::path path;
  explicit TempStoreDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             (name + "-" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path);
  }
  ~TempStoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

sca::TraceSet small_capture(std::uint64_t seed, std::size_t count = 50) {
  sca::RecorderConfig rec;
  rec.noise_sigma = 0.5;
  rec.seed = seed;
  return attacks::collect_aes_traces(kKey, attacks::AesVariant::kTTable, count, rec, seed);
}

TEST(TraceStore, RoundTripIsExact) {
  TempStoreDir dir("hwsec-store-roundtrip");
  const auto set = small_capture(61);
  {
    // Small chunks so the round-trip crosses several chunk boundaries.
    sca::TraceStoreWriter writer(dir.str(), set.samples_per_trace(), /*traces_per_chunk=*/16);
    writer.append_batch(set);
    writer.finalize();
  }
  const auto loaded = sca::load_trace_set(dir.str());
  EXPECT_EQ(loaded.traces, set.traces);  // doubles survive bit for bit.
  EXPECT_EQ(loaded.plaintexts, set.plaintexts);
  EXPECT_EQ(loaded.ciphertexts, set.ciphertexts);

  sca::TraceStoreReader reader(dir.str());
  EXPECT_EQ(reader.size(), set.size());
  EXPECT_EQ(reader.samples_per_trace(), set.samples_per_trace());
  std::size_t visited = 0;
  reader.replay([&](const sca::TraceStoreReader::Record& r) {
    EXPECT_EQ(r.index, visited);
    ++visited;
  });
  EXPECT_EQ(visited, set.size());
}

TEST(TraceStore, ReplayFeedsStreamingCpaIdentically) {
  TempStoreDir dir("hwsec-store-replay");
  const auto set = small_capture(62, 200);
  sca::StreamingCpa direct(set.samples_per_trace());
  direct.add_batch(set);
  {
    sca::TraceStoreWriter writer(dir.str(), set.samples_per_trace());
    writer.append_batch(set);
    writer.finalize();
  }
  sca::StreamingCpa replayed(set.samples_per_trace());
  sca::TraceStoreReader reader(dir.str());
  reader.replay([&](const sca::TraceStoreReader::Record& r) {
    replayed.add(r.samples, r.plaintext);
  });
  // Same bytes in the same order: the finalized scores are bit-equal.
  const auto a = direct.finalize_key();
  const auto b = replayed.finalize_key();
  EXPECT_EQ(a.recovered, b.recovered);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.bytes[i].best_score, b.bytes[i].best_score);
  }
}

TEST(TraceStore, MissingManifestReadsAsNotAStore) {
  TempStoreDir dir("hwsec-store-missing");
  std::filesystem::create_directories(dir.path);
  EXPECT_THROW(sca::TraceStoreReader reader(dir.str()), std::runtime_error);
}

TEST(TraceStore, TruncatedChunkIsRejected) {
  TempStoreDir dir("hwsec-store-truncated");
  const auto set = small_capture(63);
  {
    sca::TraceStoreWriter writer(dir.str(), set.samples_per_trace(), 16);
    writer.append_batch(set);
    writer.finalize();
  }
  const auto chunk = dir.path / "chunk-000001.hwt";
  ASSERT_TRUE(std::filesystem::exists(chunk));
  std::filesystem::resize_file(chunk, std::filesystem::file_size(chunk) / 2);
  sca::TraceStoreReader reader(dir.str());  // manifest itself is intact.
  EXPECT_THROW(reader.replay([](const sca::TraceStoreReader::Record&) {}), std::runtime_error);
}

TEST(TraceStore, BitFlippedChunkFailsChecksum) {
  TempStoreDir dir("hwsec-store-corrupt");
  const auto set = small_capture(64);
  {
    sca::TraceStoreWriter writer(dir.str(), set.samples_per_trace(), 16);
    writer.append_batch(set);
    writer.finalize();
  }
  const auto chunk = dir.path / "chunk-000000.hwt";
  {
    std::fstream f(chunk, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(chunk)) - 9);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x01);
    f.write(&byte, 1);
  }
  sca::TraceStoreReader reader(dir.str());
  EXPECT_THROW(reader.replay([](const sca::TraceStoreReader::Record&) {}), std::runtime_error);
}

TEST(TraceStore, CorruptManifestIsRejected) {
  TempStoreDir dir("hwsec-store-badmanifest");
  const auto set = small_capture(65);
  {
    sca::TraceStoreWriter writer(dir.str(), set.samples_per_trace());
    writer.append_batch(set);
    writer.finalize();
  }
  {
    std::fstream f(dir.path / "manifest", std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.write("XXXX", 4);  // clobber the magic.
  }
  EXPECT_THROW(sca::TraceStoreReader reader(dir.str()), std::runtime_error);
}

}  // namespace
