// Shard worker: the child-process half of the sharded campaign engine.
//
// A worker is forked by the supervisor and lives entirely inside
// worker_loop(): read an assignment frame, execute the shard's trials in
// index order (skipping indices the done-bitmap marks as restored from
// checkpoint), stream one kTrial frame back per completed trial, announce
// kShardDone, repeat until kShutdown or pipe EOF. Each worker owns its own
// MachinePool and WallClockMonitor — processes share nothing but pipes, so
// a worker crash can corrupt nothing outside its own address space.
//
// A detached heartbeat thread writes kHeartbeat frames every
// heartbeat_interval; the supervisor's hang detector keys off their age
// (a SIGSTOPped or wedged worker stops beating and is killed + migrated).
//
// Worker-kill chaos: before each trial the worker rolls
// ChaosInjector::roll_worker_fault() keyed by (chaos seed, trial index,
// assignment attempt) and raises SIGKILL/SIGSTOP on itself at the seeded
// points — the recovery path is tested by the same fault-injection
// discipline as the trial path. The roll never feeds trial execution, so
// chaos changes *which process* computes a trial, never its bytes.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

#include "core/resilience/chaos.h"
#include "core/resilience/checkpoint.h"
#include "core/shard/transport.h"

namespace hwsec::core::shard {

/// Executes one trial by global index and returns the serialized record
/// (the type-erasure seam: the template layer closes over the Result type,
/// the worker only moves bytes).
using TrialRunner = std::function<CheckpointRecord(std::size_t index)>;

struct WorkerEnv {
  std::chrono::milliseconds heartbeat_interval{50};
  ChaosConfig chaos;  ///< only the worker_* fields are read here.
};

/// Runs the worker protocol over any Transport — the forked child's pipe
/// pair, a TCP socket to a remote supervisor, or a test socketpair; the
/// protocol bytes are identical on every wire. Returns the process exit
/// code; forked callers _exit() with it immediately (never unwinding back
/// into forked test/benchmark state), remote workers just return it.
int worker_loop(Transport& transport, const WorkerEnv& env, const TrialRunner& run_trial);

/// Pipe-pair convenience wrapper (the forked-child entry point).
int worker_loop(int cmd_fd, int out_fd, const WorkerEnv& env, const TrialRunner& run_trial);

}  // namespace hwsec::core::shard
