#include "attacks/physical/power_analysis.h"

#include <memory>

#include "sim/rng.h"
#include "sim/thread_pool.h"

namespace hwsec::attacks {

namespace crypto = hwsec::crypto;
namespace sca = hwsec::sca;

namespace {

/// Shared capture body: `count` traces with plaintexts drawn from
/// `plaintext_seed`, recorder noise from `recorder_config.seed`, and masks
/// (masked variant) from `mask_seed`.
sca::TraceSet capture(const crypto::AesKey& key, AesVariant variant, std::size_t count,
                      const sca::RecorderConfig& recorder_config, std::uint64_t plaintext_seed,
                      std::uint64_t mask_seed) {
  hwsec::sim::Rng rng(plaintext_seed);
  sca::PowerTraceRecorder recorder(recorder_config);

  crypto::Instrumentation instr;
  instr.leak = [&recorder](std::uint32_t value) { recorder.on_value(value); };

  // Jitter misaligns traces; keep the matrix rectangular at a length that
  // accommodates the worst case. The recorder is fresh per batch, so seed
  // its capacity hint with the known length — otherwise the first trace of
  // every batch re-grows its buffer.
  const std::size_t fixed_length =
      kAesSamplesPerTrace * (1 + recorder_config.max_jitter);
  recorder.set_reserve_hint(fixed_length);

  std::unique_ptr<crypto::AesTTable> ttable;
  std::unique_ptr<crypto::AesConstantTime> ct;
  std::unique_ptr<crypto::AesMasked> masked;
  switch (variant) {
    case AesVariant::kTTable:
      ttable = std::make_unique<crypto::AesTTable>(key, instr);
      break;
    case AesVariant::kConstantTime:
      ct = std::make_unique<crypto::AesConstantTime>(key, instr);
      break;
    case AesVariant::kMasked:
      masked = std::make_unique<crypto::AesMasked>(key, mask_seed, instr);
      break;
  }

  sca::TraceSet set;
  for (std::size_t i = 0; i < count; ++i) {
    crypto::AesBlock pt;
    for (auto& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
    recorder.begin_trace();
    crypto::AesBlock ctxt{};
    switch (variant) {
      case AesVariant::kTTable: ctxt = ttable->encrypt(pt); break;
      case AesVariant::kConstantTime: ctxt = ct->encrypt(pt); break;
      case AesVariant::kMasked: ctxt = masked->encrypt(pt); break;
    }
    set.traces.push_back(recorder.end_trace(fixed_length));
    set.plaintexts.push_back(pt);
    set.ciphertexts.push_back(ctxt);
  }
  return set;
}

}  // namespace

sca::TraceSet collect_aes_traces(const crypto::AesKey& key, AesVariant variant,
                                 std::size_t count, const sca::RecorderConfig& recorder_config,
                                 std::uint64_t seed) {
  return capture(key, variant, count, recorder_config, seed, seed ^ 0xABCD);
}

sca::TraceSet collect_aes_trace_batch(const crypto::AesKey& key, AesVariant variant,
                                      std::size_t batch_index, std::size_t count,
                                      const sca::RecorderConfig& recorder_config,
                                      std::uint64_t seed) {
  const std::uint64_t derived = hwsec::sim::derive_seed(seed, batch_index);
  sca::RecorderConfig rec = recorder_config;
  rec.seed = hwsec::sim::derive_seed(derived, 1);
  return capture(key, variant, count, rec, hwsec::sim::derive_seed(derived, 2),
                 hwsec::sim::derive_seed(derived, 3));
}

sca::TraceSet collect_aes_traces_parallel(const crypto::AesKey& key, AesVariant variant,
                                          std::size_t count,
                                          const sca::RecorderConfig& recorder_config,
                                          std::uint64_t seed, std::size_t batch,
                                          unsigned workers) {
  if (batch == 0) {
    batch = 64;
  }
  const std::size_t num_batches = (count + batch - 1) / batch;
  std::vector<sca::TraceSet> parts(num_batches);

  // Each batch is one campaign trial: all of its randomness (plaintexts,
  // measurement noise, masks) derives from (seed, batch index), never from
  // scheduling — so concatenating the parts in index order reproduces the
  // same TraceSet at any worker count.
  auto body = [&](hwsec::sim::ThreadPool& pool) {
    pool.parallel_for(num_batches, [&](std::size_t b) {
      const std::size_t n = std::min(batch, count - b * batch);
      parts[b] = collect_aes_trace_batch(key, variant, b, n, recorder_config, seed);
    });
  };
  if (workers == 0) {
    body(hwsec::sim::ThreadPool::shared());  // no per-call thread spawn.
  } else {
    hwsec::sim::ThreadPool pool(workers);
    body(pool);
  }

  sca::TraceSet set;
  set.traces.reserve(count);
  set.plaintexts.reserve(count);
  set.ciphertexts.reserve(count);
  for (sca::TraceSet& part : parts) {
    for (std::size_t i = 0; i < part.traces.size(); ++i) {
      set.traces.push_back(std::move(part.traces[i]));
      set.plaintexts.push_back(part.plaintexts[i]);
      set.ciphertexts.push_back(part.ciphertexts[i]);
    }
  }
  return set;
}

}  // namespace hwsec::attacks
