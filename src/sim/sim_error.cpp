#include "sim/sim_error.h"

namespace hwsec {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kConfigError: return "ConfigError";
    case ErrorKind::kGuestFault: return "GuestFault";
    case ErrorKind::kResourceExhausted: return "ResourceExhausted";
    case ErrorKind::kTimedOut: return "TimedOut";
    case ErrorKind::kInternalError: return "InternalError";
  }
  return "?";
}

SimError::SimError(ErrorKind kind, std::string detail)
    : std::runtime_error(detail), kind_(kind), detail_(std::move(detail)) {
  recompose();
}

SimError& SimError::with_machine(std::string profile_name) {
  machine_ = std::move(profile_name);
  recompose();
  return *this;
}

SimError& SimError::with_trial(std::size_t index, std::uint64_t seed) {
  if (!has_trial_) {
    has_trial_ = true;
    trial_index_ = index;
    trial_seed_ = seed;
    recompose();
  }
  return *this;
}

void SimError::recompose() {
  what_ = std::string(to_string(kind_)) + ": " + detail_;
  if (!machine_.empty()) {
    what_ += " [machine=" + machine_ + "]";
  }
  if (has_trial_) {
    what_ += " [trial=" + std::to_string(trial_index_) +
             " seed=" + std::to_string(trial_seed_) + "]";
  }
}

}  // namespace hwsec
