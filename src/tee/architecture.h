// Abstract interface implemented by every hardware-assisted security
// architecture the paper surveys (src/arch/*), plus the declarative trait
// matrix the Section-3 comparison (experiment E2) is generated from.
//
// Design note: enclave *services* (the sensitive computation, e.g. an AES
// encryption with a provisioned key) execute as host callbacks while the
// machine is switched into the enclave's security domain. Their memory
// accesses and power leakage flow through the simulator via the
// Instrumentation hooks, so attacks observe them exactly as they would
// observe ISA-level code — without every experiment having to hand-write
// AES in simulator assembly. Transient-execution experiments, which *do*
// depend on pipeline behaviour, run real simulated programs instead.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/machine.h"
#include "tee/attestation.h"
#include "tee/enclave.h"

namespace hwsec::tee {

enum class TcbType : std::uint8_t {
  kHardwareOnly,          ///< Sancus: zero-software TCB.
  kHardwareAndMicrocode,  ///< SGX.
  kMonitor,               ///< Sanctum's security monitor (machine mode).
  kSecureWorldSoftware,   ///< TrustZone: monitor + all secure-world code.
  kVendorPrimitives,      ///< Sanctuary: only device-vendor primitives.
  kRomLoader,             ///< SMART / TrustLite / TyTAN: ROM code (+ loader).
};

enum class DmaDefense : std::uint8_t {
  kNone,               ///< device reads anything (SMART, TrustLite, TyTAN).
  kRangeFilter,        ///< memory-controller veto (Sanctum).
  kEncryptedMemory,    ///< transaction succeeds, data is ciphertext (SGX).
  kRegionAssignment,   ///< TZASC-style exclusive assignment (TrustZone, Sanctuary).
};

enum class CacheDefense : std::uint8_t {
  kNone,               ///< SGX, TrustZone.
  kLlcPartitioning,    ///< Sanctum (page coloring) + private-cache flush.
  kExclusionAndFlush,  ///< Sanctuary: enclave memory uncacheable in shared levels.
  kNoSharedCaches,     ///< embedded platforms: nothing to attack.
};

enum class AttestationSupport : std::uint8_t { kNone, kLocal, kRemote, kLocalAndRemote };

std::string to_string(TcbType t);
std::string to_string(DmaDefense d);
std::string to_string(CacheDefense c);
std::string to_string(AttestationSupport a);

/// Declarative Section-3 feature matrix entry. The evaluation engine
/// (src/core) cross-checks several of these claims with live probes.
struct ArchitectureTraits {
  std::string name;
  std::string reference;  ///< paper citation, e.g. "[16] Intel 2014".
  hwsec::sim::DeviceClass target = hwsec::sim::DeviceClass::kServer;
  TcbType tcb = TcbType::kHardwareOnly;
  /// -1 = unlimited, 0 = none (SMART: attestation only), 1 = single.
  int enclave_capacity = 0;
  bool memory_encryption = false;
  DmaDefense dma_defense = DmaDefense::kNone;
  CacheDefense cache_defense = CacheDefense::kNone;
  bool secure_peripheral_channels = false;
  AttestationSupport attestation = AttestationSupport::kNone;
  bool code_isolation = false;
  bool real_time_capable = false;
  bool secure_boot = false;
  bool secure_storage = false;
  /// TrustZone pain: app developers need a trust relationship with the
  /// device vendor to deploy into the single secure world.
  bool vendor_trust_required = false;
  /// Does deploying this design require new hardware (vs. running on
  /// already-shipped silicon, Sanctuary's selling point)?
  bool new_hardware_required = true;
  /// Threat-model coverage flags straight from the paper's text.
  bool considers_cache_sca = false;
  bool considers_dma = false;
};

/// Minimal result type (no exceptions across the architecture API: the
/// paper's comparisons hinge on *which* error a design returns).
template <typename T>
struct Expected {
  T value{};
  EnclaveError error = EnclaveError::kOk;
  bool ok() const { return error == EnclaveError::kOk; }
};

/// Execution context handed to an enclave service callback.
class EnclaveContext {
 public:
  EnclaveContext(hwsec::sim::Machine& machine, hwsec::sim::CoreId core, const EnclaveInfo& info)
      : machine_(&machine), core_(core), info_(&info) {}

  hwsec::sim::Machine& machine() { return *machine_; }
  hwsec::sim::CoreId core() const { return core_; }
  const EnclaveInfo& info() const { return *info_; }
  hwsec::sim::DomainId domain() const { return info_->domain; }

  /// Byte accessors into enclave memory. Each access goes through the
  /// cache hierarchy with the enclave's domain tag (observable timing /
  /// occupancy) and through DRAM contents (observable by DMA etc.).
  std::uint8_t read8(std::uint32_t offset);
  void write8(std::uint32_t offset, std::uint8_t value);

  /// Physical address of an offset inside the enclave region.
  hwsec::sim::PhysAddr phys(std::uint32_t offset) const;

 private:
  hwsec::sim::Machine* machine_;
  hwsec::sim::CoreId core_;
  const EnclaveInfo* info_;
};

class Architecture {
 public:
  using Service = std::function<void(EnclaveContext&)>;

  explicit Architecture(hwsec::sim::Machine& machine) : machine_(&machine) {}
  virtual ~Architecture() = default;

  Architecture(const Architecture&) = delete;
  Architecture& operator=(const Architecture&) = delete;

  virtual const ArchitectureTraits& traits() const = 0;

  hwsec::sim::Machine& machine() { return *machine_; }

  /// Creates (and initializes) an enclave from `image`.
  virtual Expected<EnclaveId> create_enclave(const EnclaveImage& image) = 0;

  /// Tears an enclave down. Architectures differ in what they scrub.
  virtual EnclaveError destroy_enclave(EnclaveId id) = 0;

  /// Runs `service` inside the enclave on `core` (world switch / EENTER /
  /// trustlet entry semantics, including each design's defensive actions
  /// on entry and exit).
  virtual EnclaveError call_enclave(EnclaveId id, hwsec::sim::CoreId core,
                                    const Service& service) = 0;

  /// Produces an attestation report for the enclave.
  virtual Expected<AttestationReport> attest(EnclaveId id, const Nonce& nonce) = 0;

  /// Capability probe used by the evaluation engine: "attest *something*
  /// on this platform". The default creates a throwaway enclave and
  /// attests it; designs without code isolation (SMART) override this
  /// with their region-attestation primitive.
  virtual Expected<AttestationReport> probe_attestation(const Nonce& nonce);

  /// The platform verification key for reports from this architecture
  /// (empty if the design has no attestation).
  virtual std::vector<std::uint8_t> report_verification_key() const { return {}; }

  /// Full attestation round trip: produce a report via probe_attestation
  /// and verify it as the relying party would. Designs with per-enclave
  /// keys (Sancus) override this with their own verification protocol.
  virtual bool attestation_round_trip(const Nonce& nonce);

  /// Lookup (nullptr if unknown).
  const EnclaveInfo* enclave(EnclaveId id) const;
  std::size_t enclave_count() const { return enclaves_.size(); }

 protected:
  EnclaveInfo& register_enclave(EnclaveInfo info);
  EnclaveInfo* find_enclave(EnclaveId id);
  void unregister_enclave(EnclaveId id);
  /// Copies image code+secret into the enclave's (possibly strided)
  /// physical pages and zero-fills the remainder.
  void load_image(const EnclaveImage& image, const EnclaveInfo& info);
  /// Pages needed for an image.
  static std::uint32_t image_pages(const EnclaveImage& image);

  hwsec::sim::Machine* machine_;
  std::map<EnclaveId, EnclaveInfo> enclaves_;
  EnclaveId next_id_ = 1;
};

}  // namespace hwsec::tee
