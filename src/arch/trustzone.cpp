#include "arch/trustzone.h"

namespace hwsec::arch {

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;

TrustZone::TrustZone(sim::Machine& machine, Config config)
    : Architecture(machine), config_(config) {
  secure_base_ = machine.alloc_frames(config_.secure_ram_pages);
  secure_alloc_cursor_ = secure_base_;

  secure_world_key_.resize(32);
  for (auto& b : secure_world_key_) {
    b = static_cast<std::uint8_t>(machine.rng().next_u32());
  }

  // The TZASC + SoC security fabric: one bus check covers secure RAM and
  // all dynamically assigned device regions. It applies equally to CPU
  // and DMA traffic — that is TrustZone's DMA story.
  tzasc_check_id_ = machine.bus().add_check(
      [this](sim::PhysAddr addr, sim::AccessType, sim::DomainId domain, sim::Privilege,
             bool) -> sim::Fault {
        if (in_secure_ram(addr) && !secure_attribute(domain)) {
          return sim::Fault::kSecurityViolation;
        }
        for (const auto& [base, end] : device_regions_) {
          if (addr >= base && addr < end && !secure_attribute(domain)) {
            return sim::Fault::kSecurityViolation;
          }
        }
        return sim::Fault::kNone;
      });
}

TrustZone::~TrustZone() { machine_->bus().remove_check(tzasc_check_id_); }

const tee::ArchitectureTraits& TrustZone::traits() const {
  static const tee::ArchitectureTraits kTraits{
      .name = "ARM TrustZone",
      .reference = "[2]",
      .target = sim::DeviceClass::kMobile,
      .tcb = tee::TcbType::kSecureWorldSoftware,
      .enclave_capacity = 1,  // the single secure world.
      .memory_encryption = false,
      .dma_defense = tee::DmaDefense::kRegionAssignment,
      .cache_defense = tee::CacheDefense::kNone,
      .secure_peripheral_channels = true,
      .attestation = tee::AttestationSupport::kNone,  // secure boot, not attestation.
      .code_isolation = true,
      .real_time_capable = false,
      .secure_boot = true,
      .secure_storage = true,
      .vendor_trust_required = true,
      .new_hardware_required = true,  // TrustZone-enabled SoC.
      .considers_cache_sca = false,
      .considers_dma = true,
  };
  return kTraits;
}

void TrustZone::vendor_sign(const tee::EnclaveImage& image) {
  vendor_signatures_[tee::measure_image(image)] = true;
}

void TrustZone::assign_device_region(sim::PhysAddr base, std::uint32_t pages) {
  device_regions_.emplace_back(base, base + pages * sim::kPageSize);
  // Drop any stale normal-world cache copies of the newly protected range.
  for (sim::PhysAddr a = base; a < base + pages * sim::kPageSize; a += 64) {
    machine_->caches().flush_line(a);
  }
}

tee::Expected<tee::EnclaveId> TrustZone::create_enclave(const tee::EnclaveImage& image) {
  // One secure world, one trusted app slot: the paper's core limitation.
  if (!enclaves_.empty()) {
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kCapacityExceeded};
  }
  const auto measurement = tee::measure_image(image);
  if (config_.require_vendor_signature && !vendor_signatures_.count(measurement)) {
    // Monitor's secure-boot verification rejects unsigned secure-world
    // code: without the vendor trust relationship, no deployment.
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kVerificationFailed};
  }
  const std::uint32_t pages = image_pages(image);
  const sim::PhysAddr end =
      secure_base_ + config_.secure_ram_pages * sim::kPageSize;
  if (secure_alloc_cursor_ + pages * sim::kPageSize > end) {
    return {.value = tee::kInvalidEnclave, .error = tee::EnclaveError::kOutOfMemory};
  }

  tee::EnclaveInfo info;
  info.name = image.name;
  info.measurement = measurement;
  info.domain = kSecureWorldDomain;  // everything secure shares one world.
  info.base = secure_alloc_cursor_;
  info.pages = pages;
  info.initialized = true;
  secure_alloc_cursor_ += pages * sim::kPageSize;
  tee::EnclaveInfo& registered = register_enclave(std::move(info));
  load_image(image, registered);
  return {.value = registered.id, .error = tee::EnclaveError::kOk};
}

tee::EnclaveError TrustZone::destroy_enclave(tee::EnclaveId id) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  machine_->memory().fill(info->base, info->pages * sim::kPageSize, 0);
  secure_alloc_cursor_ = info->base;
  unregister_enclave(id);
  return tee::EnclaveError::kOk;
}

tee::EnclaveError TrustZone::call_enclave(tee::EnclaveId id, sim::CoreId core,
                                          const Service& service) {
  tee::EnclaveInfo* info = find_enclave(id);
  if (info == nullptr) {
    return tee::EnclaveError::kNoSuchEnclave;
  }
  sim::Cpu& cpu = machine_->cpu(core);
  const sim::DomainId saved_domain = cpu.domain();
  const sim::Privilege saved_priv = cpu.privilege();

  // SMC into the monitor, then the secure world. NO cache maintenance on
  // the world switch: secure lines stay observable in the shared caches.
  cpu.switch_context(kSecureWorldDomain, sim::Privilege::kMachine, cpu.mmu().root(),
                     cpu.mmu().asid());
  cpu.add_cycles(120);  // SMC + monitor dispatch.

  tee::EnclaveContext ctx(*machine_, core, *info);
  service(ctx);

  cpu.switch_context(saved_domain, saved_priv, cpu.mmu().root(), cpu.mmu().asid());
  cpu.add_cycles(120);
  return tee::EnclaveError::kOk;
}

tee::Expected<tee::AttestationReport> TrustZone::attest(tee::EnclaveId /*id*/,
                                                        const tee::Nonce& /*nonce*/) {
  // Plain TrustZone verifies secure-world code at boot (signatures) but
  // offers no attestation protocol to third parties.
  return {.value = {}, .error = tee::EnclaveError::kUnsupported};
}

}  // namespace hwsec::arch
