// E2 — regenerates the §3 architecture comparison: all eight surveyed
// designs instantiated on their target platform class, their declared
// traits cross-checked by live probes (capacity, attestation, DMA,
// isolation enforcement).
//
// Paper's expected shape:
//   SGX:       N enclaves, memory encryption, DMA->ciphertext, no cache defense;
//   Sanctum:   N enclaves, no encryption, DMA blocked, LLC partitioning;
//   TrustZone: 1 enclave, vendor trust required, DMA region assignment;
//   Sanctuary: N enclaves, no new hardware, exclusion+flush cache defense;
//   SMART:     0 enclaves (attestation only), DMA leaks plaintext;
//   Sancus:    N modules, zero-software TCB, DMA leaks;
//   TrustLite: N static trustlets, config locked after boot, DMA leaks;
//   TyTAN:     + secure boot, secure storage, real-time.
#include <benchmark/benchmark.h>

#include "arch/sancus.h"
#include "arch/sanctuary.h"
#include "arch/sanctum.h"
#include "arch/sgx.h"
#include "arch/smart.h"
#include "arch/trustlite.h"
#include "arch/trustzone.h"
#include "core/arch_matrix.h"
#include "table.h"

namespace sim = hwsec::sim;
namespace tee = hwsec::tee;
namespace arch = hwsec::arch;
namespace core = hwsec::core;

namespace {

tee::EnclaveImage secret_image() {
  tee::EnclaveImage image;
  image.name = "asset";
  image.code = {0x01};
  image.secret = {'K', 'E', 'Y', '0'};
  return image;
}

/// Per-architecture probe context.
struct Row {
  core::ArchitectureAssessment assessment;
  hwsec::sim::Cycle enter_exit_cycles = 0;
};

/// Measures call_enclave round-trip cost (the §3 performance dimension).
sim::Cycle measure_entry_cost(tee::Architecture& a, tee::EnclaveId id) {
  sim::Cpu& cpu = a.machine().cpu(0);
  const sim::Cycle before = cpu.cycles();
  a.call_enclave(id, 0, [](tee::EnclaveContext&) {});
  // Sanctuary pins to core 1; fall back to the max across cores.
  sim::Cycle after = cpu.cycles();
  for (std::uint32_t c = 0; c < a.machine().num_cores(); ++c) {
    after = std::max(after, a.machine().cpu(static_cast<sim::CoreId>(c)).cycles());
  }
  return after - before;
}

Row assess_sgx() {
  static sim::Machine machine(sim::MachineProfile::server(), 301);
  static arch::Sgx sgx(machine);
  const auto id = sgx.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = sgx.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      sgx, info->phys_of(1), {'K', 'E', 'Y', '0'}, [&]() {
        auto aspace = machine.create_address_space();
        aspace.map(0x70000000, sim::page_base(info->base), sim::pte::kUser);
        machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                      aspace.root(), 30);
        return machine.cpu(0).mmu().translate(0x70000000, sim::AccessType::kRead).fault !=
               sim::Fault::kNone;
      });
  row.enter_exit_cycles = measure_entry_cost(sgx, id);
  return row;
}

Row assess_sanctum() {
  static sim::Machine machine(sim::MachineProfile::server(), 302);
  static arch::Sanctum sanctum(machine);
  const auto id = sanctum.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = sanctum.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      sanctum, info->phys_of(1), {'K', 'E', 'Y', '0'}, [&]() {
        auto aspace = machine.create_address_space();
        aspace.map(0x70000000, sim::page_base(info->base), sim::pte::kUser);
        machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                      aspace.root(), 31);
        return machine.cpu(0).mmu().translate(0x70000000, sim::AccessType::kRead).fault !=
               sim::Fault::kNone;
      });
  row.enter_exit_cycles = measure_entry_cost(sanctum, id);
  return row;
}

Row assess_trustzone() {
  static sim::Machine machine(sim::MachineProfile::mobile(), 303);
  static arch::TrustZone tz(machine);
  tz.vendor_sign(secret_image());
  // Also pre-sign the capacity probes? No: capacity probe images are
  // unsigned, so TrustZone reports kVerificationFailed — itself a finding
  // the table shows (vendor trust required).
  const auto id = tz.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = tz.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      tz, info->phys_of(1), {'K', 'E', 'Y', '0'}, [&]() {
        return machine.bus()
                   .cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor, info->base)
                   .fault != sim::Fault::kNone;
      });
  row.enter_exit_cycles = measure_entry_cost(tz, id);
  return row;
}

Row assess_sanctuary() {
  static sim::Machine machine(sim::MachineProfile::mobile(), 304);
  static arch::Sanctuary sanctuary(machine);
  const auto id = sanctuary.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = sanctuary.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      sanctuary, info->phys_of(1), {'K', 'E', 'Y', '0'}, [&]() {
        return machine.bus()
                   .cpu_read(0, arch::kOsDomain, sim::Privilege::kSupervisor, info->base)
                   .fault != sim::Fault::kNone;
      });
  row.enter_exit_cycles = measure_entry_cost(sanctuary, id);
  return row;
}

Row assess_smart() {
  static sim::Machine machine(sim::MachineProfile::embedded(), 305);
  static arch::Smart smart(machine);
  Row row;
  row.assessment = core::assess_architecture(
      smart, smart.key_phys(), smart.report_verification_key(),
      [&]() { return smart.try_key_access(0x80000) != sim::Fault::kNone; });
  row.enter_exit_cycles = 0;  // no enclave entry exists.
  return row;
}

Row assess_sancus() {
  static sim::Machine machine(sim::MachineProfile::embedded(), 306);
  static arch::Sancus sancus(machine);
  const auto id = sancus.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = sancus.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      sancus, info->base + sim::kPageSize, {'K', 'E', 'Y', '0'},
      [&]() { return sancus.try_data_access(id, 0x80000) != sim::Fault::kNone; });
  row.enter_exit_cycles = measure_entry_cost(sancus, id);
  return row;
}

Row assess_trustlite() {
  static sim::Machine machine(sim::MachineProfile::embedded(), 307);
  static arch::TrustLite trustlite(machine);
  const auto id = trustlite.create_enclave(secret_image()).value;
  trustlite.boot();
  const tee::EnclaveInfo* info = trustlite.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      trustlite, info->base + sim::kPageSize, {'K', 'E', 'Y', '0'},
      [&]() { return trustlite.try_data_access(id, 0x80000) != sim::Fault::kNone; });
  row.enter_exit_cycles = measure_entry_cost(trustlite, id);
  return row;
}

Row assess_tytan() {
  static sim::Machine machine(sim::MachineProfile::embedded(), 308);
  static arch::TyTan tytan(machine);
  tytan.boot();
  const auto id = tytan.create_enclave(secret_image()).value;
  const tee::EnclaveInfo* info = tytan.enclave(id);
  Row row;
  row.assessment = core::assess_architecture(
      tytan, info->base + sim::kPageSize, {'K', 'E', 'Y', '0'},
      [&]() { return tytan.try_data_access(id, 0x80000) != sim::Fault::kNone; });
  row.enter_exit_cycles = measure_entry_cost(tytan, id);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using hwsec::bench::Table;

  std::vector<Row> rows = {assess_sgx(),     assess_sanctum(),   assess_trustzone(),
                           assess_sanctuary(), assess_smart(),   assess_sancus(),
                           assess_trustlite(), assess_tytan()};

  hwsec::bench::section("E2 / §3 — architecture comparison (declared traits + live probes)");
  std::vector<core::ArchitectureAssessment> assessments;
  for (const auto& r : rows) {
    assessments.push_back(r.assessment);
  }
  std::cout << core::render_matrix(assessments);

  hwsec::bench::section("capability details");
  Table t({"arch", "attest", "sec.boot", "storage", "realtime", "vendor-trust", "new-hw",
           "entry cyc"},
          {12, 14, 10, 9, 10, 14, 8, 10});
  t.print_header();
  for (const auto& r : rows) {
    const auto& a = r.assessment.traits;
    t.print_row(a.name, tee::to_string(a.attestation), a.secure_boot, a.secure_storage,
                a.real_time_capable, a.vendor_trust_required, a.new_hardware_required,
                r.enter_exit_cycles);
  }

  hwsec::bench::section("threat-model coverage (from the paper's text, probed above)");
  Table c({"arch", "considers cache SCA", "considers DMA", "DMA probe outcome"},
          {12, 22, 16, 20});
  c.print_header();
  for (const auto& r : rows) {
    c.print_row(r.assessment.traits.name, r.assessment.traits.considers_cache_sca,
                r.assessment.traits.considers_dma, core::to_string(r.assessment.dma));
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
