// Test-case minimization: greedy instruction deletion, address-stable.
//
// Generated programs are position-dependent (branch targets, computed
// jumps and the enclave entry are absolute addresses), so the shrinker
// never *removes* instructions mid-program — that would slide every
// successor to a new address and almost always change the failure into a
// different program rather than a smaller one. Instead it:
//
//  1. replaces chunks of instructions with kNop, halving the chunk size
//     down to 1 (ddmin-style), keeping a replacement only if the verdict
//     still fails;
//  2. truncates runs of trailing nops before the final kHalt (the only
//     deletion that moves an address — the halt's own — and is re-verified
//     like any other candidate);
//  3. repeats until a full pass changes nothing.
//
// Every candidate is judged by a fresh differential run, so the result is
// guaranteed to still fail — what lands in tests/corpus/ reproduces, by
// construction.
#pragma once

#include <cstddef>

#include "conformance/differ.h"
#include "conformance/generator.h"

namespace hwsec::conformance {

struct ShrinkResult {
  GeneratedCase test;
  std::size_t instructions = 0;  ///< non-nop instructions across both programs.
  std::size_t runs = 0;          ///< differential executions spent shrinking.
};

/// Number of non-nop instructions in both programs.
std::size_t case_instruction_count(const GeneratedCase& test);

/// Minimizes `test`, which must fail under exactly these parameters
/// (checked; returns it unshrunk with runs == 1 if it does not fail).
ShrinkResult shrink_case(const ArchContext& arch, GeneratedCase test,
                         BugInjection inject = BugInjection::kNone);

}  // namespace hwsec::conformance
