// Machine composition: cores + MMU/MPU + caches + bus + DMA-capable
// devices + DVFS, wired per a MachineProfile.
//
// The three built-in profiles model the paper's three platform classes
// (Figure 1 columns):
//
//  * server():   many fast speculative cores, large caches, big energy
//                budget — microarchitecturally rich and therefore exposed
//                to the Section 4 attacks; physically inaccessible.
//  * mobile():   speculative but Meltdown/L1TF-mitigated cores (ARM-like),
//                shared LLC, DVFS with software-writable registers (the
//                CLKSCREW precondition), MMU + TrustZone-style hooks.
//  * embedded(): one in-order core, no caches, no MMU (bare physical
//                addressing + MPU), microwatt energy budget — immune to
//                the microarchitectural attacks by construction but fully
//                exposed to physical ones.
//
// Profiles are data, not subclasses: an experiment can take a profile,
// tweak one knob (the ablation benches do) and build a Machine from it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/bus.h"
#include "sim/cache_hierarchy.h"
#include "sim/cpu.h"
#include "sim/dvfs.h"
#include "sim/memory.h"
#include "sim/mpu.h"
#include "sim/page_table.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace hwsec::sim {

enum class DeviceClass : std::uint8_t { kServer, kMobile, kEmbedded };

std::string to_string(DeviceClass c);

/// TimeWarp-style timer defense (Martin et al., the paper's [32]):
/// coarsen and fuzz every timing measurement an attacker can take.
/// granularity == 1 and jitter == 0 is a perfect cycle counter.
struct TimerConfig {
  Cycle granularity = 1;  ///< readings snap to multiples of this.
  Cycle jitter = 0;       ///< uniform random 0..jitter added before snapping.
};

/// Per-event energy costs in nanojoules at 1.0 V (scaled by V² at the
/// current DVFS point).
struct EnergyCosts {
  double per_instruction_nj = 0.5;
  double per_l1_access_nj = 0.1;
  double per_llc_access_nj = 0.6;
  double per_dram_access_nj = 6.0;
};

struct MachineProfile {
  std::string name = "generic";
  DeviceClass device_class = DeviceClass::kServer;
  std::uint32_t dram_bytes = 32u << 20;
  std::uint32_t num_cores = 4;
  bool has_mmu = true;  ///< false: bare physical addressing + MPU.
  HierarchyConfig hierarchy{};
  CpuConfig cpu{};      ///< template; core ids are assigned by Machine.
  DvfsConfig dvfs{};
  EnergyCosts energy{};
  TimerConfig timer{};

  static MachineProfile server();
  static MachineProfile mobile();
  static MachineProfile embedded();
};

class Machine;

/// Full machine state captured by Machine::snapshot(): registers, MMU/TLB
/// and predictor state (inside the Cpu copies), page-table frames and all
/// other DRAM (inside the memory snapshot), cache/PLRU arrays, bus
/// firewalls/transform, MPU, DVFS and fault-injector state, the machine
/// RNG, and the frame/ASID allocation cursors.
///
/// A snapshot is tied to the Machine it was taken from (component copies
/// hold callbacks that capture pointers into that machine); reset_to()
/// rejects snapshots from any other instance.
struct MachineSnapshot {
  const Machine* owner = nullptr;
  PhysicalMemory::Snapshot memory;
  CacheHierarchy::Snapshot caches;
  Bus::Snapshot bus;
  Mpu mpu;
  DvfsController dvfs;
  FaultInjector injector;
  Rng rng;
  std::vector<Cpu> cpus;
  PhysAddr next_frame = 0;
  Asid next_asid = 1;
};

class Machine {
 public:
  explicit Machine(MachineProfile profile, std::uint64_t seed = 0xC0FFEE);

  const MachineProfile& profile() const { return profile_; }

  Cpu& cpu(CoreId core = 0) { return *cpus_.at(core); }
  const Cpu& cpu(CoreId core = 0) const { return *cpus_.at(core); }
  std::uint32_t num_cores() const { return static_cast<std::uint32_t>(cpus_.size()); }

  PhysicalMemory& memory() { return memory_; }
  CacheHierarchy& caches() { return caches_; }
  Bus& bus() { return bus_; }
  Mpu& mpu() { return mpu_; }
  DvfsController& dvfs() { return dvfs_; }
  FaultInjector& injector() { return injector_; }
  Rng& rng() { return rng_; }

  // -- physical frame management ---------------------------------------
  /// Bump-allocates a zeroed 4 KiB frame. Frames are never freed; the
  /// experiments are short-lived.
  PhysAddr alloc_frame();
  /// Allocates `n` contiguous frames and returns the base.
  PhysAddr alloc_frames(std::uint32_t n);
  /// Allocates a frame whose LLC color (set-group) equals `color`, for
  /// Sanctum-style page-coloring partitioning.
  PhysAddr alloc_frame_colored(std::uint32_t color, std::uint32_t num_colors);
  /// LLC color of a frame under `num_colors` colors.
  std::uint32_t frame_color(PhysAddr frame, std::uint32_t num_colors) const;

  /// Creates an address space with a freshly allocated root table.
  AddressSpace create_address_space();

  /// Hands out the next free ASID. Per-machine (not global) so that a
  /// trial owning its own Machine sees ASIDs that depend only on its own
  /// construction order — never on what other threads are doing.
  /// Hardcoded ASIDs in the attack library start at 40; a machine hosts
  /// far fewer processes than that.
  Asid allocate_asid() { return next_asid_++; }

  // -- native instrumentation ports --------------------------------------
  /// Issues a data access to the cache hierarchy on behalf of
  /// host-instrumented victim code (e.g. the AES T-table lookups of the
  /// crypto library "running on" this machine). Returns timing exactly as
  /// the CPU data path would.
  MemoryAccessOutcome touch(CoreId core, DomainId domain, PhysAddr addr,
                            AccessType type = AccessType::kRead);
  /// CLFLUSH from instrumented code.
  void flush_line(PhysAddr addr) { caches_.flush_line(addr); }
  /// Batch CLFLUSH of `count` lines at `base`, `base + stride`, ... from
  /// instrumented code (probe-array eviction). One hierarchy sweep instead
  /// of count independent flush_line calls.
  void flush_lines(PhysAddr base, std::uint32_t stride, std::uint32_t count) {
    caches_.flush_lines(base, stride, count);
  }

  /// Installs a shared decoded-program cache on every core (nullptr:
  /// detach). The cache must outlive the machine; the machine pool owns
  /// one per pool and installs it before taking the pristine snapshot.
  void set_uop_cache(const std::shared_ptr<UopCache>& cache);

  /// What an attacker's timer reports for a true duration of `latency`
  /// cycles, under the platform's TimeWarp-style timer policy. A perfect
  /// timer (the default) returns the input unchanged.
  Cycle observe_latency(Cycle latency);

  /// Arms (nullptr: disarms) a per-trial watchdog on every core. While
  /// armed, guest execution that exceeds the watchdog's cycle budget — or
  /// that the wall-clock monitor cancels — raises SimError(kTimedOut).
  void arm_watchdog(const TrialWatchdog* watchdog);

  // -- whole-machine measurements (Figure 1 rows) -------------------------
  /// Total energy consumed so far across all cores, in nanojoules, at the
  /// current DVFS voltage.
  double energy_nj() const;
  /// Wall-clock time corresponding to the busiest core, in nanoseconds.
  double elapsed_ns() const;
  /// Committed instructions across all cores.
  std::uint64_t total_retired() const;

  void reset_stats();

  // -- snapshot / reset (trial pooling) ---------------------------------
  /// Captures the complete machine state. Taking a snapshot enables
  /// dirty-page tracking in DRAM, so a later reset_to() copies back only
  /// the pages the trial touched. The canonical use is one snapshot of the
  /// pristine post-construction state, restored between campaign trials
  /// (see core/machine_pool.h).
  MachineSnapshot snapshot();

  /// Restores a snapshot previously taken from *this machine*; snapshots
  /// are not transferable (their component copies carry callbacks bound to
  /// the owning machine) and a foreign snapshot throws kConfigError.
  /// reset_to(snapshot()) followed by reseed(s) is bit-identical to a
  /// fresh Machine(profile, s) — the determinism suites enforce this.
  void reset_to(const MachineSnapshot& snap);

  /// Re-derives the seed-dependent state (machine RNG and glitch-fault
  /// injector) exactly as the constructor would for `seed`. Everything
  /// else the constructor builds is seed-independent, which is what makes
  /// reset_to + reseed equivalent to fresh construction.
  void reseed(std::uint64_t seed);

 private:
  static PhysAddr alloc_frame_trampoline(void* ctx);

  MachineProfile profile_;
  PhysicalMemory memory_;
  CacheHierarchy caches_;
  Bus bus_;
  Mpu mpu_;
  DvfsController dvfs_;
  FaultInjector injector_;
  Rng rng_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::shared_ptr<UopCache> uop_cache_;  ///< keeps the shared cache alive.
  PhysAddr next_frame_;
  Asid next_asid_ = 1;
};

}  // namespace hwsec::sim
