// TEE framework: measurement, reports, quotes, and the enclave-context
// data path.
#include <gtest/gtest.h>

#include "tee/architecture.h"
#include "tee/attestation.h"
#include "tee/enclave.h"
#include "tee/secure_boot.h"

namespace tee = hwsec::tee;
namespace crypto = hwsec::crypto;

namespace {

tee::EnclaveImage demo_image() {
  tee::EnclaveImage image;
  image.name = "demo";
  image.code = {1, 2, 3, 4};
  image.secret = {9, 9};
  return image;
}

TEST(Measurement, DependsOnCodeAndNameButNotSecret) {
  const auto base = tee::measure_image(demo_image());

  tee::EnclaveImage renamed = demo_image();
  renamed.name = "other";
  EXPECT_NE(tee::measure_image(renamed), base);

  tee::EnclaveImage patched = demo_image();
  patched.code[0] ^= 1;
  EXPECT_NE(tee::measure_image(patched), base);

  tee::EnclaveImage other_secret = demo_image();
  other_secret.secret = {7};
  EXPECT_EQ(tee::measure_image(other_secret), base)
      << "provisioned secrets must not change the measured identity";
}

TEST(Attestation, ReportRoundTrip) {
  const std::vector<std::uint8_t> key(32, 0x11);
  tee::Nonce nonce{};
  nonce[0] = 0xAB;
  const auto m = tee::measure_image(demo_image());
  const auto report = tee::make_report(key, m, nonce, {0xDE, 0xAD});
  EXPECT_TRUE(tee::verify_report(key, report, nonce));
}

TEST(Attestation, WrongKeyNonceOrTamperFails) {
  const std::vector<std::uint8_t> key(32, 0x11);
  const std::vector<std::uint8_t> wrong_key(32, 0x22);
  tee::Nonce nonce{};
  const auto m = tee::measure_image(demo_image());
  auto report = tee::make_report(key, m, nonce);

  EXPECT_FALSE(tee::verify_report(wrong_key, report, nonce));

  tee::Nonce other_nonce{};
  other_nonce[5] = 1;
  EXPECT_FALSE(tee::verify_report(key, report, other_nonce)) << "replayed nonce";

  report.measurement[0] ^= 1;
  EXPECT_FALSE(tee::verify_report(key, report, nonce)) << "tampered measurement";
}

TEST(Attestation, QuoteSignAndVerify) {
  hwsec::sim::Rng rng(42);
  const auto attestation_key = crypto::rsa_generate(rng);
  const std::vector<std::uint8_t> platform_key(32, 0x33);
  tee::Nonce nonce{};
  nonce[1] = 0x77;
  const auto report =
      tee::make_report(platform_key, tee::measure_image(demo_image()), nonce);
  const auto quote = tee::make_quote(report, attestation_key);
  EXPECT_TRUE(tee::verify_quote(quote, attestation_key.n, attestation_key.e, platform_key,
                                nonce));
  tee::Quote bad = quote;
  bad.signature ^= 1;
  EXPECT_FALSE(tee::verify_quote(bad, attestation_key.n, attestation_key.e, platform_key,
                                 nonce));
}

TEST(Attestation, ForgedQuoteNeedsThePrivateKey) {
  hwsec::sim::Rng rng(43);
  const auto real_key = crypto::rsa_generate(rng);
  const auto attacker_key = crypto::rsa_generate(rng);
  const std::vector<std::uint8_t> platform_key(32, 0x44);
  tee::Nonce nonce{};
  const auto report =
      tee::make_report(platform_key, tee::measure_image(demo_image()), nonce);
  // Signed with the attacker's own key: must not verify against the real
  // public key. (The Foreshadow test shows what happens once the real
  // private key leaks.)
  const auto forged = tee::make_quote(report, attacker_key);
  EXPECT_FALSE(tee::verify_quote(forged, real_key.n, real_key.e, platform_key, nonce));
}

TEST(EnclaveInfo, StridedPhysicalLayout) {
  tee::EnclaveInfo info;
  info.base = 0x100000;
  info.pages = 3;
  info.stride_pages = 8;
  EXPECT_EQ(info.phys_of(0), 0x100000u);
  EXPECT_EQ(info.phys_of(100), 0x100064u);
  EXPECT_EQ(info.phys_of(hwsec::sim::kPageSize), 0x100000u + 8 * hwsec::sim::kPageSize);
  EXPECT_EQ(info.phys_of(2 * hwsec::sim::kPageSize + 4),
            0x100000u + 16 * hwsec::sim::kPageSize + 4);
}

class SecureBootTest : public ::testing::Test {
 protected:
  SecureBootTest() {
    hwsec::sim::Rng rng(4242);
    vendor_key_ = crypto::rsa_generate(rng);
    stages_ = {tee::make_signed_stage("monitor", {0x4D, 0x4F, 0x4E}, vendor_key_),
               tee::make_signed_stage("secure-os", {0x4F, 0x53, 0x21, 0x99}, vendor_key_),
               tee::make_signed_stage("ta-store", {0x54, 0x41}, vendor_key_)};
  }

  crypto::RsaKeyPair vendor_key_;
  std::vector<tee::BootStage> stages_;
};

TEST_F(SecureBootTest, IntactChainBootsAndYieldsMeasurements) {
  tee::SecureBootChain rom(vendor_key_.n, vendor_key_.e);
  const auto result = rom.boot(stages_);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.measurements.size(), 3u);
  EXPECT_NE(result.measurements[0], result.measurements[1]);
}

TEST_F(SecureBootTest, TamperedStageStopsTheBootExactlyThere) {
  tee::SecureBootChain rom(vendor_key_.n, vendor_key_.e);
  auto tampered = stages_;
  tampered[1].image[0] ^= 0x01;  // one flipped bit in the secure OS.
  const auto result = rom.boot(tampered);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_stage, 1u);
  EXPECT_EQ(result.measurements.size(), 1u) << "only the monitor was accepted";
}

TEST_F(SecureBootTest, WrongVendorKeyRejectedAtStageZero) {
  hwsec::sim::Rng rng(777);
  const auto attacker_key = crypto::rsa_generate(rng);
  auto resigned = stages_;
  resigned[0] = tee::make_signed_stage("monitor", {0x4D, 0x4F, 0x4E}, attacker_key);
  tee::SecureBootChain rom(vendor_key_.n, vendor_key_.e);
  const auto result = rom.boot(resigned);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_stage, 0u);
}

TEST_F(SecureBootTest, RenamedStageFailsEvenWithSameBytes) {
  // The name is part of the measured identity (anti-rollback/role-swap).
  tee::SecureBootChain rom(vendor_key_.n, vendor_key_.e);
  auto renamed = stages_;
  renamed[2].name = "ta-store-v0-rollback";
  const auto result = rom.boot(renamed);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_stage, 2u);
}

TEST(EnclaveError, AllValuesStringify) {
  for (int e = 0; e <= static_cast<int>(tee::EnclaveError::kVerificationFailed); ++e) {
    EXPECT_NE(tee::to_string(static_cast<tee::EnclaveError>(e)), "?");
  }
}

}  // namespace
