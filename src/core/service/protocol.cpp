#include "core/service/protocol.h"

namespace hwsec::core::service {

using shard::put_bytes;
using shard::put_u32;
using shard::put_u64;
using shard::Reader;

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

std::string encode_submitted(const SubmittedPayload& p) {
  std::string out;
  out.push_back(p.accepted ? 1 : 0);
  put_bytes(out, p.job_id);
  put_bytes(out, p.message);
  return out;
}

bool decode_submitted(const std::string& payload, SubmittedPayload& out) {
  Reader r(payload);
  std::uint8_t accepted = 0;
  if (!r.get_u8(accepted) || !r.get_bytes(out.job_id) || !r.get_bytes(out.message) ||
      !r.exhausted()) {
    return false;
  }
  out.accepted = accepted != 0;
  return true;
}

std::string encode_job_update(const JobUpdatePayload& p) {
  std::string out;
  put_bytes(out, p.job_id);
  out.push_back(static_cast<char>(p.state));
  put_u64(out, p.done);
  put_u64(out, p.total);
  return out;
}

bool decode_job_update(const std::string& payload, JobUpdatePayload& out) {
  Reader r(payload);
  std::uint8_t state = 0;
  if (!r.get_bytes(out.job_id) || !r.get_u8(state) || !r.get_u64(out.done) ||
      !r.get_u64(out.total) || !r.exhausted() || state > 3) {
    return false;
  }
  out.state = static_cast<JobState>(state);
  return true;
}

std::string encode_job_result(const JobResultPayload& p) {
  std::string out;
  put_bytes(out, p.job_id);
  out.push_back(static_cast<char>(p.state));
  put_u64(out, p.digest);
  put_bytes(out, p.records);
  put_bytes(out, p.error);
  return out;
}

bool decode_job_result(const std::string& payload, JobResultPayload& out) {
  Reader r(payload);
  std::uint8_t state = 0;
  if (!r.get_bytes(out.job_id) || !r.get_u8(state) || !r.get_u64(out.digest) ||
      !r.get_bytes(out.records) || !r.get_bytes(out.error) || !r.exhausted() || state > 3) {
    return false;
  }
  out.state = static_cast<JobState>(state);
  return true;
}

std::string encode_outcomes(const ServiceOutcomes& outcomes) {
  std::string out;
  put_u64(out, outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    put_u64(out, i);
    std::uint8_t flags = 0;
    if (o.ok()) flags |= 1;
    if (o.skipped) flags |= 2;
    out.push_back(static_cast<char>(flags));
    put_u32(out, o.attempts);
    if (o.ok()) {
      const ServiceTrialResult& r = *o.result;
      std::string payload(reinterpret_cast<const char*>(&r), sizeof(r));
      put_bytes(out, payload);
    } else {
      out.push_back(o.error.has_value() ? static_cast<char>(o.error->kind()) : 0);
      put_bytes(out, o.error.has_value() ? o.error->detail() : std::string());
      put_bytes(out, o.error.has_value() ? o.error->machine() : std::string());
    }
  }
  return out;
}

bool decode_outcomes(const std::string& blob, std::vector<OutcomeRecord>& out) {
  out.clear();
  Reader r(blob);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return false;
  }
  // Each record costs >= 13 bytes on the wire (index + flags + attempts),
  // so a count the blob cannot possibly hold is corruption — reject it
  // before reserve() turns it into a hundreds-of-GB allocation.
  if (count > (blob.size() - 8) / 13) {
    return false;
  }
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    OutcomeRecord rec;
    std::uint8_t flags = 0;
    if (!r.get_u64(rec.index) || !r.get_u8(flags) || !r.get_u32(rec.attempts)) {
      return false;
    }
    rec.ok = (flags & 1) != 0;
    rec.skipped = (flags & 2) != 0;
    if (rec.ok) {
      if (!r.get_bytes(rec.payload) || rec.payload.size() != sizeof(ServiceTrialResult)) {
        return false;
      }
    } else {
      if (!r.get_u8(rec.kind) || !r.get_bytes(rec.detail) || !r.get_bytes(rec.machine)) {
        return false;
      }
    }
    out.push_back(std::move(rec));
  }
  return r.exhausted();
}

std::uint64_t fnv1a64(std::string_view bytes) {
  return shard::fnv1a64(bytes);  // one hash definition for every wire digest.
}

}  // namespace hwsec::core::service
