#include "sim/mpu.h"

#include <algorithm>

#include "sim/sim_error.h"

namespace hwsec::sim {

std::size_t Mpu::add_region(MpuRegion region) {
  if (locked_) {
    throw SimError(ErrorKind::kConfigError, "MPU configuration is locked");
  }
  if (region.end <= region.start) {
    throw SimError(ErrorKind::kConfigError, "MPU region is empty");
  }
  if (region.code_gate_start.has_value() != region.code_gate_end.has_value()) {
    throw SimError(ErrorKind::kConfigError, "MPU code gate needs both bounds");
  }
  for (const MpuRegion& existing : regions_) {
    const bool overlap = region.start < existing.end && existing.start < region.end;
    if (overlap) {
      throw SimError(ErrorKind::kConfigError, "MPU regions must not overlap: " + region.name +
                                               " vs " + existing.name);
    }
  }
  regions_.push_back(std::move(region));
  return regions_.size() - 1;
}

void Mpu::clear() {
  if (locked_) {
    throw SimError(ErrorKind::kConfigError, "MPU configuration is locked");
  }
  regions_.clear();
}

bool Mpu::remove_region(const std::string& name) {
  if (locked_) {
    throw SimError(ErrorKind::kConfigError, "MPU configuration is locked");
  }
  const auto before = regions_.size();
  std::erase_if(regions_, [&name](const MpuRegion& r) { return r.name == name; });
  return regions_.size() != before;
}

void Mpu::reset() {
  locked_ = false;
  regions_.clear();
}

const MpuRegion* Mpu::region_of(PhysAddr addr) const {
  for (const MpuRegion& r : regions_) {
    if (r.contains(addr)) {
      return &r;
    }
  }
  return nullptr;
}

Fault Mpu::check(PhysAddr addr, AccessType type, PhysAddr pc) const {
  const MpuRegion* r = region_of(addr);
  if (r == nullptr) {
    return Fault::kNone;  // uncovered memory: flat default-allow map.
  }
  if (!r->gate_allows(pc)) {
    return Fault::kSecurityViolation;
  }
  switch (type) {
    case AccessType::kRead:
      return r->readable ? Fault::kNone : Fault::kProtection;
    case AccessType::kWrite:
      return r->writable ? Fault::kNone : Fault::kProtection;
    case AccessType::kExecute:
      return r->executable ? Fault::kNone : Fault::kProtection;
  }
  return Fault::kNone;
}

Fault Mpu::check_fetch(PhysAddr addr, PhysAddr from_pc) const {
  const MpuRegion* r = region_of(addr);
  if (r == nullptr) {
    return Fault::kNone;
  }
  if (!r->executable) {
    return Fault::kProtection;
  }
  // Entering a gated code region from outside: only at declared entry
  // points. Execution already inside the region may continue freely.
  const bool entering = !r->contains(from_pc);
  if (entering && !r->entry_points.empty()) {
    const bool legal = std::find(r->entry_points.begin(), r->entry_points.end(), addr) !=
                       r->entry_points.end();
    if (!legal) {
      return Fault::kSecurityViolation;
    }
  }
  return Fault::kNone;
}

}  // namespace hwsec::sim
