#include "conformance/env.h"

#include <stdexcept>

#include "sim/page_table.h"

namespace hwsec::conformance {

namespace sim = hwsec::sim;

namespace {

// Security domains, mirroring src/arch/domains.h without depending on the
// arch layer (conformance sits between sim and arch in the build).
constexpr sim::DomainId kNormalDomain = 0;
constexpr sim::DomainId kSecureWorldDomain = 1;
constexpr sim::DomainId kEnclaveDomain = 16;

// Fixed ASIDs for the two contexts. Distinct per domain so the ASID-tagged
// TLBs of the server/mobile profiles can never serve one domain's
// walk-check-approved translation to the other.
constexpr sim::Asid kNormalAsid = 10;
constexpr sim::Asid kEnclaveAsid = 20;

// Virtual layout for the MMU profiles. Everything lives in one 4 MiB L1
// region (one L2 table); kUnmappedLeaf has an L2 slot whose PTE is zero,
// kUnmappedL1 has no L1 entry at all — the two distinct not-present walks.
constexpr sim::VirtAddr kCodeBase = 0x0040'0000;
constexpr sim::VirtAddr kHaltStubBase = 0x0040'1000;
constexpr sim::VirtAddr kEnclaveCodeBase = 0x0040'2000;
constexpr sim::VirtAddr kDataBase = 0x0041'0000;  // 2 pages.
constexpr sim::VirtAddr kRoDataBase = 0x0041'2000;
constexpr sim::VirtAddr kSupervisorBase = 0x0041'3000;
constexpr sim::VirtAddr kNotPresentBase = 0x0041'4000;
constexpr sim::VirtAddr kSecretBase = 0x0041'5000;
constexpr sim::VirtAddr kUnmappedLeaf = 0x0070'0000;
constexpr sim::VirtAddr kUnmappedL1 = 0x0090'0000;

// Physical layout for the bare (embedded) profiles: VA == PA, 1 MiB DRAM.
constexpr sim::PhysAddr kBareCode = 0x0002'0000;
constexpr sim::PhysAddr kBareHaltStub = 0x0002'1000;
constexpr sim::PhysAddr kBareTrustlet = 0x0002'2000;
constexpr sim::PhysAddr kBareData = 0x0003'0000;  // 2 pages.
constexpr sim::PhysAddr kBareRoData = 0x0003'2000;
constexpr sim::PhysAddr kBareSecret = 0x0003'3000;
constexpr sim::PhysAddr kBareStorage = 0x0003'4000;  // TyTAN secure storage.
constexpr sim::PhysAddr kBareUncovered = 0x0008'0000;
constexpr sim::PhysAddr kBareOutOfDram = 0x0018'0000;  // > 1 MiB: bus error.

bool is_embedded(FuzzArch a) {
  return a == FuzzArch::kSmart || a == FuzzArch::kSancus || a == FuzzArch::kTrustLite ||
         a == FuzzArch::kTyTan;
}

// Deterministic fill patterns. Top bytes 0x0D/0x0E/0x0F can never collide
// with the 0xA5EC secret prefix.
sim::Word pattern_word(sim::PhysAddr addr, sim::Word tag) { return tag | (addr & 0x00FF'FFFFu); }

void fill_pattern(sim::PhysicalMemory& mem, sim::PhysAddr base, std::uint32_t bytes,
                  sim::Word tag) {
  for (std::uint32_t off = 0; off < bytes; off += 4) {
    mem.write32(base + off, pattern_word(base + off, tag));
  }
}

}  // namespace

std::string to_string(FuzzArch a) {
  switch (a) {
    case FuzzArch::kSgx: return "sgx";
    case FuzzArch::kSanctum: return "sanctum";
    case FuzzArch::kTrustZone: return "trustzone";
    case FuzzArch::kSanctuary: return "sanctuary";
    case FuzzArch::kSmart: return "smart";
    case FuzzArch::kSancus: return "sancus";
    case FuzzArch::kTrustLite: return "trustlite";
    case FuzzArch::kTyTan: return "tytan";
  }
  return "?";
}

FuzzArch fuzz_arch_from_string(const std::string& name) {
  for (FuzzArch a : kAllFuzzArchs) {
    if (to_string(a) == name) {
      return a;
    }
  }
  throw std::invalid_argument("unknown fuzz architecture: " + name);
}

sim::Word mee_word(sim::PhysAddr addr, sim::Word value) {
  // splitmix64-style keystream of the word address; involutory via XOR.
  std::uint64_t z = (static_cast<std::uint64_t>(addr & ~3u) + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return value ^ static_cast<sim::Word>(z ^ (z >> 31));
}

sim::MachineProfile fuzz_machine_profile(FuzzArch arch) {
  sim::MachineProfile p;
  switch (arch) {
    case FuzzArch::kSgx:
    case FuzzArch::kSanctum:
      p = sim::MachineProfile::server();
      p.dram_bytes = 2u << 20;  // the conformance layout needs ~30 pages.
      break;
    case FuzzArch::kTrustZone:
    case FuzzArch::kSanctuary:
      p = sim::MachineProfile::mobile();
      p.dram_bytes = 2u << 20;
      break;
    case FuzzArch::kSmart:
    case FuzzArch::kSancus:
    case FuzzArch::kTrustLite:
    case FuzzArch::kTyTan:
      p = sim::MachineProfile::embedded();
      break;
  }
  p.name = "fuzz-" + to_string(arch);  // distinct pool key per arch.
  return p;
}

EnvSpec make_env_spec(FuzzArch arch) {
  EnvSpec spec;
  spec.arch = arch;
  spec.has_mmu = !is_embedded(arch);
  spec.normal = {kNormalDomain, sim::Privilege::kUser, kNormalAsid};
  const sim::DomainId owner =
      arch == FuzzArch::kTrustZone ? kSecureWorldDomain : kEnclaveDomain;
  spec.enclave = {owner, sim::Privilege::kUser, kEnclaveAsid};

  for (std::size_t i = 0; i < 8; ++i) {
    spec.secret_words.push_back(0xA5EC'0000u | static_cast<sim::Word>(i * 0x0101u));
  }

  if (spec.has_mmu) {
    spec.code_base = kCodeBase;
    spec.halt_stub = kHaltStubBase;
    spec.enclave_code = kEnclaveCodeBase;
    spec.enclave_entry = kEnclaveCodeBase;
    spec.data_base = kDataBase;
    spec.rodata_base = kRoDataBase;
    spec.supervisor_base = kSupervisorBase;
    spec.not_present_base = kNotPresentBase;
    spec.secret_base = kSecretBase;
    spec.protect_point = (arch == FuzzArch::kSgx || arch == FuzzArch::kSanctum)
                             ? ProtectPoint::kWalkCheck
                             : ProtectPoint::kBus;
    // Physical enforcement data, computed from the machine's deterministic
    // bump allocator (first frame at 0x10000): root, code, halt, enclave
    // code, 2 data, rodata, supervisor, not-present, secret — install_env
    // allocates in exactly this order and cross-checks against these.
    constexpr sim::PhysAddr kFrameBase = 0x0001'0000;
    spec.page_root = kFrameBase;
    const sim::PhysAddr encl_f = kFrameBase + 3 * sim::kPageSize;
    const sim::PhysAddr secret_f = kFrameBase + 9 * sim::kPageSize;
    spec.protected_ranges = {{encl_f, encl_f + sim::kPageSize, owner},
                             {secret_f, secret_f + sim::kPageSize, owner}};
    if (arch == FuzzArch::kSgx) {
      spec.mee_start = secret_f;
      spec.mee_end = secret_f + sim::kPageSize;
    }
    spec.measured_start = secret_f;
    spec.measured_end = secret_f + sim::kPageSize;
    spec.address_pool = {
        {kDataBase, 6},        {kDataBase + sim::kPageSize, 3},
        {kRoDataBase, 3},      {kSecretBase, 4},
        {kSupervisorBase, 3},  {kNotPresentBase, 3},
        {kUnmappedLeaf, 2},    {kUnmappedL1, 1},
        {kCodeBase, 2},        {kEnclaveCodeBase, 2},
    };
  } else {
    spec.code_base = kBareCode;
    spec.halt_stub = kBareHaltStub;
    spec.enclave_code = kBareTrustlet;
    spec.enclave_entry = kBareTrustlet;
    spec.data_base = kBareData;
    spec.rodata_base = kBareRoData;
    spec.secret_base = kBareSecret;
    spec.protect_point = ProtectPoint::kMpu;
    spec.address_pool = {
        {kBareData, 6},     {kBareData + sim::kPageSize, 3},
        {kBareRoData, 3},   {kBareSecret, 4},
        {kBareUncovered, 2},{kBareOutOfDram, 2},
        {kBareCode, 2},     {kBareTrustlet, 2},
    };

    // EA-MPU regions. The trustlet's code region accepts entry only at its
    // first instruction (SMART's "attestation code entered at its start"),
    // and the secret region is code-gated on the trustlet.
    sim::MpuRegion rodata;
    rodata.name = "rodata";
    rodata.start = kBareRoData;
    rodata.end = kBareRoData + sim::kPageSize;
    rodata.writable = false;
    rodata.executable = false;
    sim::MpuRegion trustlet;
    trustlet.name = "trustlet-code";
    trustlet.start = kBareTrustlet;
    trustlet.end = kBareTrustlet + sim::kPageSize;
    trustlet.writable = false;
    trustlet.entry_points = {kBareTrustlet};
    sim::MpuRegion secret;
    secret.name = "trustlet-secret";
    secret.start = kBareSecret;
    secret.end = kBareSecret + sim::kPageSize;
    secret.writable = arch != FuzzArch::kSmart;  // SMART: RO key.
    secret.executable = false;
    secret.code_gate_start = kBareTrustlet;
    secret.code_gate_end = kBareTrustlet + sim::kPageSize;
    spec.mpu_regions = {rodata, trustlet, secret};
    if (arch == FuzzArch::kTyTan) {
      sim::MpuRegion storage;
      storage.name = "secure-storage";
      storage.start = kBareStorage;
      storage.end = kBareStorage + sim::kPageSize;
      storage.executable = false;
      storage.code_gate_start = kBareTrustlet;
      storage.code_gate_end = kBareTrustlet + sim::kPageSize;
      spec.mpu_regions.push_back(storage);
      spec.address_pool.push_back({kBareStorage, 2});
    }
    spec.lock_mpu = arch == FuzzArch::kTrustLite || arch == FuzzArch::kTyTan;
    spec.protected_ranges = {{kBareSecret, kBareSecret + sim::kPageSize, owner}};
    spec.measured_start = kBareSecret;
    spec.measured_end = kBareSecret + sim::kPageSize;
  }
  return spec;
}

sim::PhysAddr install_env(sim::Machine& machine, const EnvSpec& spec_in, MachineRunLog& log,
                          BugInjection inject) {
  const EnvSpec& spec = spec_in;
  sim::PhysicalMemory& mem = machine.memory();
  sim::Cpu& cpu = machine.cpu(0);

  const bool enforce = inject == BugInjection::kNone;
  sim::PhysAddr root = 0;  // page-table root (0 for bare profiles).

  if (spec.has_mmu) {
    // Deterministic frame layout: root, L2 table, then payload frames in a
    // fixed order. resolve_env() mirrors this arithmetic.
    sim::AddressSpace as = machine.create_address_space();
    root = as.root();
    if (root != spec.page_root) {
      throw std::logic_error("install_env: page-table root does not match the spec");
    }
    const sim::PhysAddr code_f = machine.alloc_frame();
    const sim::PhysAddr halt_f = machine.alloc_frame();
    const sim::PhysAddr encl_f = machine.alloc_frame();
    const sim::PhysAddr data_f = machine.alloc_frames(2);
    const sim::PhysAddr ro_f = machine.alloc_frame();
    const sim::PhysAddr sup_f = machine.alloc_frame();
    const sim::PhysAddr np_f = machine.alloc_frame();
    const sim::PhysAddr secret_f = machine.alloc_frame();

    using namespace sim::pte;
    as.map(spec.code_base, code_f, kUser | kExecutable);
    as.map(spec.halt_stub, halt_f, kUser | kExecutable);
    as.map(spec.enclave_code, encl_f, kUser | kExecutable);
    as.map(spec.data_base, data_f, kUser | kWritable);
    as.map(spec.data_base + sim::kPageSize, data_f + sim::kPageSize, kUser | kWritable);
    as.map(spec.rodata_base, ro_f, kUser);
    as.map(spec.supervisor_base, sup_f, kWritable);  // no U: the Meltdown target.
    as.map(spec.not_present_base, np_f, kUser | kWritable);
    as.clear_present(spec.not_present_base);  // the L1TF target.
    as.map(spec.secret_base, secret_f, kUser | kWritable);

    fill_pattern(mem, data_f, 2 * sim::kPageSize, 0x0D00'0000u);
    fill_pattern(mem, ro_f, sim::kPageSize, 0x0E00'0000u);
    fill_pattern(mem, sup_f, sim::kPageSize, 0x0F00'0000u);

    // make_env_spec predicted this frame layout from the bump-allocator
    // arithmetic; if the two ever drift the whole differential is built on
    // sand, so fail loudly.
    if (spec.protected_ranges.size() != 2 || spec.protected_ranges.front().start != encl_f ||
        spec.protected_ranges.back().start != secret_f) {
      throw std::logic_error("install_env: spec physical layout does not match the machine");
    }

    // Secret, encrypted when the architecture has an MEE.
    for (std::size_t i = 0; i < spec.secret_words.size(); ++i) {
      const sim::PhysAddr at = secret_f + static_cast<sim::PhysAddr>(4 * i);
      const sim::Word plain = inject == BugInjection::kSilentZero ? 0 : spec.secret_words[i];
      mem.write32(at, spec.in_mee(at) ? mee_word(at, plain) : plain);
    }

    if (spec.mee_end != 0) {
      machine.bus().set_transform(
          [start = spec.mee_start, end = spec.mee_end](sim::PhysAddr addr, sim::Word value,
                                                       sim::DomainId, bool) {
            return (addr >= start && addr < end) ? mee_word(addr, value) : value;
          });
    }

    if (enforce) {
      if (spec.protect_point == ProtectPoint::kWalkCheck) {
        for (std::uint32_t c = 0; c < machine.num_cores(); ++c) {
          machine.cpu(static_cast<sim::CoreId>(c))
              .mmu()
              .set_walk_check([ranges = spec.protected_ranges](
                                  sim::VirtAddr, const sim::Translation& t, sim::AccessType,
                                  sim::Privilege, sim::DomainId domain) {
                for (const ProtectedRange& r : ranges) {
                  if (r.contains(t.phys) && domain != r.owner) {
                    return sim::Fault::kSecurityViolation;
                  }
                }
                return sim::Fault::kNone;
              });
        }
        // Sanctum pairs the walker invariants with a DMA range filter.
        if (spec.arch == FuzzArch::kSanctum) {
          machine.bus().add_check([ranges = spec.protected_ranges](
                                      sim::PhysAddr addr, sim::AccessType, sim::DomainId domain,
                                      sim::Privilege, bool is_dma) {
            if (!is_dma) {
              return sim::Fault::kNone;
            }
            for (const ProtectedRange& r : ranges) {
              if (r.contains(addr) && domain != r.owner) {
                return sim::Fault::kBusError;
              }
            }
            return sim::Fault::kNone;
          });
        }
      } else {  // ProtectPoint::kBus: TZASC-style firewall, CPU and DMA alike.
        machine.bus().add_check([ranges = spec.protected_ranges](
                                    sim::PhysAddr addr, sim::AccessType, sim::DomainId domain,
                                    sim::Privilege, bool) {
          for (const ProtectedRange& r : ranges) {
            if (r.contains(addr) && domain != r.owner) {
              return sim::Fault::kSecurityViolation;
            }
          }
          return sim::Fault::kNone;
        });
      }
    }
  } else {
    // Bare profile: fixed physical layout, MPU enforcement.
    fill_pattern(mem, spec.data_base, 2 * sim::kPageSize, 0x0D00'0000u);
    fill_pattern(mem, spec.rodata_base, sim::kPageSize, 0x0E00'0000u);
    for (std::size_t i = 0; i < spec.secret_words.size(); ++i) {
      mem.write32(spec.secret_base + static_cast<sim::PhysAddr>(4 * i),
                  inject == BugInjection::kSilentZero ? 0 : spec.secret_words[i]);
    }
    for (const sim::MpuRegion& region : spec.mpu_regions) {
      sim::MpuRegion r = region;
      if (!enforce && r.name == "trustlet-secret") {
        // The injected bug: the secret region loses its code gate (and, for
        // the silent-zero variant, the key bytes were zeroed above).
        r.code_gate_start.reset();
        r.code_gate_end.reset();
        r.writable = true;
      }
      machine.mpu().add_region(std::move(r));
    }
    if (spec.lock_mpu) {
      machine.mpu().lock();
    }
  }

  // Halt stub: the fault handler's recovery vector.
  sim::Program stub;
  stub.base = spec.halt_stub;
  stub.code.push_back(sim::Instruction{.op = sim::Opcode::kHalt});
  cpu.load_program(stub);

  // OS / monitor / SDK model: the four conformance services.
  cpu.set_ecall_handler([spec_normal = spec.normal, spec_enclave = spec.enclave, root,
                         entry = spec.enclave_entry](sim::Cpu& c, sim::Word service) {
    switch (service) {
      case kSvcEnterEnclave:
        c.set_reg(sim::R14, c.pc());  // pc is already the ecall's pc + 4.
        c.switch_context(spec_enclave.domain, spec_enclave.priv, root, spec_enclave.asid);
        c.set_pc(entry);
        break;
      case kSvcExitEnclave:
        c.switch_context(spec_normal.domain, spec_normal.priv, root, spec_normal.asid);
        c.set_pc(c.reg(sim::R14));
        break;
      case kSvcSupervisor:
        c.switch_context(spec_normal.domain, sim::Privilege::kSupervisor, root,
                         spec_normal.asid);
        break;
      case kSvcUser:
        c.switch_context(spec_normal.domain, sim::Privilege::kUser, root, spec_normal.asid);
        break;
      default:
        break;  // unknown service: no-op, continue at pc + 4.
    }
  });

  cpu.set_fault_handler([log_ptr = &log, halt = spec.halt_stub](sim::Cpu& c,
                                                                const sim::FaultInfo& info) {
    log_ptr->faults.push_back({info.fault, info.pc, info.addr, info.type});
    if (info.type == sim::AccessType::kExecute || log_ptr->faults.size() >= kFaultBudget) {
      c.set_pc(halt);
      return sim::FaultAction::kRedirect;
    }
    return sim::FaultAction::kSkip;
  });

  cpu.set_leak_hook(
      [log_ptr = &log](sim::Word value) { log_ptr->leak_hash = leak_mix(log_ptr->leak_hash, value); });

  cpu.switch_context(spec.normal.domain, spec.normal.priv, root, spec.normal.asid);

  return spec.has_mmu ? spec.protected_ranges.back().start : spec.secret_base;
}

}  // namespace hwsec::conformance
