#include "sim/mmu.h"

namespace hwsec::sim {

Mmu::Mmu(PhysicalMemory& mem, TlbConfig tlb_config) : mem_(&mem), tlb_(tlb_config) {}

void Mmu::set_context(PhysAddr root, Asid asid, DomainId domain, Privilege priv) {
  root_ = root;
  asid_ = asid;
  domain_ = domain;
  priv_ = priv;
  if (!tlb_.config().asid_tagged) {
    tlb_.flush();
  }
}

Fault Mmu::check_flags(Word flags, AccessType type, Privilege priv) const {
  if (!(flags & pte::kPresent) || (flags & pte::kReserved)) {
    return Fault::kPageNotPresent;
  }
  if (priv == Privilege::kUser && !(flags & pte::kUser)) {
    return Fault::kProtection;
  }
  switch (type) {
    case AccessType::kWrite:
      if (!(flags & pte::kWritable)) {
        return Fault::kProtection;
      }
      break;
    case AccessType::kExecute:
      if (!(flags & pte::kExecutable)) {
        return Fault::kProtection;
      }
      break;
    case AccessType::kRead:
      break;
  }
  return Fault::kNone;
}

TranslateResult Mmu::translate(VirtAddr va, AccessType type) {
  return translate_as(va, type, priv_);
}

TranslateResult Mmu::translate_as(VirtAddr va, AccessType type, Privilege priv) {
  TranslateResult result;
  if (bare_) {
    result.phys = va;
    result.pte_flags = pte::kPresent | pte::kWritable | pte::kUser | pte::kExecutable;
    return result;
  }

  if (auto entry = tlb_.lookup(va, asid_)) {
    result.latency += tlb_.config().hit_latency;
    result.fault = check_flags(entry->flags, type, priv);
    result.pte_flags = entry->flags;
    result.phys = (entry->pfn << kPageShift) | (va & kPageOffsetMask);
    if (result.fault == Fault::kPageNotPresent) {
      result.l1tf_phys = result.phys;
      result.phys = 0;
    }
    // On a plain protection fault the translation itself succeeded; the
    // physical address stays visible in the result. That is the hardware
    // behaviour Meltdown exploits: the permission check is resolved after
    // the address is already known to the pipeline.
    return result;
  }

  // TLB miss: hardware page walk.
  result.latency += tlb_.config().walk_latency;
  ++walks_;
  const auto walked = walk(*mem_, root_, va);
  if (!walked.has_value()) {
    result.fault = Fault::kPageNotPresent;  // no leaf PTE at all: no L1TF candidate.
    return result;
  }

  result.pte_flags = walked->flags;
  result.fault = check_flags(walked->flags, type, priv);
  if (result.fault == Fault::kPageNotPresent) {
    // Terminal fault: expose the stale frame bits for the L1TF model, but
    // architecturally the translation failed.
    result.l1tf_phys = walked->phys;
    return result;
  }
  if (result.fault != Fault::kNone) {
    // Protection fault: translation succeeded, access denied — keep the
    // physical address visible (the Meltdown fault-forwarding condition).
    result.phys = walked->phys;
    return result;
  }

  if (walk_check_) {
    const Fault f = walk_check_(va, *walked, type, priv, domain_);
    if (f != Fault::kNone) {
      result.fault = f;
      return result;
    }
  }

  tlb_.insert(va, walked->phys, walked->flags, asid_);
  result.phys = walked->phys;
  return result;
}

}  // namespace hwsec::sim
