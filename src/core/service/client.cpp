#include "core/service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hwsec::core::service {

ServiceClient::ServiceClient(ClientConfig config) : config_(std::move(config)) {}

ServiceClient::~ServiceClient() { disconnect(); }

void ServiceClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ServiceClient::dial(std::string& error) {
  disconnect();
  if (!config_.unix_socket.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_socket.size() >= sizeof(addr.sun_path)) {
      error = "unix socket path too long: " + config_.unix_socket;
      return false;
    }
    std::memcpy(addr.sun_path, config_.unix_socket.c_str(), config_.unix_socket.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      error = "connect(" + config_.unix_socket + "): " + std::strerror(errno);
      disconnect();
      return false;
    }
    return true;
  }
  if (config_.tcp_port != 0) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.tcp_port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      error = "connect(127.0.0.1:" + std::to_string(config_.tcp_port) +
              "): " + std::strerror(errno);
      disconnect();
      return false;
    }
    return true;
  }
  error = "no endpoint configured (need a unix socket path or a tcp port)";
  return false;
}

bool ServiceClient::send_frame(shard::FrameType type, const std::string& payload,
                               std::string& error) {
  shard::Frame frame;
  frame.type = type;
  frame.payload = payload;
  if (!shard::write_frame(fd_, frame)) {
    error = "daemon connection lost while sending";
    disconnect();
    return false;
  }
  return true;
}

bool ServiceClient::recv_frame(shard::Frame& frame, std::string& error) {
  if (config_.recv_timeout.count() > 0) {
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int rc;
    do {
      rc = ::poll(&pfd, 1, static_cast<int>(config_.recv_timeout.count()));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      error = "timed out waiting for the daemon";
      disconnect();
      return false;
    }
    if (rc < 0) {
      error = std::string("poll: ") + std::strerror(errno);
      disconnect();
      return false;
    }
  }
  if (!shard::read_frame(fd_, frame)) {
    error = "daemon connection lost";
    disconnect();
    return false;
  }
  return true;
}

bool ServiceClient::open_subscription(shard::FrameType type, const std::string& payload,
                                      SubmittedPayload& ack, std::string& error) {
  shard::SigpipeIgnore sigpipe;
  if (!dial(error) || !send_frame(type, payload, error)) {
    return false;
  }
  shard::Frame frame;
  if (!recv_frame(frame, error)) {
    return false;
  }
  if (frame.type == shard::FrameType::kServiceError) {
    // Request-level failure (e.g. unknown job id): surface it as a
    // rejection, the transport itself worked.
    ack.accepted = false;
    ack.message = frame.payload;
    disconnect();
    return true;
  }
  if (frame.type != shard::FrameType::kSubmitted ||
      !decode_submitted(frame.payload, ack)) {
    error = "unexpected reply frame from daemon";
    disconnect();
    return false;
  }
  if (!ack.accepted) {
    disconnect();
  }
  return true;
}

bool ServiceClient::submit(const std::string& spec_json, SubmittedPayload& ack,
                           std::string& error) {
  return open_subscription(shard::FrameType::kSubmit, spec_json, ack, error);
}

bool ServiceClient::attach(const std::string& job_id, SubmittedPayload& ack,
                           std::string& error) {
  return open_subscription(shard::FrameType::kAttach, job_id, ack, error);
}

bool ServiceClient::wait_result(JobResultPayload& result, std::string& error,
                                const std::function<void(const JobUpdatePayload&)>& on_update) {
  if (fd_ < 0) {
    error = "no open subscription (submit or attach first)";
    return false;
  }
  shard::SigpipeIgnore sigpipe;
  while (true) {
    shard::Frame frame;
    if (!recv_frame(frame, error)) {
      return false;
    }
    if (frame.type == shard::FrameType::kJobUpdate) {
      JobUpdatePayload update;
      if (!decode_job_update(frame.payload, update)) {
        error = "malformed progress frame";
        disconnect();
        return false;
      }
      if (on_update) on_update(update);
      continue;
    }
    if (frame.type == shard::FrameType::kJobResult) {
      if (!decode_job_result(frame.payload, result)) {
        error = "malformed result frame";
        disconnect();
        return false;
      }
      disconnect();
      return true;
    }
    error = "unexpected frame type " + std::to_string(static_cast<unsigned>(frame.type)) +
            " on subscription";
    disconnect();
    return false;
  }
}

bool ServiceClient::status(std::string& json_out, std::string& error) {
  shard::SigpipeIgnore sigpipe;
  if (!dial(error) || !send_frame(shard::FrameType::kStatusRequest, std::string(), error)) {
    return false;
  }
  shard::Frame frame;
  if (!recv_frame(frame, error)) {
    return false;
  }
  disconnect();
  if (frame.type != shard::FrameType::kStatusReply) {
    error = "unexpected reply frame from daemon";
    return false;
  }
  json_out = frame.payload;
  return true;
}

bool ServiceClient::stop_daemon(std::string& error) {
  shard::SigpipeIgnore sigpipe;
  if (!dial(error) || !send_frame(shard::FrameType::kStopDaemon, std::string(), error)) {
    return false;
  }
  shard::Frame frame;
  if (!recv_frame(frame, error)) {
    return false;
  }
  disconnect();
  SubmittedPayload ack;
  if (frame.type != shard::FrameType::kSubmitted || !decode_submitted(frame.payload, ack) ||
      !ack.accepted) {
    error = "daemon refused the stop request";
    return false;
  }
  return true;
}

}  // namespace hwsec::core::service
