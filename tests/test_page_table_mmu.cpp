// Page tables in simulated DRAM + MMU translation, permission checks,
// walk-check hooks and the L1TF-relevant fault reporting.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/mmu.h"

namespace sim = hwsec::sim;

namespace {

class MmuTest : public ::testing::Test {
 protected:
  MmuTest()
      : machine_(sim::MachineProfile::server(), 3),
        aspace_(machine_.create_address_space()),
        mmu_(machine_.cpu(0).mmu()) {
    mmu_.set_context(aspace_.root(), 1, sim::kDomainNormal, sim::Privilege::kUser);
  }

  sim::Machine machine_;
  sim::AddressSpace aspace_;
  sim::Mmu& mmu_;
};

TEST_F(MmuTest, BasicTranslation) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser | sim::pte::kWritable);
  const auto r = mmu_.translate(0x40000123, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kNone);
  EXPECT_EQ(r.phys, frame + 0x123);
}

TEST_F(MmuTest, UnmappedFaults) {
  const auto r = mmu_.translate(0x50000000, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kPageNotPresent);
  EXPECT_FALSE(r.l1tf_phys.has_value()) << "no leaf PTE => no stale frame bits";
}

TEST_F(MmuTest, UserCannotReachSupervisorPage) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kWritable);  // no kUser.
  const auto r = mmu_.translate(0x40000000, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kProtection);
  // Meltdown precondition: the physical address is still resolved.
  EXPECT_EQ(r.phys, frame);
}

TEST_F(MmuTest, WriteToReadOnlyFaults) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kRead).fault, sim::Fault::kNone);
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kWrite).fault, sim::Fault::kProtection);
}

TEST_F(MmuTest, ExecuteRequiresExecutableBit) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kExecute).fault,
            sim::Fault::kProtection);
  aspace_.map(0x40000000, frame, sim::pte::kUser | sim::pte::kExecutable);
  mmu_.tlb().flush();
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kExecute).fault, sim::Fault::kNone);
}

TEST_F(MmuTest, ClearedPresentBitExposesStaleFrameBits) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  aspace_.clear_present(0x40000000);
  const auto r = mmu_.translate(0x40000777, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kPageNotPresent);
  ASSERT_TRUE(r.l1tf_phys.has_value());
  EXPECT_EQ(*r.l1tf_phys, frame + 0x777) << "the L1TF candidate address";
}

TEST_F(MmuTest, ReservedBitBehavesLikeTerminalFault) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  aspace_.set_reserved(0x40000000);
  const auto r = mmu_.translate(0x40000000, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kPageNotPresent);
  ASSERT_TRUE(r.l1tf_phys.has_value());
}

TEST_F(MmuTest, RestorePresentUndoesAdversarialEdit) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  aspace_.clear_present(0x40000000);
  aspace_.restore_present(0x40000000);
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kRead).fault, sim::Fault::kNone);
}

TEST_F(MmuTest, WalkCheckVetoesTranslation) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser | sim::pte::kWritable);
  mmu_.set_walk_check([frame](sim::VirtAddr, const sim::Translation& t, sim::AccessType,
                              sim::Privilege, sim::DomainId) {
    return sim::page_base(t.phys) == frame ? sim::Fault::kSecurityViolation : sim::Fault::kNone;
  });
  const auto r = mmu_.translate(0x40000000, sim::AccessType::kRead);
  EXPECT_EQ(r.fault, sim::Fault::kSecurityViolation);
  // The veto must also have kept the TLB clean.
  EXPECT_FALSE(mmu_.tlb().present(0x40000000, 1));
}

TEST_F(MmuTest, TlbCachesTranslationsAndCountsWalks) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  const auto miss = mmu_.translate(0x40000000, sim::AccessType::kRead);
  const std::uint64_t walks = mmu_.walks();
  const auto hit = mmu_.translate(0x40000000, sim::AccessType::kRead);
  EXPECT_EQ(mmu_.walks(), walks) << "second translation must be a TLB hit";
  EXPECT_LT(hit.latency, miss.latency);
}

TEST_F(MmuTest, BareModeIsIdentity) {
  mmu_.set_bare_mode(true);
  const auto r = mmu_.translate(0x1234, sim::AccessType::kWrite);
  EXPECT_EQ(r.fault, sim::Fault::kNone);
  EXPECT_EQ(r.phys, 0x1234u);
}

TEST_F(MmuTest, UnmapRemovesLeaf) {
  const sim::PhysAddr frame = machine_.alloc_frame();
  aspace_.map(0x40000000, frame, sim::pte::kUser);
  aspace_.unmap(0x40000000);
  mmu_.tlb().flush();
  EXPECT_EQ(mmu_.translate(0x40000000, sim::AccessType::kRead).fault,
            sim::Fault::kPageNotPresent);
}

TEST(PageTable, TwoLevelStructureSharesL2Tables) {
  sim::Machine machine(sim::MachineProfile::server(), 4);
  auto aspace = machine.create_address_space();
  const sim::PhysAddr f1 = machine.alloc_frame();
  const sim::PhysAddr f2 = machine.alloc_frame();
  // Same 4 MiB region: one L2 table; different regions: two.
  aspace.map(0x40000000, f1, sim::pte::kUser);
  aspace.map(0x40001000, f2, sim::pte::kUser);
  const auto w1 = walk(machine.memory(), aspace.root(), 0x40000000);
  const auto w2 = walk(machine.memory(), aspace.root(), 0x40001000);
  ASSERT_TRUE(w1.has_value());
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(sim::page_base(w1->pte_addr), sim::page_base(w2->pte_addr));
  EXPECT_EQ(w1->phys, f1);
  EXPECT_EQ(w2->phys, f2);
}

}  // namespace
