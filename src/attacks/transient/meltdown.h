// Meltdown (paper §4.2, [29]): a user process reads kernel memory by
// exploiting the window between a faulting load and the fault's
// architectural delivery at retirement.
//
// The attack program (built in simulator ISA and executed on the
// speculative core):
//
//     lb   r3, [r1]        ; kernel address — faults, but on vulnerable
//                          ; silicon the loaded value is forwarded to
//                          ; the transient window first
//     shl  r3, r3, 6       ; byte -> probe line offset
//     add  r3, r2, r3
//     lb   r4, [r3]        ; heats probe[byte] — the persistent side effect
//
// The fault handler (the attacker's signal handler) redirects execution
// past the sequence; the probe array is then decoded by reload timing.
// On mitigated silicon (meltdown_fault_forwarding == false) the transient
// window receives nothing and the probe stays cold.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attacks/transient/environment.h"

namespace hwsec::attacks {

class MeltdownAttack {
 public:
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
  };

  MeltdownAttack(hwsec::sim::Machine& machine, hwsec::sim::CoreId core = 0);

  /// Maps a supervisor-only page at kKernelBase carrying `secret` and
  /// returns its virtual address (the experiment's victim setup: any
  /// kernel data works the same way).
  hwsec::sim::VirtAddr plant_kernel_secret(const std::string& secret);

  /// Leaks one byte from a kernel virtual address; nullopt when the
  /// transmission failed (mitigated hardware, or noise).
  std::optional<std::uint8_t> leak_byte(hwsec::sim::VirtAddr kernel_va);

  /// Leaks `len` bytes with `retries` attempts each; unrecovered bytes
  /// come back as '?'.
  std::string leak_string(hwsec::sim::VirtAddr kernel_va, std::size_t len,
                          std::uint32_t retries = 3);

  const Stats& stats() const { return stats_; }
  UserProcess& process() { return process_; }

 private:
  UserProcess process_;
  hwsec::sim::VirtAddr entry_ = 0;
  hwsec::sim::VirtAddr done_ = 0;
  Stats stats_;
};

}  // namespace hwsec::attacks
