#include "sim/types.h"

namespace hwsec::sim {

std::string to_string(AccessType t) {
  switch (t) {
    case AccessType::kRead: return "read";
    case AccessType::kWrite: return "write";
    case AccessType::kExecute: return "execute";
  }
  return "?";
}

std::string to_string(Fault f) {
  switch (f) {
    case Fault::kNone: return "none";
    case Fault::kPageNotPresent: return "page-not-present";
    case Fault::kProtection: return "protection";
    case Fault::kSecurityViolation: return "security-violation";
    case Fault::kBusError: return "bus-error";
    case Fault::kAlignment: return "alignment";
  }
  return "?";
}

std::string to_string(Privilege p) {
  switch (p) {
    case Privilege::kUser: return "U";
    case Privilege::kSupervisor: return "S";
    case Privilege::kMachine: return "M";
  }
  return "?";
}

}  // namespace hwsec::sim
