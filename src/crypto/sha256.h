// SHA-256 (FIPS 180-4).
//
// Used as the measurement function for enclave attestation (SGX's
// MRENCLAVE analogue, Sanctum's measurement, SMART/TrustLite report
// hashes) and as the compression function under HMAC.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hwsec::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Streaming interface.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s);
  Sha256Digest finalize();

  /// One-shot helpers.
  static Sha256Digest hash(std::span<const std::uint8_t> data);
  static Sha256Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// Hex string of a digest (diagnostics, attestation logs).
std::string to_hex(const Sha256Digest& d);

}  // namespace hwsec::crypto
