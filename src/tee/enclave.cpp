#include "tee/enclave.h"

namespace hwsec::tee {

hwsec::crypto::Sha256Digest measure_image(const EnclaveImage& image) {
  hwsec::crypto::Sha256 h;
  h.update(image.name);
  h.update(image.code);
  const std::uint8_t pages[1] = {static_cast<std::uint8_t>(image.heap_pages)};
  h.update(std::span<const std::uint8_t>(pages, 1));
  return h.finalize();
}

std::string to_string(EnclaveError e) {
  switch (e) {
    case EnclaveError::kOk: return "ok";
    case EnclaveError::kUnsupported: return "unsupported";
    case EnclaveError::kCapacityExceeded: return "capacity-exceeded";
    case EnclaveError::kOutOfMemory: return "out-of-memory";
    case EnclaveError::kNoSuchEnclave: return "no-such-enclave";
    case EnclaveError::kNotInitialized: return "not-initialized";
    case EnclaveError::kConfigLocked: return "config-locked";
    case EnclaveError::kVerificationFailed: return "verification-failed";
  }
  return "?";
}

}  // namespace hwsec::tee
