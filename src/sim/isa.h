// Instruction set of the simulated machine.
//
// A small 32-bit RISC: 16 general-purpose registers (r0 hardwired to
// zero), load/store, ALU ops, predicted conditional branches, predicted
// indirect jumps/calls/returns, a serializing fence, CLFLUSH, a cycle
// counter read, and an environment call.
//
// Instructions are kept in decoded form (one struct per instruction); the
// program counter still advances through the virtual address space in
// 4-byte steps and instruction *fetches* go through the MMU/MPU and the
// L1I, so fetch-side permissions and timing are faithful even though no
// binary encoding exists.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.h"

namespace hwsec::sim {

/// Register names. kZero reads as 0 and ignores writes.
enum Reg : std::uint8_t {
  R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14, R15,
};
inline constexpr Reg kZero = R0;
inline constexpr Reg kLink = R15;  ///< link register written by CALL.
inline constexpr std::uint32_t kNumRegs = 16;

enum class Opcode : std::uint8_t {
  kNop,
  kHalt,      ///< stop the hart; run() returns.
  kLoadImm,   ///< rd = imm
  kAdd,       ///< rd = rs1 + rs2
  kSub,       ///< rd = rs1 - rs2
  kAnd,       ///< rd = rs1 & rs2
  kOr,        ///< rd = rs1 | rs2
  kXor,       ///< rd = rs1 ^ rs2
  kShl,       ///< rd = rs1 << (rs2 & 31)
  kShr,       ///< rd = rs1 >> (rs2 & 31)  (logical)
  kMul,       ///< rd = low32(rs1 * rs2)
  kAddImm,    ///< rd = rs1 + imm
  kAndImm,    ///< rd = rs1 & imm
  kXorImm,    ///< rd = rs1 ^ imm
  kShlImm,    ///< rd = rs1 << imm
  kShrImm,    ///< rd = rs1 >> imm
  kLoad,      ///< rd = mem32[rs1 + imm]
  kLoadByte,  ///< rd = mem8[rs1 + imm]  (zero-extended)
  kStore,     ///< mem32[rs1 + imm] = rs2
  kStoreByte, ///< mem8[rs1 + imm] = rs2 & 0xff
  kBranch,    ///< if (rs1 <cond> rs2) pc = imm   — PHT-predicted
  kJump,      ///< pc = imm                        — direct, unpredicted
  kJumpInd,   ///< pc = rs1                        — BTB-predicted
  kCall,      ///< link = pc+4; push RSB; pc = imm
  kCallInd,   ///< link = pc+4; push RSB; pc = rs1 — BTB-predicted
  kRet,       ///< pc = link                       — RSB-predicted
  kFence,     ///< serializes; stops transient execution
  kClflush,   ///< flush cache line at mem[rs1 + imm] from all levels
  kRdCycle,   ///< rd = low 32 bits of the cycle counter
  kEcall,     ///< environment call, service id = imm, arg/ret in r1..r3
};

enum class BranchCond : std::uint8_t { kEq, kNe, kLt, kGe, kLtu, kGeu };

struct Instruction {
  Opcode op = Opcode::kNop;
  Reg rd = kZero;
  Reg rs1 = kZero;
  Reg rs2 = kZero;
  std::int64_t imm = 0;  ///< wide enough for any address or constant.
  BranchCond cond = BranchCond::kEq;

  // Field-wise (memcmp would compare padding); used by the decoded-program
  // cache to confirm identity after a content-hash match.
  friend bool operator==(const Instruction& a, const Instruction& b) {
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 && a.rs2 == b.rs2 && a.imm == b.imm &&
           a.cond == b.cond;
  }
};

std::string to_string(Opcode op);
std::string disassemble(const Instruction& inst);

/// True for instructions that end or redirect control flow.
bool is_control_flow(Opcode op);

}  // namespace hwsec::sim
