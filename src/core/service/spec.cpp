#include "core/service/spec.h"

#include <sstream>

#include "core/json.h"
#include "core/shard/net.h"

namespace hwsec::core::service {

namespace {

const char* policy_name(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFailFast: return "failfast";
    case FailurePolicy::kRetry: return "retry";
    case FailurePolicy::kCollect: break;
  }
  return "collect";
}

bool parse_policy(const std::string& name, FailurePolicy& out) {
  if (name == "collect") {
    out = FailurePolicy::kCollect;
  } else if (name == "failfast") {
    out = FailurePolicy::kFailFast;
  } else if (name == "retry") {
    out = FailurePolicy::kRetry;
  } else {
    return false;
  }
  return true;
}

bool take_u64(const JsonValue& doc, const char* key, std::uint64_t& out, std::string& error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    return true;  // optional: keep default.
  }
  if (!v->as_u64(out)) {
    error = std::string("field \"") + key + "\" must be a non-negative integer";
    return false;
  }
  return true;
}

bool take_u32(const JsonValue& doc, const char* key, std::uint32_t& out, std::string& error) {
  std::uint64_t wide = out;
  if (!take_u64(doc, key, wide, error)) {
    return false;
  }
  if (wide > 0xFFFFFFFFull) {
    error = std::string("field \"") + key + "\" out of range";
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool take_string(const JsonValue& doc, const char* key, std::string& out, std::string& error) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr) {
    return true;
  }
  if (!v->is_string()) {
    error = std::string("field \"") + key + "\" must be a string";
    return false;
  }
  out = v->string;
  return true;
}

}  // namespace

bool valid_identifier(const std::string& id) {
  if (id.empty() || id.size() > 64) {
    return false;
  }
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string encode_spec(const CampaignSpec& spec) {
  std::ostringstream out;
  out << "{\"hwsec_spec_version\": " << spec.version                      //
      << ", \"tenant\": \"" << json_escape(spec.tenant) << "\""           //
      << ", \"name\": \"" << json_escape(spec.name) << "\""               //
      << ", \"kind\": \"" << json_escape(spec.kind) << "\""               //
      << ", \"seed\": " << spec.seed                                      //
      << ", \"trials\": " << spec.trials                                  //
      << ", \"workers\": " << spec.workers                                //
      << ", \"processes\": " << spec.processes                            //
      << ", \"policy\": \"" << policy_name(spec.policy) << "\""           //
      << ", \"max_attempts\": " << spec.max_attempts                      //
      << ", \"trial_cycle_budget\": " << spec.trial_cycle_budget          //
      << ", \"trial_delay_us\": " << spec.trial_delay_us                  //
      << ", \"priority\": " << spec.priority                              //
      << ", \"hosts\": [";
  for (std::size_t i = 0; i < spec.hosts.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(spec.hosts[i]) << "\"";
  }
  out << "]}";
  return out.str();
}

bool decode_spec(const std::string& json, CampaignSpec& out, std::string& error) {
  out = CampaignSpec{};
  JsonValue doc;
  if (!parse_json(json, doc, &error)) {
    error = "spec is not valid JSON: " + error;
    return false;
  }
  if (!doc.is_object()) {
    error = "spec must be a JSON object";
    return false;
  }
  const JsonValue* version = doc.find("hwsec_spec_version");
  std::int64_t version_value = 0;
  if (version == nullptr || !version->as_i64(version_value)) {
    error = "spec is missing integer \"hwsec_spec_version\"";
    return false;
  }
  if (version_value != kSpecVersion) {
    std::ostringstream msg;
    msg << "unsupported spec version " << version_value << " (this daemon speaks v"
        << kSpecVersion << ")";
    error = msg.str();
    return false;
  }
  out.version = static_cast<int>(version_value);

  if (!take_string(doc, "tenant", out.tenant, error) ||
      !take_string(doc, "name", out.name, error) ||
      !take_string(doc, "kind", out.kind, error) ||
      !take_u64(doc, "seed", out.seed, error) ||
      !take_u64(doc, "trials", out.trials, error) ||
      !take_u32(doc, "workers", out.workers, error) ||
      !take_u32(doc, "processes", out.processes, error) ||
      !take_u32(doc, "max_attempts", out.max_attempts, error) ||
      !take_u64(doc, "trial_cycle_budget", out.trial_cycle_budget, error) ||
      !take_u64(doc, "trial_delay_us", out.trial_delay_us, error)) {
    return false;
  }
  if (const JsonValue* priority = doc.find("priority"); priority != nullptr) {
    std::int64_t p = 0;
    if (!priority->as_i64(p) || p < -1000 || p > 1000) {
      error = "field \"priority\" must be an integer in [-1000, 1000]";
      return false;
    }
    out.priority = static_cast<std::int32_t>(p);
  }
  if (const JsonValue* policy = doc.find("policy"); policy != nullptr) {
    if (!policy->is_string() || !parse_policy(policy->string, out.policy)) {
      error = "field \"policy\" must be \"collect\", \"failfast\", or \"retry\"";
      return false;
    }
  }
  if (!valid_identifier(out.tenant)) {
    error = "field \"tenant\" must be 1-64 chars of [A-Za-z0-9._-]";
    return false;
  }
  if (!out.name.empty() && !valid_identifier(out.name)) {
    error = "field \"name\" must be empty or 1-64 chars of [A-Za-z0-9._-]";
    return false;
  }
  if (out.kind.empty()) {
    error = "field \"kind\" is required";
    return false;
  }
  if (out.trials == 0) {
    error = "field \"trials\" must be >= 1";
    return false;
  }
  if (const JsonValue* hosts = doc.find("hosts"); hosts != nullptr) {
    if (!hosts->is_array()) {
      error = "field \"hosts\" must be an array of \"host:port\" strings";
      return false;
    }
    if (hosts->array.size() > kMaxSpecHosts) {
      std::ostringstream msg;
      msg << "field \"hosts\" lists " << hosts->array.size() << " endpoints (max "
          << kMaxSpecHosts << ")";
      error = msg.str();
      return false;
    }
    for (const JsonValue& element : hosts->array) {
      if (!element.is_string()) {
        error = "field \"hosts\" must contain only strings";
        return false;
      }
      shard::HostSpec parsed;
      if (!shard::parse_host(element.string, parsed, error)) {
        error = "field \"hosts\": " + error;
        return false;
      }
      out.hosts.push_back(element.string);
    }
  }
  return true;
}

}  // namespace hwsec::core::service
