// Execution-engine semantics: ISA behaviour, prediction-driven transient
// windows, Meltdown-style fault forwarding and the L1TF path — the unit
// contracts the §4.2 attacks are built on.
#include <gtest/gtest.h>

#include "sim/machine.h"
#include "sim/program.h"

namespace sim = hwsec::sim;

namespace {

class CpuTest : public ::testing::Test {
 protected:
  CpuTest() : machine_(sim::MachineProfile::server(), 11), aspace_(machine_.create_address_space()) {}

  /// Identity-maps `pages` pages at `base` (base must be page-aligned).
  sim::PhysAddr map_identity(sim::VirtAddr base, std::uint32_t pages, sim::Word flags) {
    for (std::uint32_t p = 0; p < pages; ++p) {
      aspace_.map(base + p * sim::kPageSize, base + p * sim::kPageSize, flags);
    }
    // Identity frames must exist in DRAM; reserve them if still unused.
    return base;
  }

  void start(const sim::Program& program, sim::Privilege priv = sim::Privilege::kSupervisor) {
    machine_.cpu(0).load_program(program);
    machine_.cpu(0).switch_context(sim::kDomainNormal, priv, aspace_.root(), 1);
    machine_.cpu(0).set_pc(program.base);
  }

  sim::Machine machine_;
  sim::AddressSpace aspace_;
};

constexpr sim::VirtAddr kCode = 0x10000;
constexpr sim::Word kCodeFlags = sim::pte::kUser | sim::pte::kExecutable | sim::pte::kWritable;
constexpr sim::Word kDataFlags = sim::pte::kUser | sim::pte::kWritable;

TEST_F(CpuTest, AluAndBranchSemantics) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0)
      .li(sim::R2, 0)
      .label("loop")
      .addi(sim::R1, sim::R1, 3)
      .addi(sim::R2, sim::R2, 1)
      .li(sim::R3, 10)
      .br(sim::BranchCond::kLtu, sim::R2, sim::R3, "loop")
      .shli(sim::R4, sim::R1, 2)
      .xori(sim::R5, sim::R4, 0xFF)
      .halt();
  start(b.build());
  const auto result = machine_.cpu(0).run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R1), 30u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R4), 120u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R5), 120u ^ 0xFFu);
}

TEST_F(CpuTest, LoadStoreRoundTripAndByteOps) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr data = machine_.alloc_frame();
  aspace_.map(0x20000, data, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x20000)
      .li(sim::R2, 0xDEADBEEF)
      .sw(sim::R1, 0, sim::R2)
      .lw(sim::R3, sim::R1)
      .lb(sim::R4, sim::R1, 3)  // highest byte, little-endian.
      .li(sim::R5, 0x42)
      .sb(sim::R1, 5, sim::R5)
      .lb(sim::R6, sim::R1, 5)
      .halt();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 0xDEADBEEFu);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R4), 0xDEu);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R6), 0x42u);
  EXPECT_EQ(machine_.memory().read32(data), 0xDEADBEEFu);
}

TEST_F(CpuTest, MisalignedWordLoadFaults) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x20001).lw(sim::R2, sim::R1).halt();
  start(b.build());
  const auto result = machine_.cpu(0).run();
  EXPECT_EQ(result.stop_fault, sim::Fault::kAlignment);
}

TEST_F(CpuTest, CallRetAndLinkRegister) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.call("fn").li(sim::R2, 7).halt().label("fn").li(sim::R1, 5).ret();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_EQ(machine_.cpu(0).reg(sim::R1), 5u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R2), 7u);
}

TEST_F(CpuTest, RdcycleIsMonotonic) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.rdcycle(sim::R1).nop().nop().rdcycle(sim::R2).halt();
  start(b.build());
  machine_.cpu(0).run();
  EXPECT_GT(machine_.cpu(0).reg(sim::R2), machine_.cpu(0).reg(sim::R1));
}

TEST_F(CpuTest, MispredictedBranchExecutesTransiently) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr probe = machine_.alloc_frame();
  aspace_.map(0x30000, probe, kDataFlags);

  // Branch is ALWAYS taken (skipping the probe load); the PHT starts at
  // weakly-not-taken, so the first execution mispredicts and the
  // fall-through runs transiently, heating the probe line.
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R3, sim::R2)  // transient only.
      .label("skip")
      .halt();
  start(b.build());
  machine_.caches().flush_all();
  machine_.cpu(0).run();

  EXPECT_GT(machine_.cpu(0).stats().branch_mispredicts, 0u);
  EXPECT_GT(machine_.cpu(0).stats().transient_executed, 0u);
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe))
      << "the transient load's cache fill must persist (the Spectre channel)";
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 0u)
      << "architectural state must be squashed";
}

TEST_F(CpuTest, FenceStopsTransientWindow) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr probe = machine_.alloc_frame();
  aspace_.map(0x30000, probe, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .fence()
      .lw(sim::R3, sim::R2)
      .label("skip")
      .halt();
  start(b.build());
  machine_.caches().flush_all();
  machine_.cpu(0).run();
  EXPECT_FALSE(machine_.caches().in_l1d(0, probe))
      << "a fence on the mispredicted path must stop the transient loads";
}

TEST_F(CpuTest, SpeculationWindowBoundsTransientExecution) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.speculation_window = 8;
  sim::Machine machine(profile, 14);
  auto aspace = machine.create_address_space();
  aspace.map(kCode, kCode, kCodeFlags);
  const sim::PhysAddr early = machine.alloc_frame();
  const sim::PhysAddr late = machine.alloc_frame();
  aspace.map(0x30000, early, kDataFlags);
  aspace.map(0x31000, late, kDataFlags);

  // Mispredicted fall-through: a load within the window and one beyond it
  // (window = 8 transient instructions; the second load is number 10).
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .li(sim::R3, 0x31000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R4, sim::R2)  // transient #1: inside the window.
      .nop().nop().nop().nop().nop().nop().nop().nop()  // #2..#9.
      .lw(sim::R5, sim::R3)  // transient #10: beyond the window.
      .label("skip")
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_TRUE(machine.caches().in_l1d(0, early)) << "inside the window: executed";
  EXPECT_FALSE(machine.caches().in_l1d(0, late)) << "beyond the window: squashed";
}

TEST_F(CpuTest, InOrderCoreHasNoTransientWindow) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.speculative_execution = false;
  sim::Machine machine(profile, 12);
  auto aspace = machine.create_address_space();
  for (std::uint32_t p = 0; p < 1; ++p) {
    aspace.map(kCode, kCode, kCodeFlags);
  }
  const sim::PhysAddr probe = machine.alloc_frame();
  aspace.map(0x30000, probe, kDataFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 1)
      .li(sim::R2, 0x30000)
      .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
      .lw(sim::R3, sim::R2)
      .label("skip")
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor, aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_EQ(machine.cpu(0).stats().transient_executed, 0u);
  EXPECT_FALSE(machine.caches().in_l1d(0, probe));
}

TEST_F(CpuTest, MeltdownForwardingHeatsProbeBeforeFault) {
  map_identity(kCode, 1, kCodeFlags);
  // Kernel page: present, NOT user-accessible, with a known byte.
  const sim::PhysAddr kernel = machine_.alloc_frame();
  aspace_.map(0x40000, kernel, sim::pte::kWritable);
  machine_.memory().write8(kernel, 0x5C);
  // Probe array: user page.
  const sim::PhysAddr probe = machine_.alloc_frames(8);  // covers 256*64 bytes... 4 pages needed
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace_.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }

  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)      // user reads kernel: faults.
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  start(b.build(), sim::Privilege::kUser);
  machine_.caches().flush_all();
  const auto result = machine_.cpu(0).run();

  EXPECT_EQ(result.stop_fault, sim::Fault::kProtection) << "the fault must still be raised";
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe + 0x5Cu * 64))
      << "the dependent transient load must have heated probe[secret]";
}

TEST_F(CpuTest, MitigatedCoreForwardsNothing) {
  sim::MachineProfile profile = sim::MachineProfile::server();
  profile.cpu.meltdown_fault_forwarding = false;
  sim::Machine machine(profile, 13);
  auto aspace = machine.create_address_space();
  aspace.map(kCode, kCode, kCodeFlags);
  const sim::PhysAddr kernel = machine.alloc_frame();
  aspace.map(0x40000, kernel, sim::pte::kWritable);
  machine.memory().write8(kernel, 0x5C);
  const sim::PhysAddr probe = machine.alloc_frames(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  machine.cpu(0).load_program(b.build());
  machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kUser, aspace.root(), 1);
  machine.caches().flush_all();
  machine.cpu(0).run_from(kCode);
  EXPECT_FALSE(machine.caches().in_l1d(0, probe + 0x5Cu * 64));
}

TEST_F(CpuTest, L1tfForwardsOnlyL1ResidentLines) {
  map_identity(kCode, 1, kCodeFlags);
  const sim::PhysAddr secret_frame = machine_.alloc_frame();
  machine_.memory().write8(secret_frame, 0x7B);
  const sim::PhysAddr probe = machine_.alloc_frames(4);
  for (std::uint32_t p = 0; p < 4; ++p) {
    aspace_.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
  }
  // Not-present mapping whose stale frame bits point at the secret.
  aspace_.map(0x60000, secret_frame, kDataFlags);
  aspace_.clear_present(0x60000);

  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x60000)
      .li(sim::R2, 0x50000)
      .lb(sim::R3, sim::R1)
      .shli(sim::R3, sim::R3, 6)
      .add(sim::R3, sim::R2, sim::R3)
      .lb(sim::R4, sim::R3)
      .halt();
  const auto program = b.build();

  // Cold L1: terminal fault forwards nothing.
  start(program, sim::Privilege::kUser);
  machine_.caches().flush_all();
  machine_.cpu(0).run();
  EXPECT_FALSE(machine_.caches().in_l1d(0, probe + 0x7Bu * 64));

  // Hot L1: the same access now leaks the line's content.
  machine_.touch(0, 42, secret_frame);  // someone (an enclave) loads it.
  machine_.cpu(0).mmu().tlb().flush();
  machine_.cpu(0).set_pc(program.base);
  machine_.cpu(0).run();
  EXPECT_TRUE(machine_.caches().in_l1d(0, probe + 0x7Bu * 64))
      << "L1-resident data must be reachable through the terminal fault";
}

TEST_F(CpuTest, FaultHandlerSkipAndRedirect) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 0x40000)  // unmapped.
      .lw(sim::R2, sim::R1)
      .li(sim::R3, 1)
      .halt();
  start(b.build());
  int faults = 0;
  machine_.cpu(0).set_fault_handler([&faults](sim::Cpu&, const sim::FaultInfo& info) {
    ++faults;
    EXPECT_EQ(info.fault, sim::Fault::kPageNotPresent);
    return sim::FaultAction::kSkip;
  });
  const auto result = machine_.cpu(0).run();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(faults, 1);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 1u) << "execution continues after kSkip";
}

// ---- dispatch-backend bit-identity ----------------------------------------
// The micro-op core must be observably indistinguishable from the legacy
// switch interpreter. Each scenario below is run twice on identically
// seeded machines — once per backend — and the complete outcome (run
// result, registers, pc, cycle count, every stat counter, hook traces,
// fault log) must match bit for bit.

struct BackendObserved {
  sim::RunResult run;
  std::vector<sim::Word> regs;
  sim::VirtAddr pc = 0;
  sim::Cycle cycles = 0;
  sim::CpuStats stats;
  std::vector<sim::Word> leaks;
  std::vector<std::pair<sim::VirtAddr, sim::VirtAddr>> edges;
  std::vector<std::pair<sim::Fault, sim::VirtAddr>> faults;
  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;
};

void expect_backend_identical(const BackendObserved& uops, const BackendObserved& legacy) {
  EXPECT_EQ(uops.run.halted, legacy.run.halted);
  EXPECT_EQ(uops.run.executed, legacy.run.executed);
  EXPECT_EQ(uops.run.stop_fault, legacy.run.stop_fault);
  EXPECT_EQ(uops.regs, legacy.regs);
  EXPECT_EQ(uops.pc, legacy.pc);
  EXPECT_EQ(uops.cycles, legacy.cycles);
  EXPECT_EQ(uops.stats.retired, legacy.stats.retired);
  EXPECT_EQ(uops.stats.transient_executed, legacy.stats.transient_executed);
  EXPECT_EQ(uops.stats.branch_mispredicts, legacy.stats.branch_mispredicts);
  EXPECT_EQ(uops.stats.indirect_mispredicts, legacy.stats.indirect_mispredicts);
  EXPECT_EQ(uops.stats.return_mispredicts, legacy.stats.return_mispredicts);
  EXPECT_EQ(uops.stats.faults_raised, legacy.stats.faults_raised);
  EXPECT_EQ(uops.stats.faults_suppressed, legacy.stats.faults_suppressed);
  EXPECT_EQ(uops.stats.loads, legacy.stats.loads);
  EXPECT_EQ(uops.stats.stores, legacy.stats.stores);
  EXPECT_EQ(uops.stats.l1_hits, legacy.stats.l1_hits);
  EXPECT_EQ(uops.stats.llc_hits, legacy.stats.llc_hits);
  EXPECT_EQ(uops.stats.dram_accesses, legacy.stats.dram_accesses);
  EXPECT_EQ(uops.leaks, legacy.leaks);
  EXPECT_EQ(uops.edges, legacy.edges);
  EXPECT_EQ(uops.faults, legacy.faults);
  EXPECT_EQ(uops.l1d_hits, legacy.l1d_hits);
  EXPECT_EQ(uops.l1d_misses, legacy.l1d_misses);
}

class BackendIdentityTest : public ::testing::Test {
 protected:
  /// Builds a fresh machine, hands it to `scenario` for setup (mapping,
  /// program, hooks), runs from `entry`, and captures everything the two
  /// interpreters could possibly disagree on. `hooked` additionally arms a
  /// leak hook and a control-flow hook, driving the Hooked=true template
  /// instantiation of the micro-op core.
  BackendObserved observe(
      sim::DispatchBackend backend, bool hooked, sim::VirtAddr entry,
      const std::function<void(sim::Machine&, sim::AddressSpace&, BackendObserved&)>& scenario) {
    sim::Machine machine(sim::MachineProfile::server(), 77);
    sim::AddressSpace aspace = machine.create_address_space();
    machine.cpu(0).set_dispatch_backend(backend);
    BackendObserved out;
    if (hooked) {
      machine.cpu(0).set_leak_hook([&out](sim::Word v) { out.leaks.push_back(v); });
      machine.cpu(0).set_control_flow_hook([&out](sim::VirtAddr from, sim::VirtAddr to) {
        out.edges.emplace_back(from, to);
      });
    }
    scenario(machine, aspace, out);
    machine.caches().flush_all();
    out.run = machine.cpu(0).run_from(entry);
    for (std::uint32_t r = 0; r < sim::kNumRegs; ++r) {
      out.regs.push_back(machine.cpu(0).reg(static_cast<sim::Reg>(r)));
    }
    out.pc = machine.cpu(0).pc();
    out.cycles = machine.cpu(0).cycles();
    out.stats = machine.cpu(0).stats();
    out.l1d_hits = machine.caches().l1d(0).stats().hits;
    out.l1d_misses = machine.caches().l1d(0).stats().misses;
    return out;
  }

  void compare_backends(
      bool hooked, sim::VirtAddr entry,
      const std::function<void(sim::Machine&, sim::AddressSpace&, BackendObserved&)>& scenario) {
    const auto uops = observe(sim::DispatchBackend::kUops, hooked, entry, scenario);
    const auto legacy = observe(sim::DispatchBackend::kSwitch, hooked, entry, scenario);
    expect_backend_identical(uops, legacy);
  }
};

/// Exercises every opcode (and both branch outcomes, plus a shift amount
/// beyond 31 whose masking the decoder pre-applies).
sim::Program full_opcode_program() {
  sim::ProgramBuilder b(kCode);
  b.nop()
      .li(sim::R1, 0x20000)
      .li(sim::R2, 0xDEADBEEF)
      .sw(sim::R1, 0, sim::R2)
      .lw(sim::R3, sim::R1)
      .lb(sim::R4, sim::R1, 2)
      .li(sim::R5, 0x42)
      .sb(sim::R1, 5, sim::R5)
      .add(sim::R6, sim::R3, sim::R5)
      .sub(sim::R7, sim::R6, sim::R5)
      .and_(sim::R8, sim::R6, sim::R7)
      .or_(sim::R9, sim::R6, sim::R7)
      .xor_(sim::R10, sim::R6, sim::R7)
      .li(sim::R11, 3)
      .shl(sim::R12, sim::R9, sim::R11)
      .shr(sim::R13, sim::R9, sim::R11)
      .mul(sim::R14, sim::R11, sim::R11)
      .addi(sim::R14, sim::R14, 7)
      .andi(sim::R14, sim::R14, 0xFF)
      .xori(sim::R14, sim::R14, 0x0F)
      .shli(sim::R15, sim::R14, 33)  // decoder pre-masks to 1.
      .shri(sim::R15, sim::R15, 1)
      .br(sim::BranchCond::kEq, sim::R1, sim::R1, "taken")
      .li(sim::R4, 0xBAD)  // skipped.
      .label("taken")
      .br(sim::BranchCond::kNe, sim::R1, sim::R1, "nottaken")
      .li(sim::R5, 0x111)  // falls through.
      .label("nottaken")
      .br(sim::BranchCond::kLt, sim::R0, sim::R11, "lt")
      .label("lt")
      .br(sim::BranchCond::kGe, sim::R11, sim::R0, "ge")
      .label("ge")
      .br(sim::BranchCond::kLtu, sim::R0, sim::R11, "ltu")
      .label("ltu")
      .br(sim::BranchCond::kGeu, sim::R11, sim::R0, "geu")
      .label("geu")
      .jump("jmp")
      .li(sim::R6, 0xBAD)
      .label("jmp")
      .call("fn")
      .li(sim::R7, 0x222)
      .clflush(sim::R1)
      .fence()
      .rdcycle(sim::R8)
      .ecall(0x31)
      .li(sim::R9, 0x333)
      .halt()
      .label("fn")
      .li(sim::R10, 0x444)
      .ret();
  return b.build();
}

TEST_F(BackendIdentityTest, FullOpcodeSetMatchesSwitch) {
  for (const bool hooked : {false, true}) {
    compare_backends(hooked, kCode,
                     [](sim::Machine& machine, sim::AddressSpace& aspace, BackendObserved&) {
                       aspace.map(kCode, kCode, kCodeFlags);
                       const sim::PhysAddr data = machine.alloc_frame();
                       aspace.map(0x20000, data, kDataFlags);
                       machine.cpu(0).set_ecall_handler([](sim::Cpu& cpu, sim::Word service) {
                         cpu.set_reg(sim::R11, service + cpu.reg(sim::R5));
                       });
                       machine.cpu(0).load_program(full_opcode_program());
                       machine.cpu(0).switch_context(sim::kDomainNormal,
                                                     sim::Privilege::kSupervisor,
                                                     aspace.root(), 1);
                     });
  }
}

TEST_F(BackendIdentityTest, IndirectJumpCallAndMispredictsMatchSwitch) {
  for (const bool hooked : {false, true}) {
    compare_backends(hooked, kCode,
                     [](sim::Machine& machine, sim::AddressSpace& aspace, BackendObserved&) {
                       aspace.map(kCode, kCode, kCodeFlags);
                       sim::ProgramBuilder b(kCode);
                       // jr/callr/ret all mispredict on first sight (cold
                       // BTB/RSB), covering the indirect transient windows.
                       // The jr/callr targets are fixed addresses, so the
                       // blocks are padded to known offsets with nops.
                       b.li(sim::R1, 0)
                           .label("loop")
                           .li(sim::R2, kCode + 0x40)
                           .jr(sim::R2);
                       for (int i = 0; i < 13; ++i) {
                         b.nop();  // land at instruction 16 = kCode + 0x40.
                       }
                       b.label("land")
                           .li(sim::R3, kCode + 0x60)
                           .callr(sim::R3)
                           .addi(sim::R1, sim::R1, 1)
                           .li(sim::R4, 3)
                           .br(sim::BranchCond::kLtu, sim::R1, sim::R4, "loop")
                           .halt();
                       b.nop().nop();  // fn at instruction 24 = kCode + 0x60.
                       b.label("fn").addi(sim::R5, sim::R5, 1).ret();
                       machine.cpu(0).load_program(b.build());
                       machine.cpu(0).switch_context(sim::kDomainNormal,
                                                     sim::Privilege::kSupervisor,
                                                     aspace.root(), 1);
                     });
  }
}

TEST_F(BackendIdentityTest, FaultSkipRedirectAndHaltMatchSwitch) {
  for (const sim::FaultAction action :
       {sim::FaultAction::kSkip, sim::FaultAction::kRedirect, sim::FaultAction::kHalt}) {
    for (const bool hooked : {false, true}) {
      compare_backends(
          hooked, kCode,
          [action](sim::Machine& machine, sim::AddressSpace& aspace, BackendObserved& out) {
            aspace.map(kCode, kCode, kCodeFlags);
            sim::ProgramBuilder b(kCode);
            b.li(sim::R1, 0x40000)  // unmapped: every load below faults.
                .lw(sim::R2, sim::R1)
                .li(sim::R3, 1)
                .lb(sim::R4, sim::R1)
                .li(sim::R5, 2)
                .halt()
                .label("vector")
                .li(sim::R6, 0xEC)
                .halt();
            const sim::Program program = b.build();
            const sim::VirtAddr vector = program.address_of("vector");
            machine.cpu(0).set_fault_handler(
                [action, vector, &out](sim::Cpu& cpu, const sim::FaultInfo& info) {
                  out.faults.emplace_back(info.fault, info.pc);
                  if (action == sim::FaultAction::kRedirect) {
                    cpu.set_pc(vector);
                  }
                  return action;
                });
            machine.cpu(0).load_program(program);
            machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kSupervisor,
                                          aspace.root(), 1);
          });
    }
  }
}

TEST_F(BackendIdentityTest, TransientWindowAndMeltdownForwardingMatchSwitch) {
  for (const bool hooked : {false, true}) {
    compare_backends(
        hooked, kCode,
        [](sim::Machine& machine, sim::AddressSpace& aspace, BackendObserved&) {
          aspace.map(kCode, kCode, kCodeFlags);
          const sim::PhysAddr kernel = machine.alloc_frame();
          aspace.map(0x40000, kernel, sim::pte::kWritable);  // supervisor-only.
          machine.memory().write8(kernel, 0x5C);
          const sim::PhysAddr probe = machine.alloc_frames(4);
          for (std::uint32_t p = 0; p < 4; ++p) {
            aspace.map(0x50000 + p * sim::kPageSize, probe + p * sim::kPageSize, kDataFlags);
          }
          sim::ProgramBuilder b(kCode);
          // A mispredicted branch with transient loads, then a Meltdown
          // forwarding sequence: both transient paths in one scenario.
          b.li(sim::R1, 1)
              .li(sim::R2, 0x50000)
              .br(sim::BranchCond::kNe, sim::R1, sim::R0, "skip")
              .lw(sim::R3, sim::R2)  // transient only.
              .label("skip")
              .li(sim::R1, 0x40000)
              .lb(sim::R3, sim::R1)  // user reads kernel: faults + forwards.
              .shli(sim::R3, sim::R3, 6)
              .add(sim::R3, sim::R2, sim::R3)
              .lb(sim::R4, sim::R3)
              .halt();
          machine.cpu(0).load_program(b.build());
          machine.cpu(0).switch_context(sim::kDomainNormal, sim::Privilege::kUser,
                                        aspace.root(), 1);
        });
  }
}

TEST_F(CpuTest, EcallInvokesHandlerAndResumesAfter) {
  map_identity(kCode, 1, kCodeFlags);
  sim::ProgramBuilder b(kCode);
  b.li(sim::R1, 5).ecall(0x77).li(sim::R2, 9).halt();
  start(b.build());
  sim::Word seen_service = 0;
  machine_.cpu(0).set_ecall_handler([&seen_service](sim::Cpu& cpu, sim::Word service) {
    seen_service = service;
    cpu.set_reg(sim::R3, cpu.reg(sim::R1) + 1);
  });
  machine_.cpu(0).run();
  EXPECT_EQ(seen_service, 0x77u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R3), 6u);
  EXPECT_EQ(machine_.cpu(0).reg(sim::R2), 9u);
}

}  // namespace
